//! Ablation: what a query registration costs under each strategy.
//!
//! Fixes a term-filtered shadow engine (the shard-side configuration, where
//! registration must bring newly-live terms up from the shared window) over
//! a filled count-based window and prices the three registration protocols
//! of DESIGN.md §9 against each other:
//!
//! * `eager-loop` — `lazy_registration: false`, one [`Engine::register`]
//!   call per query: every registration that brings terms live pays its
//!   backfill immediately, one pass per registration. This is the pre-§9
//!   behaviour — the protocol behind the registration cliff.
//! * `lazy-loop`  — the default lazy config, still one `register` per
//!   query: terms go cold and the query's own initial threshold search
//!   warms them, so the scan count is the same but each backfill batches
//!   the query's terms into one store pass.
//! * `bulk`       — one [`Engine::register_batch`] call for the whole
//!   workload: all newly-live terms across the batch are brought up in one
//!   sorted merge over the window before any threshold search runs.
//!
//! The measured routine registers the full workload and then deregisters it
//! (restoring the engine for the next iteration); a manual clock around the
//! registration half plus the engine's `register_postings_touched` counter
//! are printed per arm, so the readout separates register-only time from
//! the teardown and ties it to the postings actually filed. The
//! registration-burst differential tests hold all three protocols
//! byte-identical; this bench prices them.
//!
//! Run with `cargo bench --bench ablation_register`. Set
//! `CTS_ABLATION_REGISTER_QUICK=1` for a reduced point (50 queries,
//! 400-document window) when iterating on the harness itself.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use cts_core::{ContinuousQuery, Engine, ItaConfig, ItaEngine};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::SlidingWindow;
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

struct Point {
    num_queries: usize,
    window_docs: usize,
    corpus: CorpusConfig,
}

fn operating_point() -> Point {
    let quick = std::env::var_os("CTS_ABLATION_REGISTER_QUICK").is_some();
    let corpus = CorpusConfig {
        seed: 0x4E60_0001,
        ..if quick {
            CorpusConfig::small()
        } else {
            CorpusConfig::default()
        }
    };
    Point {
        num_queries: if quick { 50 } else { 1_000 },
        window_docs: if quick { 400 } else { 10_000 },
        corpus,
    }
}

fn build_queries(point: &Point) -> Vec<ContinuousQuery> {
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: point.num_queries,
            query_length: 10,
            k: 10,
            popularity_biased: false,
            seed: 0x4E60_0002,
        },
        point.corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect()
}

/// A term-filtered engine with a freshly filled window (untimed setup).
fn filled_engine(point: &Point, config: ItaConfig) -> ItaEngine {
    let mut engine =
        ItaEngine::term_filtered(SlidingWindow::count_based(point.window_docs), config);
    let mut stream = DocumentStream::new(
        point.corpus,
        StreamConfig {
            arrival_rate_per_sec: 200.0,
            seed: 0x4E60_0003,
        },
    );
    for _ in 0..point.window_docs {
        engine.process_document(stream.next_document());
    }
    engine
}

/// One registration strategy: a label, the config it needs and how it
/// registers the workload.
type RegisterFn = fn(&mut ItaEngine, &[ContinuousQuery]) -> Vec<cts_index::QueryId>;

fn register_looped(engine: &mut ItaEngine, queries: &[ContinuousQuery]) -> Vec<cts_index::QueryId> {
    queries.iter().map(|q| engine.register(q.clone())).collect()
}

fn register_bulk(engine: &mut ItaEngine, queries: &[ContinuousQuery]) -> Vec<cts_index::QueryId> {
    engine.register_batch(queries.to_vec())
}

fn bench_registration_strategies(c: &mut Criterion) {
    let point = operating_point();
    let queries = build_queries(&point);
    let eager = ItaConfig {
        lazy_registration: false,
        ..ItaConfig::default()
    };
    let arms: [(&str, ItaConfig, RegisterFn); 3] = [
        ("eager-loop", eager, register_looped),
        ("lazy-loop", ItaConfig::default(), register_looped),
        ("bulk", ItaConfig::default(), register_bulk),
    ];
    for (label, config, register) in arms {
        let mut engine = filled_engine(&point, config);
        eprintln!(
            "ablation_register: {label} ready ({} queries, {}-doc window)",
            point.num_queries, point.window_docs
        );
        let mut register_time = std::time::Duration::ZERO;
        let mut iterations = 0u64;
        let postings_before = engine.register_postings_touched();
        c.bench_function(
            &format!(
                "ita_term_filtered/register/q{}w{}/{label}",
                point.num_queries, point.window_docs
            ),
            |b| {
                b.iter(|| {
                    // The registration half is what this ablation prices;
                    // the deregister half restores the engine for the next
                    // iteration and is deliberately inside the criterion
                    // clock but outside the manual one.
                    let start = Instant::now();
                    let ids = register(&mut engine, &queries);
                    register_time += start.elapsed();
                    iterations += 1;
                    for id in &ids {
                        engine.deregister(*id);
                    }
                })
            },
        );
        if iterations > 0 {
            let per_workload = register_time.as_secs_f64() / iterations as f64;
            let filed = engine.register_postings_touched() - postings_before;
            eprintln!(
                "ita_term_filtered/register/{label}: {:.3} s per {}-query workload \
                 ({:.1} µs/query, {} postings filed across {iterations} iteration(s))",
                per_workload,
                point.num_queries,
                per_workload * 1e6 / point.num_queries as f64,
                filed,
            );
        }
    }
}

criterion_group!(benches, bench_registration_strategies);
criterion_main!(benches);
