//! Placeholder bench target for the Figure 3(b) sweep. The actual harness
//! lives in (and is documented by) the `fig3b` binary: `cargo run --bin
//! fig3b`. This target exists so `cargo bench` enumerates the planned
//! figure reproductions.

fn main() {
    eprintln!("fig3b: no criterion measurements yet — run `cargo run -p cts-bench --bin fig3b`.");
}
