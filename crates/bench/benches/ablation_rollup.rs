//! Ablation: ITA with and without threshold roll-up (§III-C).
//!
//! Roll-up reclaims the slack between `τ` and `S_k` after an arrival
//! improves a top-k, shrinking the result sets that every later event has to
//! maintain. This bench streams the same fixture through both
//! configurations; the roll-up variant should win on a churning stream.
//!
//! Run with `cargo bench --bench ablation_rollup`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cts_bench::fixture;
use cts_core::{Engine, ItaConfig, ItaEngine};
use cts_index::SlidingWindow;

fn stream_events(c: &mut Criterion, label: &str, config: ItaConfig) {
    let fixture = fixture(400, 50);
    c.bench_function(label, |b| {
        b.iter_batched(
            || {
                let mut engine = ItaEngine::new(SlidingWindow::count_based(100), config);
                for query in &fixture.queries {
                    engine.register(query.clone());
                }
                engine
            },
            |mut engine| {
                for doc in &fixture.documents {
                    engine.process_document(doc.clone());
                }
                engine
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_rollup(c: &mut Criterion) {
    stream_events(
        c,
        "ita/rollup_on",
        ItaConfig {
            enable_rollup: true,
            ..ItaConfig::default()
        },
    );
    stream_events(
        c,
        "ita/rollup_off",
        ItaConfig {
            enable_rollup: false,
            ..ItaConfig::default()
        },
    );
}

criterion_group!(benches, bench_rollup);
criterion_main!(benches);
