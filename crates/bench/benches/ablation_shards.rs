//! Ablation: worker-shard count for the sharded ITA engine.
//!
//! Sweeps `shards ∈ {1, 2, 4, 8}` at the paper's headline operating point —
//! 1,000 ten-term queries (`k = 10`) over a 10,000-document count-based
//! window on the 181,978-term synthetic WSJ-like stream — and times
//! steady-state event processing (each arrival expires the oldest document,
//! so every event exercises arrival fan-out, shadow-index maintenance and
//! expiration repair in every shard). The engine is built and its window
//! filled **outside** the timed region; the measured routine is exactly one
//! fanned-out stream event.
//!
//! The 1-shard arm prices the fan-out protocol itself (one channel
//! round-trip per event against a single term-filtered worker); the higher
//! arms show how the per-event latency splits across cores. On a
//! single-core host the higher arms cannot win — utilisation, not the
//! machine, is what the sweep reports.
//!
//! Run with `cargo bench --bench ablation_shards`. The paper-scale setup
//! (window fill + 1,000 registrations per arm) takes a couple of minutes;
//! set `CTS_ABLATION_SHARDS_QUICK=1` to run a reduced point (50 queries,
//! 400-document window) when iterating on the harness itself.

use criterion::{criterion_group, criterion_main, Criterion};

use cts_core::{ContinuousQuery, Engine, ItaConfig, ShardedItaEngine};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::SlidingWindow;
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Point {
    num_queries: usize,
    window_docs: usize,
    corpus: CorpusConfig,
}

fn operating_point() -> Point {
    let quick = std::env::var_os("CTS_ABLATION_SHARDS_QUICK").is_some();
    let corpus = CorpusConfig {
        seed: 0xAB1A_0001,
        ..if quick {
            CorpusConfig::small()
        } else {
            CorpusConfig::default()
        }
    };
    Point {
        num_queries: if quick { 50 } else { 1_000 },
        window_docs: if quick { 400 } else { 10_000 },
        corpus,
    }
}

fn build_queries(point: &Point) -> Vec<ContinuousQuery> {
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: point.num_queries,
            query_length: 10,
            k: 10,
            popularity_biased: false,
            seed: 0xAB1A_0002,
        },
        point.corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect()
}

fn bench_shard_counts(c: &mut Criterion) {
    let point = operating_point();
    let queries = build_queries(&point);
    for shards in SHARD_COUNTS {
        let mut engine = ShardedItaEngine::new(
            SlidingWindow::count_based(point.window_docs),
            ItaConfig::default(),
            shards,
        );
        let mut stream = DocumentStream::new(
            point.corpus,
            StreamConfig {
                arrival_rate_per_sec: 200.0,
                seed: 0xAB1A_0003,
            },
        );
        for _ in 0..point.window_docs {
            engine.process_document(stream.next_document());
        }
        for query in &queries {
            engine.register(query.clone());
        }
        eprintln!(
            "ablation_shards: shards={shards} ready ({} queries, {}-doc window)",
            point.num_queries, point.window_docs
        );
        // Fill + registration above are untimed setup; zero the worker
        // accumulators so the busy-time readout covers measured events only.
        engine.reset_shard_stats();
        c.bench_function(
            &format!(
                "sharded_ita/steady_state/q{}w{}/shards={shards}",
                point.num_queries, point.window_docs
            ),
            |b| b.iter(|| engine.process_document(stream.next_document())),
        );
        // Parallel-utilisation readout next to the timing: summed worker
        // busy time per event vs. the shard count's theoretical capacity.
        let busy = engine.aggregate_shard_stats();
        let events = busy.events / shards as u64;
        if events > 0 {
            eprintln!(
                "sharded_ita/shards={shards}: {:.1} µs summed worker busy time per event",
                busy.total_time.as_secs_f64() * 1e6 / events as f64
            );
        }
    }
}

criterion_group!(benches, bench_shard_counts);
criterion_main!(benches);
