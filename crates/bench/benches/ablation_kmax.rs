//! Ablation: the naïve baseline's `k_max` buffer factor (Yi et al.).
//!
//! The materialised view holds up to `k_max = kmax_factor · k` documents per
//! query. A larger buffer absorbs more expirations before the view runs dry
//! and forces a full window rescan, but makes every arrival pay more
//! admission work and memory. This sweep streams the same seeded fixture
//! through `kmax_factor ∈ {1, 2, 4, 8}` and prints, next to the criterion
//! timing, the number of full recomputations each factor incurred — the
//! amortisation trade-off the factor buys.
//!
//! Run with `cargo bench --bench ablation_kmax`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cts_bench::fixture;
use cts_core::{Engine, NaiveConfig, NaiveEngine};
use cts_index::SlidingWindow;

const EVENTS: usize = 400;
const QUERIES: usize = 50;
const WINDOW: usize = 100;

fn bench_kmax(c: &mut Criterion) {
    let fixture = fixture(EVENTS, QUERIES);
    for factor in [1usize, 2, 4, 8] {
        let config = NaiveConfig {
            kmax_factor: factor,
        };

        // Work counter first (one untimed pass): full-view recomputations.
        let mut engine = NaiveEngine::new(SlidingWindow::count_based(WINDOW), config);
        for query in &fixture.queries {
            engine.register(query.clone());
        }
        for doc in &fixture.documents {
            engine.process_document(doc.clone());
        }
        println!(
            "naive/kmax_factor={factor}: {} recomputations over {EVENTS} events \
             ({QUERIES} queries, window {WINDOW})",
            engine.recomputations()
        );

        c.bench_function(&format!("naive/stream/kmax_factor={factor}"), |b| {
            b.iter_batched(
                || {
                    let mut engine = NaiveEngine::new(SlidingWindow::count_based(WINDOW), config);
                    for query in &fixture.queries {
                        engine.register(query.clone());
                    }
                    engine
                },
                |mut engine| {
                    for doc in &fixture.documents {
                        engine.process_document(doc.clone());
                    }
                    engine
                },
                BatchSize::LargeInput,
            )
        });
    }
}

criterion_group!(benches, bench_kmax);
criterion_main!(benches);
