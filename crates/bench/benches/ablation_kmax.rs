//! Planned ablation: the naïve baseline's `k_max` buffer factor (Yi et al.).
//! Larger buffers amortise more expirations before a full rescan but make
//! every arrival pay more; this sweep will chart that trade-off. Not
//! implemented yet; `NaiveEngine::recomputations` already exposes the rescan
//! counter the sweep will report.

fn main() {
    eprintln!(
        "ablation_kmax: not implemented yet — NaiveConfig::kmax_factor and \
         NaiveEngine::recomputations() are the knobs and metric it will sweep."
    );
}
