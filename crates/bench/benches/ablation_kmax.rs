fn main() {}
