//! Planned ablation: threshold-tree probes vs. scanning every query's local
//! threshold on each arrival (§III-B). Measures what the per-list trees buy
//! as the query population grows. Not implemented yet; the tree's raw probe
//! cost is covered by `cargo bench --bench index_micro`
//! (`threshold_tree/probe`).

fn main() {
    eprintln!(
        "ablation_threshold_tree: not implemented yet — see \
         `cargo bench --bench index_micro` for the raw probe cost."
    );
}
