//! Layout ablation: the array-backed core structures against the PR 1
//! `BTreeSet` baselines retained in `cts_index::baseline` (§III-B), with the
//! impact list compared across all three layouts — flat sorted `Vec`,
//! B-tree, and the production segmented impact list.
//!
//! Identical generic driver code for every layout:
//!
//! * `threshold_{flat,btree}/probe/N` — the `θ_{Q,t} ≤ w` arrival probe
//!   (one `partition_point` + prefix scan vs a B-tree range walk) over a
//!   tree of N entries, executed for every term of every arriving document.
//! * `threshold_{flat,btree}/update/N` — moving a query's local threshold
//!   (roll-up / refill bookkeeping).
//! * `impact_{flat,btree,segmented}/descent/N` — resuming a bounded descent
//!   at a mid-list weight, the refill access path, over a list of N postings.
//! * `impact_{flat,btree,segmented}/insert_expire/N` — one posting insertion
//!   plus one removal (the per-term cost of a document arrival + expiration
//!   pair). This is where the flat list's `memmove` grows with N while the
//!   segmented list's stays bounded by the segment capacity.
//!
//! Run with `cargo bench --bench ablation_threshold_tree`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cts_index::baseline::{
    BTreeInvertedList, BTreeThresholdTree, ImpactListLayout, ThresholdLayout,
};
use cts_index::{DocId, FlatImpactList, QueryId, SegmentedImpactList, ThresholdTree};
use cts_text::Weight;

const SIZES: [usize; 3] = [100, 1_000, 10_000];

fn theta(i: usize) -> Weight {
    Weight::new((i % 97) as f64 * 0.01)
}

fn impact(i: usize) -> Weight {
    Weight::new(0.001 + (i % 997) as f64 * 0.00097)
}

fn populated_tree<T: ThresholdLayout>(n: usize) -> T {
    let mut tree = T::default();
    for i in 0..n {
        tree.insert(QueryId(i as u32), theta(i));
    }
    tree
}

fn populated_list<L: ImpactListLayout>(n: usize) -> L {
    let mut list = L::default();
    for i in 0..n {
        list.insert(DocId(i as u64), impact(i));
    }
    list
}

fn bench_threshold_layout<T: ThresholdLayout>(c: &mut Criterion, label: &str) {
    for n in SIZES {
        let tree: T = populated_tree(n);
        // A mid-range impact weight: roughly half the entries match, the
        // paper's expected case for a popular term.
        c.bench_function(&format!("threshold_{label}/probe/{n}"), |b| {
            b.iter(|| black_box(tree.probe(Weight::new(0.48))))
        });

        let mut tree: T = populated_tree(n);
        c.bench_function(&format!("threshold_{label}/update/{n}"), |b| {
            // Move the entry away and back so tree state is identical across
            // iterations (and across harness warm-up passes).
            b.iter(|| {
                tree.update(QueryId(7), theta(7), Weight::new(0.93));
                tree.update(QueryId(7), Weight::new(0.93), theta(7));
            })
        });
    }
}

fn bench_impact_layout<L: ImpactListLayout>(c: &mut Criterion, label: &str) {
    for n in SIZES {
        let list: L = populated_list(n);
        // The refill access path: resume at a mid-list local threshold and
        // read a handful of postings.
        c.bench_function(&format!("impact_{label}/descent/{n}"), |b| {
            b.iter(|| black_box(list.descend_at_or_below(Weight::new(0.5), 16)))
        });

        let mut list: L = populated_list(n);
        let mut next = n as u64;
        c.bench_function(&format!("impact_{label}/insert_expire/{n}"), |b| {
            b.iter(|| {
                let id = DocId(next);
                let w = impact(next as usize);
                list.insert(id, w);
                list.remove(id, w);
                next += 1;
            })
        });
    }
}

fn bench_threshold_trees(c: &mut Criterion) {
    bench_threshold_layout::<ThresholdTree>(c, "flat");
    bench_threshold_layout::<BTreeThresholdTree>(c, "btree");
}

fn bench_impact_lists(c: &mut Criterion) {
    bench_impact_layout::<FlatImpactList>(c, "flat");
    bench_impact_layout::<BTreeInvertedList>(c, "btree");
    bench_impact_layout::<SegmentedImpactList>(c, "segmented");
}

criterion_group!(benches, bench_threshold_trees, bench_impact_lists);
criterion_main!(benches);
