//! Placeholder bench target for the Figure 3(a) sweep. The actual harness
//! lives in (and is documented by) the `fig3a` binary: `cargo run --bin
//! fig3a`. This target exists so `cargo bench` enumerates the planned
//! figure reproductions.

fn main() {
    eprintln!("fig3a: no criterion measurements yet — run `cargo run -p cts-bench --bin fig3a`.");
}
