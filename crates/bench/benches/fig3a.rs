//! Pointer target for the Figure 3(a) sweep. The real harness is the `fig3a`
//! binary (it needs JSON output and CLI flags, which the criterion-style
//! harness does not provide). This target exists so `cargo bench` enumerates
//! the figure reproductions and tells the user where they live.

fn main() {
    eprintln!(
        "fig3a: the sweep runs as a binary (JSON report + CLI flags):\n\
         \n\
         cargo run --release -p cts-bench --bin fig3a             # paper scale → BENCH_fig3a.json\n\
         cargo run --release -p cts-bench --bin fig3a -- --quick  # reduced CI-smoke grid"
    );
}
