//! Micro-benchmarks of the index substrate: the operations on the paper's
//! hot path.
//!
//! * `inverted_list/insert_expire` — one posting insertion plus one removal
//!   on a realistically sized impact-ordered list (the per-term cost of a
//!   document arrival + expiration pair).
//! * `inverted_list/resume_below` — the refill access path: resume a
//!   descent at a recorded local threshold.
//! * `threshold_tree/probe` — the `θ_{Q,t} ≤ w` range probe executed for
//!   every term of every arriving document.
//! * `threshold_tree/update` — moving a query's local threshold.
//! * `inverted_index/churn` — a full document arrival + oldest-expiration
//!   cycle through the composite index.
//!
//! Run with `cargo bench --bench index_micro`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cts_bench::fixture;
use cts_index::{DocId, Document, InvertedIndex, InvertedList, QueryId, ThresholdTree};
use cts_text::Weight;

fn bench_inverted_list(c: &mut Criterion) {
    // A list the size of a busy term's: 1,000 postings.
    let mut list = InvertedList::new();
    for i in 0..1_000u64 {
        list.insert(DocId(i), Weight::new(0.001 + (i % 997) as f64 * 0.00097));
    }
    let mut next = 1_000u64;
    c.bench_function("inverted_list/insert_expire", |b| {
        b.iter(|| {
            let id = DocId(next);
            let w = Weight::new(0.001 + (next % 997) as f64 * 0.00097);
            list.insert(id, w);
            list.remove(id, w);
            next += 1;
        })
    });

    c.bench_function("inverted_list/resume_below", |b| {
        b.iter(|| {
            // The refill access path: resume at a mid-list threshold and
            // read one tie group's worth of postings.
            black_box(
                list.iter_at_or_below(Weight::new(0.5))
                    .take(4)
                    .map(|p| p.doc.0)
                    .sum::<u64>(),
            )
        })
    });
}

fn bench_threshold_tree(c: &mut Criterion) {
    // One tree entry per query containing the term — the paper registers
    // 1,000 queries, and a popular term appears in a few hundred of them.
    let mut tree = ThresholdTree::new();
    for i in 0..500u32 {
        tree.insert(QueryId(i), Weight::new((i % 97) as f64 * 0.01));
    }
    c.bench_function("threshold_tree/probe", |b| {
        b.iter(|| {
            // A mid-range impact weight: roughly half the entries match.
            black_box(tree.affected_by(Weight::new(0.48)).count())
        })
    });
    c.bench_function("threshold_tree/update", |b| {
        // Move the entry away and back in one iteration so the tree state is
        // identical across iterations (and across harness warm-up passes).
        b.iter(|| {
            tree.update(QueryId(7), Weight::new(0.07), Weight::new(0.93));
            tree.update(QueryId(7), Weight::new(0.93), Weight::new(0.07));
        })
    });
}

fn bench_index_churn(c: &mut Criterion) {
    let fixture = fixture(512, 0);
    let mut index = InvertedIndex::with_capacity(256, 40);
    for doc in &fixture.documents[..256] {
        index.insert_document(doc.clone());
    }
    let mut cursor = 256usize;
    c.bench_function("inverted_index/churn", |b| {
        b.iter(|| {
            let template = &fixture.documents[cursor % fixture.documents.len()];
            // Re-id the document so ids never collide as the fixture wraps.
            let doc = Document::new(
                DocId(cursor as u64 + 1_000_000),
                template.arrival,
                template.composition.clone(),
            );
            index.insert_document(doc);
            let oldest = index.store().oldest().expect("window is non-empty").id;
            index.remove_document(oldest).expect("oldest is valid");
            cursor += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_inverted_list,
    bench_threshold_tree,
    bench_index_churn
);
criterion_main!(benches);
