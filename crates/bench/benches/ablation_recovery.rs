//! Ablation: what recovering a faulted shard worker costs, warm vs cold.
//!
//! Fixes a sharded engine over a filled count-based window and prices the
//! two recovery paths of DESIGN.md §10 against each other:
//!
//! * `warm` — the default checkpoint + op-log configuration: a caught panic
//!   restores the worker's cloned checkpoint and replays the logged
//!   mutations. Cost scales with engine-state size (the clone) plus log
//!   length, independent of the window.
//! * `cold` — `checkpoint_interval: 0`: every caught panic poisons the
//!   shard, so the coordinator rebuilds it from the durable registry and
//!   the window mirror — re-registration plus a full window replay. Cost
//!   scales with window size × resident queries.
//!
//! Each measured iteration arms one fault and feeds one document through
//! the engine, so the criterion number is (event + recovery); the fault-free
//! `none` arm prices the same event without a fault for the baseline. The
//! engine's own `recovery_micros` counter is printed per arm, isolating
//! time inside restore/rebuild from the surrounding dispatch.
//!
//! Run with `cargo bench --bench ablation_recovery`. Set
//! `CTS_ABLATION_RECOVERY_QUICK=1` for a reduced point (50 queries,
//! 400-document window) when iterating on the harness itself.

use criterion::{criterion_group, criterion_main, Criterion};

use cts_core::{
    ContinuousQuery, Engine, FaultConfig, ItaConfig, RebalanceConfig, ShardedItaEngine,
};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::SlidingWindow;
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

struct Point {
    num_queries: usize,
    window_docs: usize,
    corpus: CorpusConfig,
}

fn operating_point() -> Point {
    let quick = std::env::var_os("CTS_ABLATION_RECOVERY_QUICK").is_some();
    let corpus = CorpusConfig {
        seed: 0x4E60_0011,
        ..if quick {
            CorpusConfig::small()
        } else {
            CorpusConfig::default()
        }
    };
    Point {
        num_queries: if quick { 50 } else { 500 },
        window_docs: if quick { 400 } else { 5_000 },
        corpus,
    }
}

fn build_queries(point: &Point) -> Vec<ContinuousQuery> {
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: point.num_queries,
            query_length: 10,
            k: 10,
            popularity_biased: false,
            seed: 0x4E60_0012,
        },
        point.corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect()
}

/// A 2-shard engine with the workload registered and the window filled
/// (untimed setup), plus the stream to keep feeding from.
fn prepared_engine(point: &Point, faults: FaultConfig) -> (ShardedItaEngine, DocumentStream) {
    let mut engine = ShardedItaEngine::with_faults(
        SlidingWindow::count_based(point.window_docs),
        ItaConfig::default(),
        2,
        RebalanceConfig::default(),
        faults,
    );
    let mut stream = DocumentStream::new(
        point.corpus,
        StreamConfig {
            arrival_rate_per_sec: 200.0,
            seed: 0x4E60_0013,
        },
    );
    engine.register_batch(build_queries(point));
    for _ in 0..point.window_docs {
        engine.process_document(stream.next_document());
    }
    (engine, stream)
}

fn bench_recovery_paths(c: &mut Criterion) {
    let point = operating_point();
    let arms: [(&str, Option<FaultConfig>); 3] = [
        // Baseline: the same steady-state event with no fault at all.
        ("none", None),
        ("warm", Some(FaultConfig::default())),
        (
            "cold",
            Some(FaultConfig {
                checkpoint_interval: 0,
                ..FaultConfig::default()
            }),
        ),
    ];
    for (label, faults) in arms {
        let (mut engine, mut stream) = prepared_engine(&point, faults.unwrap_or_default());
        eprintln!(
            "ablation_recovery: {label} ready ({} queries, {}-doc window, 2 shards)",
            point.num_queries, point.window_docs
        );
        c.bench_function(
            &format!(
                "sharded_ita/recovery/q{}w{}/{label}",
                point.num_queries, point.window_docs
            ),
            |b| {
                b.iter(|| {
                    if faults.is_some() {
                        // One fault on one shard per iteration: the next
                        // event is applied, the worker panics, and the
                        // measured time includes the recovery.
                        engine.inject_fault(0);
                    }
                    engine.process_document(stream.next_document())
                })
            },
        );
        let stats = engine.fault_stats().expect("sharded engines track faults");
        assert_eq!(
            stats.faults, stats.recoveries,
            "{label}: some faults did not recover"
        );
        eprintln!(
            "sharded_ita/recovery/{label}: {} faults, {} recoveries, \
             {} µs total inside restore/rebuild ({:.1} µs/recovery)",
            stats.faults,
            stats.recoveries,
            stats.recovery_micros,
            if stats.recoveries > 0 {
                stats.recovery_micros as f64 / stats.recoveries as f64
            } else {
                0.0
            },
        );
    }
}

criterion_group!(benches, bench_recovery_paths);
criterion_main!(benches);
