//! Ablation: batch size of the sharded engine's burst fan-out.
//!
//! Fixes the paper's headline operating point — 1,000 ten-term queries
//! (`k = 10`) over a 10,000-document count-based window on the 181,978-term
//! synthetic WSJ-like stream, 4 worker shards — and sweeps the number of
//! events shipped per `process_batch` round-trip over {1, 16, 64, 256}.
//! The measured routine processes one whole batch; criterion's per-
//! iteration time divided by the batch size is the per-event cost, and the
//! printed readout does that division plus the handoff split: mean wall
//! time per event minus summed worker busy time per event is the
//! non-overlapped channel/wake-up overhead the batching exists to amortise.
//! At batch 1 the fan-out pays one request/reply round-trip per shard per
//! event; at batch 256 that cost is spread over the burst, so the per-event
//! overhead should collapse while the worker busy time stays flat (the
//! workers do identical work either way — the differential tests hold the
//! outcomes byte-identical).
//!
//! Run with `cargo bench --bench ablation_batch`. The paper-scale setup
//! (window fill + 1,000 registrations per arm) takes a couple of minutes;
//! set `CTS_ABLATION_BATCH_QUICK=1` to run a reduced point (50 queries,
//! 400-document window) when iterating on the harness itself.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use cts_core::{ContinuousQuery, Engine, ItaConfig, ShardedItaEngine};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::SlidingWindow;
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

const SHARDS: usize = 4;
const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];

struct Point {
    num_queries: usize,
    window_docs: usize,
    corpus: CorpusConfig,
}

fn operating_point() -> Point {
    let quick = std::env::var_os("CTS_ABLATION_BATCH_QUICK").is_some();
    let corpus = CorpusConfig {
        seed: 0xBA7C_0001,
        ..if quick {
            CorpusConfig::small()
        } else {
            CorpusConfig::default()
        }
    };
    Point {
        num_queries: if quick { 50 } else { 1_000 },
        window_docs: if quick { 400 } else { 10_000 },
        corpus,
    }
}

fn build_queries(point: &Point) -> Vec<ContinuousQuery> {
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: point.num_queries,
            query_length: 10,
            k: 10,
            popularity_biased: false,
            seed: 0xBA7C_0002,
        },
        point.corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect()
}

fn bench_batch_sizes(c: &mut Criterion) {
    let point = operating_point();
    let queries = build_queries(&point);
    for batch in BATCH_SIZES {
        let mut engine = ShardedItaEngine::new(
            SlidingWindow::count_based(point.window_docs),
            ItaConfig::default(),
            SHARDS,
        );
        let mut stream = DocumentStream::new(
            point.corpus,
            StreamConfig {
                arrival_rate_per_sec: 200.0,
                seed: 0xBA7C_0003,
            },
        );
        for _ in 0..point.window_docs {
            engine.process_document(stream.next_document());
        }
        for query in &queries {
            engine.register(query.clone());
        }
        eprintln!(
            "ablation_batch: batch={batch} ready ({} queries, {}-doc window, {SHARDS} shards)",
            point.num_queries, point.window_docs
        );
        // Fill + registration above are untimed setup; zero the worker
        // accumulators so the busy-time readout covers measured events only.
        engine.reset_shard_stats();
        let mut wall = std::time::Duration::ZERO;
        let mut wall_events = 0u64;
        c.bench_function(
            &format!(
                "sharded_ita/batched/q{}w{}s{SHARDS}/batch={batch}",
                point.num_queries, point.window_docs
            ),
            |b| {
                b.iter(|| {
                    // Buffering is part of any real ingest path but not of
                    // the fan-out under test; generate outside the clock.
                    let docs: Vec<_> = (0..batch).map(|_| stream.next_document()).collect();
                    let start = Instant::now();
                    let outcomes = engine.process_batch(docs);
                    wall += start.elapsed();
                    wall_events += outcomes.len() as u64;
                    outcomes
                })
            },
        );
        // Handoff readout: wall µs/event vs summed worker busy µs/event.
        // Their difference is the non-overlapped channel cost per event,
        // the quantity batching amortises.
        let busy = engine.aggregate_shard_stats();
        let busy_events = busy.events / SHARDS as u64;
        if wall_events > 0 && busy_events > 0 {
            let wall_per_event = wall.as_secs_f64() * 1e6 / wall_events as f64;
            let busy_per_event = busy.total_time.as_secs_f64() * 1e6 / busy_events as f64;
            eprintln!(
                "sharded_ita/batch={batch}: {wall_per_event:.1} µs wall/event, \
                 {busy_per_event:.1} µs summed worker busy/event, \
                 {:.1} µs non-overlapped handoff/event",
                wall_per_event - busy_per_event
            );
        }
    }
}

criterion_group!(benches, bench_batch_sizes);
criterion_main!(benches);
