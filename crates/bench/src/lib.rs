//! Shared harness utilities for the benchmarks and figure-reproduction
//! binaries.
//!
//! Everything here is deterministic: fixtures are generated from fixed seeds
//! through `cts-corpus`, so two benchmark runs (or a benchmark and a test)
//! see byte-identical documents and queries.

#![forbid(unsafe_code)]
#![deny(missing_docs, unused_must_use)]

pub mod sweep;

use cts_core::ContinuousQuery;
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::Document;
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

/// A deterministic benchmark fixture: a document stream prefix plus a query
/// workload over the same vocabulary.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// The first `n` documents of the stream, ready to feed any engine.
    pub documents: Vec<Document>,
    /// The registered continuous queries.
    pub queries: Vec<ContinuousQuery>,
}

/// Builds a fixture with `documents` stream events and `queries` continuous
/// queries, over a reduced (test-sized) corpus. All randomness is seeded.
pub fn fixture(documents: usize, queries: usize) -> Fixture {
    let corpus = CorpusConfig {
        vocabulary_size: 5_000,
        seed: 0xBE7C_0001,
        ..CorpusConfig::small()
    };
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: queries,
            query_length: 4,
            k: 10,
            popularity_biased: false,
            seed: 0xBE7C_0002,
        },
        corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    let queries = workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect();
    let mut stream = DocumentStream::new(
        corpus,
        StreamConfig {
            arrival_rate_per_sec: 200.0,
            seed: 0xBE7C_0003,
        },
    );
    Fixture {
        documents: stream.take_documents(documents),
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_sized() {
        let a = fixture(50, 10);
        let b = fixture(50, 10);
        assert_eq!(a.documents.len(), 50);
        assert_eq!(a.queries.len(), 10);
        assert_eq!(a.documents, b.documents);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x, y);
        }
    }
}
