//! Overload load generator: replays a seeded bursty session against the
//! bounded [`StreamService`] front-end and reports end-to-end latency
//! percentiles and shed rates.
//!
//! Protocol: fill nothing — the service starts cold with the full query
//! workload registered (via one `register_batch` on both the candidate and
//! the unbounded ITA reference), then offer the synthetic WSJ-like stream
//! in bursts of `--burst` events while draining only `--drain` events per
//! round (`burst/10` by default — a sustained 10× overload), plus one
//! mid-run registration storm through the admission path. Every processed
//! event is replayed into the reference in lockstep (outcomes must match
//! exactly), the shed-accounting identity
//! `offered == accepted + coalesced + shed` is asserted at quiescence, and
//! a sample of query results is compared exactly before the report is
//! written.
//!
//! Usage:
//!   cargo run --release -p cts-bench --bin loadgen             # paper scale
//!   cargo run --release -p cts-bench --bin loadgen -- --quick  # CI smoke
//!   options: --queries N (default 1000), --window N (count-based window of
//!   the engines, default 10000), --events N (events offered, default
//!   20000), --burst N (offers per round, default 64), --drain N (events
//!   drained per round, default burst/10), --queue N (ingest-queue bound,
//!   default 256), --shards N (default 2), --seed N, --deadline-ms N
//!   (stream-time ingest deadline, default 200, 0 disables),
//!   --out PATH (default BENCH_loadgen.json)
//!
//! The JSON fields are documented in README §"Service mode".

use std::collections::BTreeMap;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use cts_core::validate::sample_queries;
use cts_core::{
    Admission, ContinuousQuery, Engine, ItaConfig, ItaEngine, ServiceConfig, ShardedItaEngine,
    StreamService,
};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::{QueryId, SlidingWindow};
use cts_text::weighting::Scoring;
use cts_text::Dictionary;
use serde::Serialize;

#[derive(Debug, Clone)]
struct Options {
    quick: bool,
    queries: usize,
    window: usize,
    events: usize,
    burst: usize,
    drain: Option<usize>,
    queue: usize,
    shards: usize,
    seed: u64,
    deadline_ms: u64,
    out: String,
}

const USAGE: &str = "usage: loadgen [--quick] [--queries N] [--window N] [--events N] \
[--burst N] [--drain N] [--queue N] [--shards N] [--seed N] [--deadline-ms N] [--out PATH]";

impl Options {
    fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut options = Self {
            quick: false,
            queries: 1_000,
            window: 10_000,
            events: 20_000,
            burst: 64,
            drain: None,
            queue: 256,
            shards: 2,
            seed: 0x10AD_0001,
            deadline_ms: 200,
            out: "BENCH_loadgen.json".to_string(),
        };
        fn numeric(name: &str, args: &mut dyn Iterator<Item = String>) -> Result<u64, String> {
            let value = args
                .next()
                .ok_or_else(|| format!("{name} requires a value"))?;
            value
                .parse()
                .map_err(|_| format!("{name} requires an integer, got {value:?}"))
        }
        let mut args = args.peekable();
        let mut sized = false;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--queries" => {
                    options.queries = numeric("--queries", &mut args)? as usize;
                    sized = true;
                }
                "--window" => {
                    options.window = numeric("--window", &mut args)?.max(1) as usize;
                    sized = true;
                }
                "--events" => {
                    options.events = numeric("--events", &mut args)?.max(1) as usize;
                    sized = true;
                }
                "--burst" => options.burst = numeric("--burst", &mut args)?.max(1) as usize,
                "--drain" => options.drain = Some(numeric("--drain", &mut args)?.max(1) as usize),
                "--queue" => options.queue = numeric("--queue", &mut args)?.max(1) as usize,
                "--shards" => options.shards = numeric("--shards", &mut args)?.max(1) as usize,
                "--seed" => options.seed = numeric("--seed", &mut args)?,
                "--deadline-ms" => options.deadline_ms = numeric("--deadline-ms", &mut args)?,
                "--out" => {
                    options.out = args.next().ok_or("--out requires a path")?;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if options.quick && !sized {
            options.queries = 50;
            options.window = 200;
            options.events = 2_000;
        }
        Ok(options)
    }

    fn drain_budget(&self) -> usize {
        self.drain.unwrap_or_else(|| (self.burst / 10).max(1))
    }

    fn corpus(&self) -> CorpusConfig {
        if self.quick {
            CorpusConfig {
                seed: 0x10AD_C0DE,
                ..CorpusConfig::small()
            }
        } else {
            CorpusConfig {
                seed: 0x10AD_C0DE,
                ..CorpusConfig::default()
            }
        }
    }
}

/// The machine-readable outcome of one loadgen session.
#[derive(Debug, Serialize)]
struct LoadgenReport {
    figure: String,
    description: String,
    unix_time_secs: u64,
    seed: u64,
    num_queries: usize,
    window_docs: usize,
    shards: usize,
    queue_capacity: usize,
    burst: usize,
    drain_budget: usize,
    deadline_ms: u64,
    offered: u64,
    accepted: u64,
    coalesced: u64,
    shed: u64,
    shed_deadline: u64,
    shed_queue_full: u64,
    shed_rate: f64,
    retry_hints: u64,
    queue_high_water: u64,
    register_offered: u64,
    register_immediate: u64,
    register_coalesced: u64,
    register_retry_hints: u64,
    latency_p50_micros: f64,
    latency_p99_micros: f64,
    latency_p999_micros: f64,
    latency_max_micros: f64,
    drained_events: usize,
    accounting: String,
    self_check: String,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn build_queries(options: &Options, vocabulary: usize, salt: u64) -> Vec<ContinuousQuery> {
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: options.queries,
            query_length: if options.quick { 4 } else { 10 },
            k: 10,
            popularity_biased: false,
            seed: options.seed ^ salt,
        },
        vocabulary,
    );
    let dict = Dictionary::new();
    workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect()
}

fn main() {
    let options = match Options::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let corpus = options.corpus();
    let window = SlidingWindow::count_based(options.window);
    let drain_budget = options.drain_budget();
    eprintln!(
        "loadgen: {} queries, {}-doc window, {} events in bursts of {} vs drain {} \
         ({}x overload), queue {}, {} shard(s)",
        options.queries,
        options.window,
        options.events,
        options.burst,
        drain_budget,
        options.burst / drain_budget.max(1),
        options.queue,
        options.shards
    );

    // The full workload registers upfront through the bulk path on both the
    // candidate and the unbounded reference; id assignment must agree.
    let upfront = build_queries(&options, corpus.vocabulary_size, 0x51);
    let mut candidate = ShardedItaEngine::new(window, ItaConfig::default(), options.shards);
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let ids = candidate.register_batch(upfront.clone());
    assert_eq!(
        ids,
        reference.register_batch(upfront),
        "upfront registration ids diverged"
    );
    let mut live: Vec<QueryId> = ids;

    let mut config = ServiceConfig::bounded(options.queue);
    if options.deadline_ms > 0 {
        config.default_deadline = Some(Duration::from_millis(options.deadline_ms));
    }
    let mut service = StreamService::new(candidate, config);

    let mut stream = DocumentStream::new(
        corpus,
        StreamConfig {
            arrival_rate_per_sec: 200.0,
            seed: options.seed ^ 0xD0C,
        },
    );

    // One mid-run registration storm exercises the admission path while the
    // queue is under pressure; coalesced registrations mirror into the
    // reference at their pump's register_batch flush.
    let storm_queries = build_queries(
        &Options {
            queries: 32.min(options.queries.max(1)),
            ..options.clone()
        },
        corpus.vocabulary_size,
        0x570,
    );
    let mut storm_queries = Some(storm_queries);
    let mut pending_ref: Vec<ContinuousQuery> = Vec::new();

    // Wall-clock offer instants of the events the queue owns, by doc id:
    // end-to-end latency is offer → drain completion.
    let mut offered_at: BTreeMap<u64, (Instant, cts_index::Document)> = BTreeMap::new();
    let mut latencies_micros: Vec<f64> = Vec::new();
    let rounds = options.events.div_ceil(options.burst);
    let mut clock = cts_index::Timestamp::ZERO;

    let drain = |service: &mut StreamService<ShardedItaEngine>,
                 reference: &mut ItaEngine,
                 offered_at: &mut BTreeMap<u64, (Instant, cts_index::Document)>,
                 latencies: &mut Vec<f64>,
                 pending_ref: &mut Vec<ContinuousQuery>,
                 live: &mut Vec<QueryId>,
                 clock: cts_index::Timestamp,
                 budget: usize| {
        let report = service.pump_budget(clock, budget);
        if !report.registered.is_empty() {
            let flushed: Vec<ContinuousQuery> = std::mem::take(pending_ref);
            let ids = reference.register_batch(flushed);
            assert_eq!(ids, report.registered, "coalesced registration diverged");
            live.extend(ids);
        }
        for (doc_id, _reason) in &report.shed {
            offered_at.remove(&doc_id.0);
        }
        let drained_at = Instant::now();
        for (index, doc_id) in report.processed.iter().enumerate() {
            let (offered, doc) = offered_at
                .remove(&doc_id.0)
                .unwrap_or_else(|| panic!("processed unowned document {doc_id:?}"));
            latencies.push(drained_at.duration_since(offered).as_secs_f64() * 1e6);
            let expected = reference.process_document(doc);
            assert_eq!(
                expected, report.outcomes[index],
                "outcome diverged on {doc_id:?}"
            );
        }
    };

    for round in 0..rounds {
        if round == rounds / 2 {
            if let Some(storm) = storm_queries.take() {
                for query in storm {
                    match service.offer_register(query.clone()) {
                        (Admission::Accepted, Some(id)) => {
                            assert_eq!(id, reference.register(query), "immediate ids diverged");
                            live.push(id);
                        }
                        (Admission::Coalesced, None) => pending_ref.push(query),
                        (Admission::Retry { .. }, None) => {}
                        (admission, id) => {
                            panic!("impossible register admission {admission:?} / {id:?}")
                        }
                    }
                }
            }
        }
        let burst = options.burst.min(options.events - round * options.burst);
        for _ in 0..burst {
            let doc = stream.next_document();
            clock = clock.max(doc.arrival);
            let id = doc.id.0;
            match service.offer_document(doc.clone()) {
                Admission::Accepted => {
                    offered_at.insert(id, (Instant::now(), doc));
                }
                Admission::Shed(_) | Admission::Retry { .. } => {}
                Admission::Coalesced => unreachable!("events never coalesce at offer"),
            }
        }
        drain(
            &mut service,
            &mut reference,
            &mut offered_at,
            &mut latencies_micros,
            &mut pending_ref,
            &mut live,
            clock,
            drain_budget,
        );
    }
    // Quiesce.
    drain(
        &mut service,
        &mut reference,
        &mut offered_at,
        &mut latencies_micros,
        &mut pending_ref,
        &mut live,
        clock,
        usize::MAX,
    );
    assert_eq!(service.depth(), 0, "final pump left a backlog");
    assert!(offered_at.is_empty(), "events neither processed nor shed");

    let overload = service.overload_stats();
    assert_eq!(
        overload.offered,
        overload.accepted + overload.coalesced + overload.shed(),
        "shed accounting violated at quiescence: {overload:?}"
    );

    // Exact self-check on a sample of live queries against the unbounded
    // reference fed exactly the accepted sequence.
    let sampled = sample_queries(&live, 20);
    for &query in &sampled {
        assert_eq!(
            service.results(query),
            reference.current_results(query),
            "self-check diverged on {query:?}"
        );
    }

    latencies_micros.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let report = LoadgenReport {
        figure: "loadgen".to_string(),
        description: "Bounded-queue service under sustained burst overload: \
                      end-to-end latency percentiles, shed rates and exact \
                      accepted-sequence self-check vs an unbounded reference"
            .to_string(),
        unix_time_secs: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock after the epoch")
            .as_secs(),
        seed: options.seed,
        num_queries: options.queries,
        window_docs: options.window,
        shards: options.shards,
        queue_capacity: options.queue,
        burst: options.burst,
        drain_budget,
        deadline_ms: options.deadline_ms,
        offered: overload.offered,
        accepted: overload.accepted,
        coalesced: overload.coalesced,
        shed: overload.shed(),
        shed_deadline: overload.shed_deadline,
        shed_queue_full: overload.shed_queue_full,
        shed_rate: overload.shed() as f64 / overload.offered.max(1) as f64,
        retry_hints: overload.retry_hints,
        queue_high_water: overload.queue_high_water,
        register_offered: overload.register_offered,
        register_immediate: overload.register_immediate,
        register_coalesced: overload.register_coalesced,
        register_retry_hints: overload.register_retry_hints,
        latency_p50_micros: percentile(&latencies_micros, 0.50),
        latency_p99_micros: percentile(&latencies_micros, 0.99),
        latency_p999_micros: percentile(&latencies_micros, 0.999),
        latency_max_micros: latencies_micros.last().copied().unwrap_or(0.0),
        drained_events: latencies_micros.len(),
        accounting: "ok (offered == accepted + coalesced + shed)".to_string(),
        self_check: format!("ok ({} queries sampled)", sampled.len()),
    };
    eprintln!(
        "loadgen: offered {} → accepted {} + coalesced {} + shed {} ({:.1}% shed, \
         high water {}), p50 {:.0} µs, p99 {:.0} µs, p999 {:.0} µs",
        report.offered,
        report.accepted,
        report.coalesced,
        report.shed,
        report.shed_rate * 100.0,
        report.queue_high_water,
        report.latency_p50_micros,
        report.latency_p99_micros,
        report.latency_p999_micros
    );
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&options.out, json).expect("report file is writable");
    eprintln!("loadgen: wrote {}", options.out);
}
