//! Reproduction harness for the paper's Figure 3(b): mean processing time
//! per stream event, ITA vs the top-`k_max` naïve baseline, as the sliding
//! window grows.
//!
//! The full sweep is future work; this binary currently documents the
//! experiment and runs nothing.

fn main() {
    eprintln!(
        "fig3b: reproduction of Figure 3(b) — processing time vs. window size.\n\
         \n\
         Planned sweep: fix 1,000 continuous queries (k = 10) and vary the\n\
         count-based window N ∈ {{10k, 20k, 40k, 80k}} documents (plus the\n\
         time-based equivalents) on the 200 docs/s synthetic stream, reporting\n\
         the mean event processing time of ItaEngine and NaiveEngine via\n\
         cts_core::Monitor.\n\
         \n\
         The sweep harness is not implemented yet. In the meantime:\n\
           cargo bench --bench index_micro        # index-layer hot paths\n\
           cargo bench --bench ablation_rollup    # ITA roll-up on/off\n\
           cargo test  -p cts-core                # cross-engine validation"
    );
}
