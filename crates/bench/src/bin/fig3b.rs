//! Reproduction of the paper's Figure 3(b): mean processing time per stream
//! event, ITA vs the top-`k_max` naïve baseline, as the sliding window
//! grows.
//!
//! Protocol (§IV): fix 1,000 continuous queries (10 terms, k = 10) and vary
//! the count-based window over {10k, 20k, 40k} documents (80k with
//! `--full`) on the 200 docs/s synthetic WSJ-like stream, measuring
//! steady-state events through `cts_core::Monitor`. ITA's final top-k for a
//! sample of queries is the reference; the naïve engine **and** the
//! sharded-ITA arm (`--shards N` worker threads over term-filtered shadow
//! indexes) must reproduce it exactly or the run panics.
//!
//! Usage:
//!   cargo run --release -p cts-bench --bin fig3b            # paper scale
//!   cargo run --release -p cts-bench --bin fig3b -- --quick # CI smoke grid
//!   options: --full (adds the 80k window), --events N, --shards N
//!   (sharded-ITA workers, default 1), --batch N (events per sharded
//!   process_batch round-trip, default 1; > 1 adds a second, batched
//!   sharded arm per cell), --register-burst (register the workload in
//!   bursts of --batch queries per register_batch call instead of one bulk
//!   call), --out PATH (default BENCH_fig3b.json)
//!
//! The JSON report schema is documented in README §"Reproducing Figure 3".

use cts_bench::sweep::{fig3b_grid, run_sweep, SweepOptions};

fn main() {
    let options = SweepOptions::from_args("BENCH_fig3b.json");
    let grid = fig3b_grid(&options);
    run_sweep(
        "fig3b",
        "Mean event processing time vs. sliding-window size \
         (1,000 continuous queries, ITA vs top-kmax naive baseline)",
        grid,
        &options,
    );
}
