//! Reproduction of the paper's Figure 3(a): mean processing time per stream
//! event, ITA vs the top-`k_max` naïve baseline, as the number of installed
//! continuous queries grows.
//!
//! Protocol (§IV): fill a 10,000-document count-based window from the
//! synthetic WSJ-like stream (181,978-term vocabulary, 200 docs/s Poisson
//! arrivals), register N ∈ {100, 250, 500, 1000} queries (10 terms, k = 10),
//! then measure steady-state events — each arrival expires the oldest
//! document — through `cts_core::Monitor`. ITA's final top-k for a sample of
//! queries is the reference; the naïve engine **and** the sharded-ITA arm
//! (`--shards N` worker threads over term-filtered shadow indexes) must
//! reproduce it exactly or the run panics.
//!
//! Usage:
//!   cargo run --release -p cts-bench --bin fig3a            # paper scale
//!   cargo run --release -p cts-bench --bin fig3a -- --quick # CI smoke grid
//!   cargo run --release -p cts-bench --bin fig3a -- --shards 4 --batch 64
//!   options: --events N (measured events/cell), --shards N (sharded-ITA
//!   workers, default 1), --batch N (events per sharded process_batch
//!   round-trip, default 1; > 1 adds a second, batched sharded arm per cell
//!   next to the per-event one), --register-burst (register the workload in
//!   bursts of --batch queries per register_batch call instead of one bulk
//!   call), --chaos (arm injected worker faults during the measured phase of
//!   the sharded arm; every fault must recover and the self-check must still
//!   come out exact), --out PATH (default BENCH_fig3a.json)
//!
//! The JSON report schema is documented in README §"Reproducing Figure 3".

use cts_bench::sweep::{fig3a_grid, run_sweep, SweepOptions};

fn main() {
    let options = SweepOptions::from_args("BENCH_fig3a.json");
    let grid = fig3a_grid(&options);
    run_sweep(
        "fig3a",
        "Mean event processing time vs. number of continuous queries \
         (count-based window, ITA vs top-kmax naive baseline)",
        grid,
        &options,
    );
}
