//! Reproduction harness for the paper's Figure 3(a): mean processing time
//! per stream event, ITA vs the top-`k_max` naïve baseline, as the number of
//! installed continuous queries grows.
//!
//! The full sweep (1,000 queries over the WSJ-scale corpus) is future work;
//! this binary currently documents the experiment and runs nothing.

fn main() {
    eprintln!(
        "fig3a: reproduction of Figure 3(a) — processing time vs. number of queries.\n\
         \n\
         Planned sweep: register N ∈ {{100, 250, 500, 1000}} continuous queries\n\
         (k = 10, 10 terms each) against a 200 docs/s Poisson stream over the\n\
         synthetic WSJ-like corpus (DESIGN.md §3), then report the mean event\n\
         processing time of ItaEngine and NaiveEngine via cts_core::Monitor.\n\
         \n\
         The sweep harness is not implemented yet. In the meantime:\n\
           cargo bench --bench index_micro        # index-layer hot paths\n\
           cargo bench --bench ablation_rollup    # ITA roll-up on/off\n\
           cargo test  -p cts-core                # cross-engine validation"
    );
}
