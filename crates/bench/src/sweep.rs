//! The paper-scale Figure 3 sweep harness.
//!
//! Reproduces the experimental protocol of §IV: fill a count-based sliding
//! window from the synthetic WSJ-like stream, register the continuous-query
//! workload, then measure the mean per-event processing time of
//! [`ItaEngine`] and [`NaiveEngine`] over a run of steady-state events
//! (each arrival expires the oldest document, so every event exercises both
//! maintenance paths). Figure 3(a) grows the query count at a fixed window;
//! Figure 3(b) grows the window at the paper's 1,000 queries.
//!
//! Engines run **sequentially**, each reading its own identically-seeded
//! (hence identical) document stream — nothing is materialised, so peak
//! memory stays at one engine's footprint — and the harness
//! cross-checks them anyway: ITA's final top-k for a sample of queries is
//! snapshotted and the naïve engine must reproduce it exactly
//! ([`cts_core::validate::compare_to_snapshot`]). A cell that diverges
//! panics; the sweep binaries are therefore also paper-scale integration
//! tests.
//!
//! Reports serialise to machine-readable JSON (`BENCH_fig3a.json` /
//! `BENCH_fig3b.json`) so the performance trajectory of this repository is
//! recorded run over run; see README §"Reproducing Figure 3".

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use cts_core::validate::{
    compare_to_snapshot, sample_queries, snapshot_results, DEFAULT_TOLERANCE,
};
use cts_core::{
    ContinuousQuery, Engine, ItaConfig, ItaEngine, Monitor, NaiveConfig, NaiveEngine,
    ShardedItaEngine,
};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::{QueryId, SlidingWindow};
use cts_text::weighting::Scoring;
use cts_text::Dictionary;
use serde::Serialize;

/// One cell of a Figure 3 sweep: a fully specified experiment.
#[derive(Debug, Clone)]
pub struct SweepSettings {
    /// Number of registered continuous queries (paper default: 1,000).
    pub num_queries: usize,
    /// Count-based window size in documents (paper default: 10,000+).
    pub window_docs: usize,
    /// Steady-state events to measure after the window is full.
    pub measured_events: usize,
    /// Corpus shape (vocabulary, document lengths).
    pub corpus: CorpusConfig,
    /// Mean Poisson arrival rate in documents/second (paper: 200).
    pub arrival_rate_per_sec: f64,
    /// Search terms per query (paper default: 10).
    pub query_length: usize,
    /// Results maintained per query (paper: 10).
    pub k: usize,
    /// Base seed; the stream and workload derive their own from it.
    pub seed: u64,
    /// Compare every `stride`-th query between the engines after the run.
    pub self_check_stride: usize,
    /// Worker shards for the sharded-ITA arm (1 = a single worker thread).
    pub shards: usize,
    /// Events per `process_batch` call on the sharded-ITA arm (1 = the
    /// per-event protocol). The ITA and naive arms always run per-event;
    /// when `batch > 1` the cell grows an extra `sharded-ita` arm at batch
    /// 1, so the handoff-overhead reduction is recorded side by side.
    pub batch: usize,
    /// Queries per [`Engine::register_batch`] call during setup. 0 registers
    /// the whole workload in **one** bulk call (the cheapest protocol);
    /// a positive value chunks registration into bursts of that size — the
    /// `register_burst` sweep mode, pricing bursty online registration.
    pub register_burst: usize,
    /// Arm two injected worker faults per shard at the start of the
    /// measured phase of the sharded arm (the chaos sweep mode): the first
    /// events each shard processes are applied and then the worker panics,
    /// so the measured mean includes warm recoveries — and the self-check
    /// still has to come out exact.
    pub chaos: bool,
}

impl SweepSettings {
    /// A paper-scale cell: WSJ-like corpus (181,978-term vocabulary), 200
    /// docs/s, 10-term queries with `k = 10`.
    pub fn paper(num_queries: usize, window_docs: usize, measured_events: usize) -> Self {
        Self {
            num_queries,
            window_docs,
            measured_events,
            corpus: CorpusConfig {
                seed: 0xF16_3000,
                ..CorpusConfig::default()
            },
            arrival_rate_per_sec: 200.0,
            query_length: 10,
            k: 10,
            seed: 0xF16_3100,
            self_check_stride: 20,
            shards: 1,
            batch: 1,
            register_burst: 0,
            chaos: false,
        }
    }

    /// A reduced cell for CI smoke runs: small vocabulary, short documents,
    /// everything finishes in seconds.
    pub fn quick(num_queries: usize, window_docs: usize, measured_events: usize) -> Self {
        Self {
            corpus: CorpusConfig {
                seed: 0xF16_3000,
                ..CorpusConfig::small()
            },
            self_check_stride: 5,
            ..Self::paper(num_queries, window_docs, measured_events)
        }
    }
}

/// Measured outcome of one engine in one cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Engine name (`ita` or `naive`).
    pub engine: String,
    /// Registered queries.
    pub num_queries: usize,
    /// Window size in documents.
    pub window_docs: usize,
    /// Steady-state events measured.
    pub measured_events: u64,
    /// Expirations triggered by the measured events.
    pub expirations: u64,
    /// Wall-clock seconds to stream the window full (no queries registered).
    pub fill_seconds: f64,
    /// Wall-clock seconds to register the full query workload.
    pub register_seconds: f64,
    /// Mean per-event processing time, microseconds (the paper's metric).
    pub mean_event_micros: f64,
    /// Slowest single event, microseconds.
    pub max_event_micros: f64,
    /// Steady-state throughput in events/second of processing time.
    pub events_per_second: f64,
    /// Mean (query, update) pairs examined per event — the paper's work
    /// measure, where ITA's pruning shows up directly.
    pub queries_touched_per_event: f64,
    /// Top-k changes observed during measurement.
    pub results_changed: u64,
    /// Full view recomputations (naïve engine only).
    pub recomputations: Option<u64>,
    /// Total impact entries in the inverted index (ITA: the full index;
    /// sharded ITA: summed across the term-filtered shadow indexes).
    pub index_postings: Option<usize>,
    /// Worker shards (sharded-ITA arm only).
    pub shards: Option<usize>,
    /// Events per `process_batch` call this arm was driven with (1 = the
    /// per-event protocol).
    pub batch: usize,
    /// Queries per `register_batch` call during setup (0 = the whole
    /// workload in one bulk call).
    pub register_burst: usize,
    /// Slowest single batch, microseconds (0 when `batch == 1`; the
    /// per-event maximum is `max_event_micros` in that case).
    pub max_batch_micros: f64,
    /// Queries migrated by the skew rebalancer during the whole run
    /// (sharded-ITA arm only).
    pub migrations: Option<u64>,
    /// Mean per-event worker busy time summed across shards, microseconds
    /// (sharded-ITA arm only). Divide by `mean_event_micros` for parallel
    /// utilisation; at 1 shard the difference to `mean_event_micros` is the
    /// channel fan-out overhead.
    pub shard_busy_per_event_micros: Option<f64>,
    /// Worker faults observed during the run (sharded-ITA arm only;
    /// non-zero only in chaos mode).
    pub faults: Option<u64>,
    /// Recoveries performed during the run (sharded-ITA arm only; in chaos
    /// mode every fault must have recovered, so this equals `faults`).
    pub recoveries: Option<u64>,
    /// Total time spent recovering shard state, microseconds (sharded-ITA
    /// arm only).
    pub recovery_micros: Option<u64>,
    /// Events shed by a bounded ingest queue in front of this arm (deadline
    /// expiries plus queue-full displacements). The sweep arms run
    /// unbounded, so this records 0 — the column exists so a cell run with a
    /// bounded queue reports what was dropped instead of reading as full
    /// coverage; the bounded-queue profile itself lives in
    /// `BENCH_loadgen.json`.
    pub shed: u64,
    /// Events processed as members of coalesced `process_batch` bursts by a
    /// bounded ingest queue (0 for the unbounded sweep arms; distinct from
    /// `batch`, which is the *driver's* fixed batching protocol).
    pub coalesced: u64,
    /// Deepest the bounded ingest queue got during the run (0 when
    /// unbounded).
    pub queue_high_water: u64,
    /// Outcome of the cross-engine self-check (`"reference"` for the engine
    /// that produced the snapshot, `"ok (n queries)"` for the one checked
    /// against it).
    pub self_check: String,
}

/// A complete sweep: shared setup plus one [`CellReport`] per (cell, engine).
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Which figure this reproduces (`fig3a` / `fig3b`).
    pub figure: String,
    /// Human-readable description of the protocol.
    pub description: String,
    /// Seconds since the Unix epoch when the sweep finished.
    pub unix_time_secs: u64,
    /// Vocabulary size of the synthetic corpus.
    pub vocabulary_size: usize,
    /// Mean Poisson arrival rate, documents/second.
    pub arrival_rate_per_sec: f64,
    /// Search terms per query.
    pub query_length: usize,
    /// Results maintained per query.
    pub k: usize,
    /// Worker shards used by the sharded-ITA arm of every cell.
    pub shards: usize,
    /// Batch size used by the batched sharded-ITA arm of every cell.
    pub batch: usize,
    /// One entry per (cell, engine), in execution order.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// Creates an empty report that cells are appended to.
    pub fn new(figure: &str, description: &str, template: &SweepSettings) -> Self {
        Self {
            figure: figure.to_string(),
            description: description.to_string(),
            unix_time_secs: 0,
            vocabulary_size: template.corpus.vocabulary_size,
            arrival_rate_per_sec: template.arrival_rate_per_sec,
            query_length: template.query_length,
            k: template.k,
            shards: template.shards,
            batch: template.batch,
            cells: Vec::new(),
        }
    }

    /// Stamps the completion time and serialises the report to `path`.
    ///
    /// A system clock before the Unix epoch cannot be represented in the
    /// report's `unix_time_secs` field; rather than silently recording 0 (an
    /// apparently valid timestamp), the failure is surfaced as an error so
    /// no sweep ships a corrupted timing field.
    pub fn write(mut self, path: &str) -> std::io::Result<()> {
        self.unix_time_secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "system clock is before the Unix epoch by {:?}",
                        e.duration()
                    ),
                )
            })?
            .as_secs();
        let json = serde_json::to_string(&self).expect("report serialises");
        std::fs::write(path, json)
    }
}

/// Generates the cell's continuous-query workload (deterministic in the
/// settings' seed).
fn build_queries(settings: &SweepSettings) -> Vec<ContinuousQuery> {
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: settings.num_queries,
            query_length: settings.query_length,
            k: settings.k,
            popularity_biased: false,
            seed: settings.seed ^ 0x51,
        },
        settings.corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect()
}

/// The cell's document stream. Fully deterministic in the settings' seed,
/// so each engine gets its own instance and reads an identical sequence —
/// nothing is materialised, and peak memory really is one engine's
/// footprint as the module docs promise.
fn build_stream(settings: &SweepSettings) -> DocumentStream {
    DocumentStream::new(
        settings.corpus,
        StreamConfig {
            arrival_rate_per_sec: settings.arrival_rate_per_sec,
            seed: settings.seed ^ 0xD0C,
        },
    )
}

struct DriveOutcome<E: Engine> {
    monitor: Monitor<E>,
    query_ids: Vec<QueryId>,
    fill_seconds: f64,
    register_seconds: f64,
}

/// Streams one engine through fill → register → measured events. Document
/// generation happens between `process_document`/`process_batch` calls
/// (inside [`Monitor::run_batched`]'s untimed buffer fill), so the
/// monitor's timings never include it (fill_seconds, an informational
/// total, does). `on_measure_start` runs after fill + registration and
/// before the first measured event — the hook the sharded arm uses to zero
/// its per-worker statistics, so worker busy time covers exactly the
/// measured events the wall-clock mean covers. `batch` > 1 drives the
/// measured events through the engine's batched path, `batch` events per
/// round-trip.
fn drive<E: Engine>(
    mut engine: E,
    settings: &SweepSettings,
    queries: &[ContinuousQuery],
    batch: usize,
    on_measure_start: impl FnOnce(&mut E),
) -> DriveOutcome<E> {
    let mut stream = build_stream(settings);
    let start = Instant::now();
    for _ in 0..settings.window_docs {
        engine.process_document(stream.next_document());
    }
    let fill_seconds = start.elapsed().as_secs_f64();

    // Registration goes through the bulk path (`Engine::register_batch`),
    // either as one call over the whole workload or — in the
    // `register_burst` sweep mode — chunked into bursts, pricing bursty
    // online registration. Both are differential-tested byte-identical to
    // the one-by-one loop this harness used before DESIGN.md §9.
    let start = Instant::now();
    let query_ids: Vec<QueryId> = if settings.register_burst == 0 {
        engine.register_batch(queries.to_vec())
    } else {
        let mut ids = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(settings.register_burst) {
            ids.extend(engine.register_batch(chunk.to_vec()));
        }
        ids
    };
    let register_seconds = start.elapsed().as_secs_f64();

    on_measure_start(&mut engine);
    let mut monitor = Monitor::new(engine);
    monitor.run_batched(
        (0..settings.measured_events).map(|_| stream.next_document()),
        batch,
    );
    DriveOutcome {
        monitor,
        query_ids,
        fill_seconds,
        register_seconds,
    }
}

fn base_report<E: Engine>(settings: &SweepSettings, outcome: &DriveOutcome<E>) -> CellReport {
    let stats = outcome.monitor.stats();
    let events = stats.events.max(1);
    CellReport {
        engine: outcome.monitor.name().to_string(),
        num_queries: settings.num_queries,
        window_docs: settings.window_docs,
        measured_events: stats.events,
        expirations: stats.expirations,
        fill_seconds: outcome.fill_seconds,
        register_seconds: outcome.register_seconds,
        mean_event_micros: stats.total_time.as_secs_f64() * 1e6 / events as f64,
        max_event_micros: stats.max_event_time.as_secs_f64() * 1e6,
        events_per_second: stats.events_per_second(),
        queries_touched_per_event: stats.total_queries_touched() as f64 / events as f64,
        results_changed: stats.results_changed,
        recomputations: None,
        index_postings: None,
        shards: None,
        batch: 1,
        register_burst: settings.register_burst,
        max_batch_micros: stats.max_batch_time.as_secs_f64() * 1e6,
        migrations: None,
        shard_busy_per_event_micros: None,
        faults: None,
        recoveries: None,
        recovery_micros: None,
        shed: stats.overload.shed(),
        coalesced: stats.overload.coalesced,
        queue_high_water: stats.overload.queue_high_water,
        self_check: String::new(),
    }
}

/// Runs one cell: ITA first (its final top-k sample becomes the reference
/// snapshot), then the naïve baseline and the sharded-ITA arm
/// (`settings.shards` worker threads), each of which must reproduce the
/// snapshot exactly. When `settings.batch > 1`, the sharded arm runs
/// **twice** — once per-event and once batched — so the JSON records the
/// handoff-overhead reduction side by side. Returns the [`CellReport`]s in
/// execution order.
///
/// # Panics
///
/// Panics if the engines diverge on any sampled query — the sweep doubles as
/// a paper-scale correctness check.
pub fn run_cell(settings: &SweepSettings) -> Vec<CellReport> {
    let queries = build_queries(settings);
    let window = SlidingWindow::count_based(settings.window_docs);

    eprintln!(
        "  cell: {} queries, {}-doc window, {} events, {} shard(s), batch {}",
        settings.num_queries,
        settings.window_docs,
        settings.measured_events,
        settings.shards,
        settings.batch
    );

    // ITA.
    let outcome = drive(
        ItaEngine::new(window, ItaConfig::default()),
        settings,
        &queries,
        1,
        |_| {},
    );
    let sampled = sample_queries(&outcome.query_ids, settings.self_check_stride);
    let snapshot = snapshot_results(&outcome.monitor, &sampled);
    let mut ita_report = base_report(settings, &outcome);
    ita_report.index_postings = Some(outcome.monitor.engine().index_stats().postings);
    ita_report.self_check = "reference".to_string();
    eprintln!(
        "    ita:     mean {:.1} µs/event, {:.1} queries touched/event",
        ita_report.mean_event_micros, ita_report.queries_touched_per_event
    );
    drop(outcome); // Free the index before the next engine fills its store.

    // Naïve baseline, over its own identically-seeded stream.
    let outcome = drive(
        NaiveEngine::new(window, NaiveConfig::default()),
        settings,
        &queries,
        1,
        |_| {},
    );
    if let Err(divergence) = compare_to_snapshot(
        "ita",
        &snapshot,
        &outcome.monitor,
        &sampled,
        DEFAULT_TOLERANCE,
    ) {
        panic!("paper-scale self-check failed: {divergence}");
    }
    let mut naive_report = base_report(settings, &outcome);
    naive_report.recomputations = Some(outcome.monitor.engine().recomputations());
    naive_report.self_check = format!("ok ({} queries)", sampled.len());
    eprintln!(
        "    naive:   mean {:.1} µs/event, {:.1} queries touched/event",
        naive_report.mean_event_micros, naive_report.queries_touched_per_event
    );
    drop(outcome);

    // Sharded ITA: query-partitioned worker threads over term-filtered
    // shadow indexes, cross-checked against the same ITA snapshot — once
    // per-event, and (when configured) once batched.
    let mut reports = vec![ita_report, naive_report];
    let mut batches = vec![1usize];
    if settings.batch > 1 {
        batches.push(settings.batch);
    }
    for batch in batches {
        let outcome = drive(
            ShardedItaEngine::new(window, ItaConfig::default(), settings.shards),
            settings,
            &queries,
            batch,
            // Fill and registration are untimed setup; zero the worker stats
            // so shard_busy_per_event_micros covers exactly the measured
            // events. In chaos mode, also arm two faults per shard: the
            // first measured events detonate them, so the measured mean
            // prices warm recovery and the self-check proves it was exact.
            |engine: &mut ShardedItaEngine| {
                engine.reset_shard_stats();
                if settings.chaos {
                    for shard in 0..engine.num_shards() {
                        for _ in 0..2 {
                            assert!(engine.inject_fault(shard), "arming chaos fault failed");
                        }
                    }
                }
            },
        );
        if let Err(divergence) = compare_to_snapshot(
            "ita",
            &snapshot,
            &outcome.monitor,
            &sampled,
            DEFAULT_TOLERANCE,
        ) {
            panic!("sharded-vs-single-shard self-check failed (batch {batch}): {divergence}");
        }
        let mut sharded_report = base_report(settings, &outcome);
        sharded_report.batch = batch;
        let engine = outcome.monitor.engine();
        sharded_report.shards = Some(engine.num_shards());
        sharded_report.migrations = Some(engine.migrations());
        sharded_report.index_postings = Some(
            engine
                .shard_index_stats()
                .iter()
                .map(|stats| stats.postings)
                .sum(),
        );
        let busy = engine.aggregate_shard_stats();
        let events = outcome.monitor.stats().events.max(1);
        sharded_report.shard_busy_per_event_micros =
            Some(busy.total_time.as_secs_f64() * 1e6 / events as f64);
        let fault_stats = engine.fault_stats().expect("sharded engines track faults");
        sharded_report.faults = Some(fault_stats.faults);
        sharded_report.recoveries = Some(fault_stats.recoveries);
        sharded_report.recovery_micros = Some(fault_stats.recovery_micros);
        if settings.chaos {
            assert!(
                fault_stats.faults > 0,
                "chaos mode armed faults but none fired"
            );
            assert_eq!(
                fault_stats.faults, fault_stats.recoveries,
                "chaos mode: some faults did not recover"
            );
            assert_eq!(fault_stats.degraded_shards, 0, "run ended degraded");
        }
        sharded_report.self_check = format!("ok ({} queries)", sampled.len());
        eprintln!(
            "    sharded: mean {:.1} µs/event ({} shards, batch {}, {:.1} µs busy/event, \
             {} migrations), {:.1} queries touched/event",
            sharded_report.mean_event_micros,
            settings.shards,
            batch,
            sharded_report.shard_busy_per_event_micros.unwrap(),
            sharded_report.migrations.unwrap(),
            sharded_report.queries_touched_per_event
        );
        if settings.chaos {
            eprintln!(
                "             chaos: {} faults, {} recoveries, {} µs recovering \
                 (self_check still exact)",
                fault_stats.faults, fault_stats.recoveries, fault_stats.recovery_micros
            );
        }
        reports.push(sharded_report);
    }

    reports
}

/// Shared command-line options of the sweep binaries.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Run the reduced CI-smoke grid instead of the paper-scale one.
    pub quick: bool,
    /// Extend the grid to its largest (slowest) configuration.
    pub full: bool,
    /// Output path for the JSON report.
    pub out: String,
    /// Override for measured events per cell.
    pub events: Option<usize>,
    /// Worker shards for the sharded-ITA arm of every cell.
    pub shards: usize,
    /// Events per `process_batch` round-trip for the batched sharded arm
    /// (1 disables the extra batched arm).
    pub batch: usize,
    /// Register the query workload in bursts of `batch` queries per
    /// `register_batch` call instead of one bulk call (the `register_burst`
    /// sweep mode).
    pub register_burst: bool,
    /// Arm injected worker faults during the measured phase of the sharded
    /// arm (the chaos sweep mode; the self-check must still pass).
    pub chaos: bool,
}

/// The usage text printed when a sweep binary is invoked with bad arguments.
pub const USAGE: &str =
    "usage: <sweep binary> [--quick] [--full] [--events N] [--shards N] [--batch N] [--register-burst] [--chaos] [--out PATH]
  --quick     run the reduced CI-smoke grid instead of the paper-scale one
  --full      extend the grid to its largest (slowest) configuration
  --events N  measured events per cell (positive integer)
  --shards N  worker shards for the sharded-ITA arm (positive integer, default 1)
  --batch N   events per process_batch round-trip on the sharded arm (positive
              integer, default 1; values > 1 add a second, batched sharded arm
              to every cell next to the per-event one)
  --register-burst
              register the query workload in bursts of `--batch` queries per
              register_batch call instead of one bulk call, pricing bursty
              online registration
  --chaos     arm injected worker faults during the measured phase of the
              sharded arm; the run must recover every fault and still pass
              the exact self-check
  --out PATH  output path for the JSON report";

impl SweepOptions {
    /// Parses `--quick`, `--full`, `--events N`, `--shards N`, `--batch N`
    /// and `--out PATH` from the
    /// process arguments; `default_out` names the report file. On an unknown
    /// flag or a malformed value, prints the error and [`USAGE`] to stderr
    /// and exits with status 2 — CI fails loudly on typos rather than
    /// silently running the wrong grid, and a human gets usage instead of a
    /// panic backtrace.
    pub fn from_args(default_out: &str) -> Self {
        match Self::parse(default_out, std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("error: {message}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The argument grammar behind [`SweepOptions::from_args`], split out so
    /// it can be unit-tested without touching the process environment.
    fn parse(default_out: &str, args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut options = Self {
            quick: false,
            full: false,
            out: default_out.to_string(),
            events: None,
            shards: 1,
            batch: 1,
            register_burst: false,
            chaos: false,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--full" => options.full = true,
                "--out" => {
                    options.out = args.next().ok_or("--out requires a path")?;
                }
                "--events" => {
                    let value = args.next().ok_or("--events requires a count")?;
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| format!("--events requires an integer, got {value:?}"))?;
                    if parsed == 0 {
                        return Err("--events requires a positive count".to_string());
                    }
                    options.events = Some(parsed);
                }
                "--shards" => {
                    let value = args.next().ok_or("--shards requires a count")?;
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| format!("--shards requires an integer, got {value:?}"))?;
                    if parsed == 0 {
                        return Err("--shards requires a positive count".to_string());
                    }
                    options.shards = parsed;
                }
                "--batch" => {
                    let value = args.next().ok_or("--batch requires a count")?;
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| format!("--batch requires an integer, got {value:?}"))?;
                    if parsed == 0 {
                        return Err("--batch requires a positive count".to_string());
                    }
                    options.batch = parsed;
                }
                "--register-burst" => options.register_burst = true,
                "--chaos" => options.chaos = true,
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(options)
    }
}

/// The Figure 3(a) grid: query count sweep at a fixed window.
pub fn fig3a_grid(options: &SweepOptions) -> Vec<SweepSettings> {
    let mut cells: Vec<SweepSettings> = if options.quick {
        let events = options.events.unwrap_or(200);
        [10, 25, 50]
            .iter()
            .map(|&n| SweepSettings::quick(n, 200, events))
            .collect()
    } else {
        let events = options.events.unwrap_or(2_000);
        [100, 250, 500, 1_000]
            .iter()
            .map(|&n| SweepSettings::paper(n, 10_000, events))
            .collect()
    };
    for cell in &mut cells {
        cell.shards = options.shards;
        cell.batch = options.batch;
        cell.register_burst = if options.register_burst {
            options.batch
        } else {
            0
        };
        cell.chaos = options.chaos;
    }
    cells
}

/// The Figure 3(b) grid: window sweep at the paper's 1,000 queries
/// (`--full` extends to the 80k-document window).
pub fn fig3b_grid(options: &SweepOptions) -> Vec<SweepSettings> {
    let mut cells: Vec<SweepSettings> = if options.quick {
        let events = options.events.unwrap_or(200);
        [100, 200, 400]
            .iter()
            .map(|&w| SweepSettings::quick(25, w, events))
            .collect()
    } else {
        let events = options.events.unwrap_or(2_000);
        let mut windows = vec![10_000, 20_000, 40_000];
        if options.full {
            windows.push(80_000);
        }
        windows
            .into_iter()
            .map(|w| SweepSettings::paper(1_000, w, events))
            .collect()
    };
    for cell in &mut cells {
        cell.shards = options.shards;
        cell.batch = options.batch;
        cell.register_burst = if options.register_burst {
            options.batch
        } else {
            0
        };
        cell.chaos = options.chaos;
    }
    cells
}

/// Runs a full grid and writes the JSON report to `options.out`.
pub fn run_sweep(
    figure: &str,
    description: &str,
    grid: Vec<SweepSettings>,
    options: &SweepOptions,
) {
    let template = grid.first().expect("grid has at least one cell").clone();
    let mut report = SweepReport::new(figure, description, &template);
    eprintln!(
        "{figure}: {} cell(s), vocabulary {}, {} docs/s",
        grid.len(),
        template.corpus.vocabulary_size,
        template.arrival_rate_per_sec
    );
    for settings in &grid {
        report.cells.extend(run_cell(settings));
    }
    let out = options.out.clone();
    report.write(&out).expect("report file is writable");
    eprintln!("{figure}: wrote {out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_cell_runs_end_to_end_and_self_checks() {
        let mut settings = SweepSettings::quick(8, 60, 40);
        settings.shards = 2;
        let cells = run_cell(&settings);
        assert_eq!(cells.len(), 3);
        let (ita, naive, sharded) = (&cells[0], &cells[1], &cells[2]);
        assert_eq!(ita.engine, "ita");
        assert_eq!(naive.engine, "naive");
        assert_eq!(sharded.engine, "sharded-ita");
        assert_eq!(ita.measured_events, 40);
        assert_eq!(naive.measured_events, 40);
        assert_eq!(sharded.measured_events, 40);
        // Steady state: every arrival expires exactly one document.
        assert_eq!(ita.expirations, 40);
        assert_eq!(sharded.expirations, 40);
        assert!(ita.mean_event_micros > 0.0);
        assert!(ita.index_postings.unwrap() > 0);
        assert!(naive.recomputations.is_some());
        assert!(naive.self_check.starts_with("ok ("));
        // The sharded arm reproduced the ITA snapshot exactly and reports
        // its shard count, shadow footprint and worker busy time.
        assert!(sharded.self_check.starts_with("ok ("));
        assert_eq!(sharded.shards, Some(2));
        assert!(sharded.index_postings.unwrap() > 0);
        assert!(sharded.shard_busy_per_event_micros.unwrap() > 0.0);
        // Query partitioning keeps the per-event work measure identical.
        assert_eq!(
            sharded.queries_touched_per_event,
            ita.queries_touched_per_event
        );
        // The headline claim, visible even at toy scale: ITA touches fewer
        // (query, update) pairs per event than the all-queries baseline.
        assert!(ita.queries_touched_per_event < naive.queries_touched_per_event);
        // The sweep arms run unbounded: the overload columns exist (so a
        // bounded-queue cell can report its drops) and record zero here.
        for cell in &cells {
            assert_eq!(
                (cell.shed, cell.coalesced, cell.queue_high_water),
                (0, 0, 0)
            );
        }
    }

    #[test]
    fn a_batched_cell_grows_a_second_sharded_arm_that_matches() {
        let mut settings = SweepSettings::quick(8, 60, 40);
        settings.shards = 2;
        settings.batch = 16;
        let cells = run_cell(&settings);
        assert_eq!(cells.len(), 4);
        let (singles, batched) = (&cells[2], &cells[3]);
        assert_eq!(singles.engine, "sharded-ita");
        assert_eq!(batched.engine, "sharded-ita");
        assert_eq!(singles.batch, 1);
        assert_eq!(batched.batch, 16);
        // Both sharded arms processed every event and reproduced the ITA
        // snapshot; the batched arm was really driven through
        // process_batch (it recorded whole-batch maxima) — and since the
        // sharded workers time their batched events individually, its
        // per-event maximum is populated too, not the 0.0 this field used
        // to ship on batched arms.
        assert_eq!(singles.measured_events, 40);
        assert_eq!(batched.measured_events, 40);
        assert!(batched.self_check.starts_with("ok ("));
        assert!(batched.max_batch_micros > 0.0);
        assert!(batched.max_event_micros > 0.0);
        assert!(batched.max_event_micros <= batched.max_batch_micros);
        assert!(singles.max_event_micros > 0.0);
        assert_eq!(singles.max_batch_micros, 0.0);
        assert!(batched.migrations.is_some());
        // The per-event work measure is protocol-independent.
        assert_eq!(
            singles.queries_touched_per_event,
            batched.queries_touched_per_event
        );
    }

    #[test]
    fn register_burst_mode_chunks_registration_and_still_self_checks() {
        let mut settings = SweepSettings::quick(9, 60, 30);
        settings.shards = 2;
        settings.register_burst = 4; // 9 queries → bursts of 4, 4, 1.
        let cells = run_cell(&settings);
        assert_eq!(cells.len(), 3);
        for cell in &cells {
            assert_eq!(cell.register_burst, 4);
            assert!(cell.register_seconds >= 0.0);
            assert!(cell.self_check == "reference" || cell.self_check.starts_with("ok ("));
        }
    }

    #[test]
    fn a_chaos_cell_recovers_every_fault_and_still_self_checks() {
        let mut settings = SweepSettings::quick(8, 60, 40);
        settings.shards = 2;
        settings.chaos = true;
        let cells = run_cell(&settings);
        let sharded = &cells[2];
        assert_eq!(sharded.engine, "sharded-ita");
        // run_cell already asserts faults == recoveries > 0 and a clean
        // self-check; here we additionally pin down what the JSON records.
        assert_eq!(sharded.faults, sharded.recoveries);
        assert!(sharded.faults.unwrap() >= 4, "2 faults/shard armed");
        assert!(sharded.recovery_micros.unwrap() > 0);
        assert!(sharded.self_check.starts_with("ok ("));
        // The fault-free arms carry no fault counters.
        assert_eq!(cells[0].faults, None);
        assert_eq!(cells[1].faults, None);
    }

    #[test]
    fn reports_serialise_to_json() {
        let settings = SweepSettings::quick(4, 30, 10);
        let mut report = SweepReport::new("fig3x", "test sweep", &settings);
        report.cells.extend(run_cell(&settings));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"figure\":\"fig3x\""));
        assert!(json.contains("\"engine\":\"ita\""));
        assert!(json.contains("\"mean_event_micros\""));
    }

    fn parse(args: &[&str]) -> Result<SweepOptions, String> {
        SweepOptions::parse("DEFAULT.json", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn argument_grammar_accepts_the_documented_flags() {
        let options = parse(&[
            "--quick",
            "--events",
            "50",
            "--shards",
            "4",
            "--batch",
            "64",
            "--register-burst",
            "--chaos",
            "--out",
            "x.json",
        ])
        .unwrap();
        assert!(options.quick);
        assert!(!options.full);
        assert_eq!(options.events, Some(50));
        assert_eq!(options.shards, 4);
        assert_eq!(options.batch, 64);
        assert!(options.register_burst);
        assert!(options.chaos);
        assert_eq!(options.out, "x.json");
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.out, "DEFAULT.json");
        assert_eq!(defaults.events, None);
        assert_eq!(defaults.shards, 1);
        assert_eq!(defaults.batch, 1);
        assert!(!defaults.register_burst);
        assert!(!defaults.chaos);
        assert!(USAGE.contains("--chaos"));
    }

    #[test]
    fn argument_grammar_rejects_bad_input_with_a_message() {
        // Unknown flags and malformed values must produce an error (rendered
        // with USAGE by from_args), never a panic or a silently-wrong grid.
        assert!(parse(&["--typo"]).unwrap_err().contains("--typo"));
        assert!(parse(&["--events"]).unwrap_err().contains("count"));
        assert!(parse(&["--events", "many"]).unwrap_err().contains("many"));
        assert!(parse(&["--events", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--shards"]).unwrap_err().contains("count"));
        assert!(parse(&["--shards", "no"]).unwrap_err().contains("no"));
        assert!(parse(&["--shards", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--batch"]).unwrap_err().contains("count"));
        assert!(parse(&["--batch", "half"]).unwrap_err().contains("half"));
        assert!(parse(&["--batch", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--out"]).unwrap_err().contains("path"));
        assert!(USAGE.contains("--events"));
        assert!(USAGE.contains("--shards"));
        assert!(USAGE.contains("--batch"));
        assert!(USAGE.contains("--register-burst"));
    }

    #[test]
    fn written_reports_carry_a_real_timestamp() {
        let settings = SweepSettings::quick(4, 30, 10);
        let report = SweepReport::new("fig3t", "timestamp test", &settings);
        let path = std::env::temp_dir().join("cts_sweep_timestamp_test.json");
        report.write(path.to_str().unwrap()).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // unix_time_secs is stamped from the real clock, not the 0 sentinel.
        assert!(!json.contains("\"unix_time_secs\":0,"));
    }

    #[test]
    fn grids_have_the_documented_shape() {
        let paper = SweepOptions {
            quick: false,
            full: false,
            out: String::new(),
            events: None,
            shards: 4,
            batch: 64,
            register_burst: false,
            chaos: true,
        };
        let quick = SweepOptions {
            quick: true,
            ..paper.clone()
        };
        let full = SweepOptions {
            full: true,
            ..paper.clone()
        };
        let a = fig3a_grid(&paper);
        assert!(a
            .iter()
            .all(|s| s.shards == 4 && s.batch == 64 && s.register_burst == 0 && s.chaos));
        assert!(fig3b_grid(&paper)
            .iter()
            .all(|s| s.shards == 4 && s.batch == 64 && s.register_burst == 0));
        // --register-burst chunks registration at the --batch size.
        let bursty = SweepOptions {
            register_burst: true,
            ..paper.clone()
        };
        assert!(fig3a_grid(&bursty).iter().all(|s| s.register_burst == 64));
        assert!(fig3b_grid(&bursty).iter().all(|s| s.register_burst == 64));
        assert_eq!(
            a.iter().map(|s| s.num_queries).collect::<Vec<_>>(),
            vec![100, 250, 500, 1_000]
        );
        assert!(a.iter().all(|s| s.window_docs == 10_000));
        assert!(fig3a_grid(&quick).iter().all(|s| s.window_docs < 1_000));
        let b = fig3b_grid(&paper);
        assert_eq!(
            b.iter().map(|s| s.window_docs).collect::<Vec<_>>(),
            vec![10_000, 20_000, 40_000]
        );
        assert!(b.iter().all(|s| s.num_queries == 1_000));
        assert_eq!(fig3b_grid(&full).last().unwrap().window_docs, 80_000);
    }
}
