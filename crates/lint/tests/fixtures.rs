//! Self-test: every rule has a known-bad fixture that trips it — and only
//! it. Each fixture is linted under a masquerade path chosen so exactly one
//! rule is in scope; the fixture sources avoid the other rules' tokens.

use std::collections::BTreeSet;

use cts_lint::{lint_source, Finding, RULES};

fn lint_fixture(fixture: &str, masquerade: &str) -> Vec<Finding> {
    let path = format!("{}/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("cannot read fixture {path}: {err}"));
    lint_source(masquerade, &source)
}

/// (fixture file, masquerade path, the single rule it must trip).
const CASES: [(&str, &str, &str); 6] = [
    (
        "nondet_iteration.rs",
        "crates/core/src/result.rs",
        "nondet-iteration",
    ),
    (
        "clock_in_apply.rs",
        "crates/core/src/testkit.rs",
        "clock-in-apply",
    ),
    (
        "panic_in_hot_path.rs",
        "crates/index/src/segmented.rs",
        "panic-in-hot-path",
    ),
    (
        "spawn_outside_supervisor.rs",
        "crates/core/src/monitor.rs",
        "spawn-outside-supervisor",
    ),
    (
        "crate_hygiene.rs",
        "crates/fake/src/lib.rs",
        "crate-hygiene",
    ),
    (
        "unwrap_in_service.rs",
        "crates/core/src/fault.rs",
        "unwrap-in-service",
    ),
];

#[test]
fn every_rule_has_a_fixture_that_trips_it_and_only_it() {
    for (fixture, masquerade, rule) in CASES {
        let findings = lint_fixture(fixture, masquerade);
        assert!(
            !findings.is_empty(),
            "{fixture}: expected at least one {rule} finding, got none"
        );
        for f in &findings {
            assert_eq!(
                f.rule, rule,
                "{fixture}: expected only {rule} findings, got {f:?}"
            );
        }
    }
}

#[test]
fn the_fixture_set_covers_every_rule() {
    let covered: BTreeSet<&str> = CASES.iter().map(|(_, _, rule)| *rule).collect();
    let all: BTreeSet<&str> = RULES.iter().copied().collect();
    assert_eq!(covered, all, "a rule has no fixture");
}

#[test]
fn reasonless_pragma_is_reported_and_does_not_suppress() {
    let findings = lint_fixture("reasonless_pragma.rs", "crates/core/src/ita.rs");
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&"invalid-pragma"),
        "the reason-less pragma must itself be a finding: {findings:?}"
    );
    assert!(
        rules.contains(&"panic-in-hot-path"),
        "an invalid pragma must not suppress the underlying finding: {findings:?}"
    );
}
