#![forbid(unsafe_code)]
#![deny(missing_docs, unused_must_use)]

//! `cts-lint` — workspace static analysis for the CTS engine.
//!
//! The engine's correctness argument leans on four source-level properties
//! that the compiler does not check: **determinism** of everything on the
//! op-log replay path, **panic-safety** of the hot event-processing modules,
//! **refusal-over-panic** on the service/admission surface, and a handful of
//! **structural conventions** (thread ownership, crate hygiene). This crate
//! proves them with a hand-rolled lexer and six module-path-aware rules —
//! see `DESIGN.md` §11 for the rationale behind each rule and the pragma
//! policy.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p cts-lint -- --deny-all
//! ```

mod lexer;
mod rules;

pub use lexer::{split_channels, Line};
pub use rules::{
    lint_source, Finding, CLOCK_IN_APPLY, CRATE_HYGIENE, INVALID_PRAGMA, NONDET_ITERATION,
    PANIC_IN_HOT_PATH, RULES, SPAWN_OUTSIDE_SUPERVISOR, UNWRAP_IN_SERVICE,
};
