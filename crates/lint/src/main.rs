#![forbid(unsafe_code)]
#![deny(missing_docs, unused_must_use)]

//! The `cts-lint` CLI: walks every `.rs` file under `crates/` and reports
//! findings as `path:line: rule: message`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p cts-lint -- [--deny-all] [--root <dir>]
//! ```
//!
//! `--deny-all` exits non-zero when any finding (including malformed
//! pragmas) is reported — this is the CI mode. `--root` points at a
//! workspace other than the current directory.
//!
//! Skipped subtrees: `target/`, `crates/compat/` (vendored API stand-ins,
//! not engine code) and the linter's own `fixtures/` (deliberately bad
//! inputs for the self-test).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "compat" || name == "fixtures" {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("cts-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("cts-lint: unknown argument `{other}`");
                eprintln!("usage: cts-lint [--deny-all] [--root <dir>]");
                return ExitCode::from(2);
            }
        }
    }

    let mut files = Vec::new();
    collect(&root.join("crates"), &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!(
            "cts-lint: no .rs files under {}/crates — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    let mut total = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("cts-lint: cannot read {}: {err}", file.display());
                total += 1;
                continue;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        let rel = rel.display().to_string().replace('\\', "/");
        for finding in cts_lint::lint_source(&rel, &source) {
            println!(
                "{}:{}: {}: {}",
                finding.path, finding.line, finding.rule, finding.message
            );
            total += 1;
        }
    }
    eprintln!(
        "cts-lint: checked {} files, {} finding(s)",
        files.len(),
        total
    );
    if deny_all && total > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
