//! A minimal Rust lexer that splits source text into per-line *code* and
//! *comment* channels.
//!
//! The rule engine never needs a full token tree — every rule matches on
//! plain substrings — but it must not be fooled by tokens that appear inside
//! comments or string literals. The lexer therefore walks the source once and
//! produces, for each physical line, the text that is actually code (with
//! string/char literal *contents* blanked out) and the text that sits inside
//! comments. `cts-lint: allow(...)` pragmas are read from the comment
//! channel; rule tokens are matched against the code channel.
//!
//! The state machine understands the handful of Rust constructs that matter
//! for that split: `//` line comments, `/* ... */` block comments (including
//! nesting), ordinary and byte string literals with escapes, raw (byte)
//! string literals with arbitrary `#` guards, char/byte-char literals, and
//! the `'a`-lifetime-versus-`'x'`-char ambiguity.

/// One physical source line, split into its code and comment content.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// The line's code, with comment text removed and the contents of
    /// string/char literals replaced by a single space (so that `"HashMap"`
    /// the string never matches `HashMap` the token, while brace counting
    /// and token adjacency still work).
    pub code: String,
    /// The concatenated text of every comment overlapping this line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
}

/// Whether the code channel currently ends in an identifier character —
/// used to tell `r"..."` (raw string) apart from e.g. `attr"..."` suffixes
/// and `crate::r` paths, and `b'x'` apart from `0b'...` nonsense.
fn ends_in_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `chars[at]` begins a raw-string guard (`r`, `r#`, `r##`, ...), returns
/// the number of `#` guards. `at` must point at the `r`.
fn raw_guard(chars: &[char], at: usize) -> Option<usize> {
    debug_assert_eq!(chars.get(at), Some(&'r'));
    let mut j = at + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(j - at - 1)
}

/// Splits `source` into per-line code/comment channels.
pub fn split_channels(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: 1 };
                    i += 2;
                } else if c == '"' {
                    line.code.push(' ');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' && !ends_in_ident(&line.code) && raw_guard(&chars, i).is_some() {
                    let hashes = raw_guard(&chars, i).unwrap_or(0);
                    line.code.push(' ');
                    state = State::RawStr { hashes };
                    i += hashes + 2; // past r, the guards and the opening quote
                } else if c == 'b'
                    && !ends_in_ident(&line.code)
                    && chars.get(i + 1) == Some(&'r')
                    && raw_guard(&chars, i + 1).is_some()
                {
                    let hashes = raw_guard(&chars, i + 1).unwrap_or(0);
                    line.code.push(' ');
                    state = State::RawStr { hashes };
                    i += hashes + 3;
                } else if c == 'b' && !ends_in_ident(&line.code) && chars.get(i + 1) == Some(&'"') {
                    line.code.push(' ');
                    state = State::Str;
                    i += 2;
                } else if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'')) {
                    let tick = if c == 'b' { i + 1 } else { i };
                    match chars.get(tick + 1) {
                        // `'\n'`, `'\u{41}'`, ... — an escaped char literal;
                        // consume through the closing quote.
                        Some('\\') => {
                            line.code.push(' ');
                            // Skip the backslash and the escaped character
                            // itself (which may be `'`), then scan for the
                            // closing quote.
                            i = tick + 3;
                            while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                                i += 1;
                            }
                            if chars.get(i) == Some(&'\'') {
                                i += 1;
                            }
                        }
                        // `'x'` — a one-char literal.
                        Some(_) if chars.get(tick + 2) == Some(&'\'') => {
                            line.code.push(' ');
                            i = tick + 3;
                        }
                        // `'a`, `'static`, loop labels — a lifetime; keep the
                        // tick (and whatever follows) in the code channel.
                        _ => {
                            if c == 'b' {
                                line.code.push('b');
                            }
                            line.code.push('\'');
                            i = tick + 1;
                        }
                    }
                } else {
                    if c != '\r' {
                        line.code.push(c);
                    }
                    i += 1;
                }
            }
            State::LineComment => {
                if c != '\r' {
                    line.comment.push(c);
                }
                i += 1;
            }
            State::BlockComment { depth } => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    i += 2;
                } else {
                    if c != '\r' {
                        line.comment.push(c);
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        lines.push(std::mem::take(&mut line));
                    }
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channels(src: &str) -> Vec<Line> {
        split_channels(src)
    }

    #[test]
    fn line_comment_goes_to_comment_channel() {
        let lines = channels("let x = 1; // trailing note\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " trailing note");
    }

    #[test]
    fn raw_string_containing_line_comment_marker_stays_code() {
        let lines = channels("let s = r\"no // comment here\";\n");
        assert_eq!(lines[0].code, "let s =  ;");
        assert_eq!(lines[0].comment, "");
    }

    #[test]
    fn guarded_raw_string_with_quotes_and_comment_markers() {
        let lines = channels("let s = r#\"a \" // b /* c \"#; // real\n");
        assert_eq!(lines[0].code, "let s =  ; ");
        assert_eq!(lines[0].comment, " real");
    }

    #[test]
    fn raw_byte_string_is_blanked() {
        let lines = channels("let s = br##\"x \"# y\"##; let t = b\"z\";\n");
        assert_eq!(lines[0].code, "let s =  ; let t =  ;");
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let lines = channels("let wier = var\"\";\n");
        // `var` ends in an identifier char, so `r\"` must not open a raw
        // string; the plain string that follows is blanked normally.
        assert_eq!(lines[0].code, "let wier = var ;");
    }

    #[test]
    fn nested_block_comments() {
        let lines = channels("/* outer /* inner */ still comment */ run();\n");
        assert_eq!(lines[0].code, " run();");
        assert_eq!(lines[0].comment, " outer  inner  still comment ");
    }

    #[test]
    fn multi_line_block_comment_spans_lines() {
        let lines = channels("before(); /* one\ntwo */ after();\n");
        assert_eq!(lines[0].code, "before(); ");
        assert_eq!(lines[0].comment, " one");
        assert_eq!(lines[1].code, " after();");
        assert_eq!(lines[1].comment, "two ");
    }

    #[test]
    fn lifetime_versus_char_literal() {
        let lines = channels("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(lines[0].code.contains("<'a>"));
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[0].code.contains("'x'"));
    }

    #[test]
    fn escaped_char_literals_and_labels() {
        let lines = channels("let c = '\\n'; let q = '\\''; 'outer: loop { break 'outer; }\n");
        assert!(lines[0].code.contains("'outer: loop"));
        assert!(lines[0].code.contains("break 'outer;"));
        assert!(!lines[0].code.contains("\\n"));
    }

    #[test]
    fn byte_char_literal_is_blanked() {
        let lines = channels("let c = b'/'; let d = b'\\\\'; foo();\n");
        assert_eq!(lines[0].code, "let c =  ; let d =  ; foo();");
    }

    #[test]
    fn string_with_escaped_quote_does_not_leak() {
        let lines = channels("let s = \"a\\\"b // not a comment\"; let y = 2;\n");
        assert_eq!(lines[0].code, "let s =  ; let y = 2;");
        assert_eq!(lines[0].comment, "");
    }

    #[test]
    fn multi_line_string_keeps_line_count() {
        let lines = channels("let s = \"one\ntwo\nthree\"; done();\n");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].code, "let s =  ");
        assert_eq!(lines[1].code, "");
        assert_eq!(lines[2].code, "; done();");
    }

    #[test]
    fn last_line_without_trailing_newline_is_kept() {
        let lines = channels("fn main() {}");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].code, "fn main() {}");
    }
}
