//! The rule engine: six module-path-aware rules plus the pragma parser.
//!
//! Rules are deliberately narrow: each one targets the module set where its
//! property is load-bearing (see `DESIGN.md` §11), so a finding is a real
//! claim about the engine's guarantees rather than style noise. Suppression
//! requires an inline pragma **with a reason**:
//!
//! ```text
//! // cts-lint: allow(<rule>, <reason>)
//! ```
//!
//! A trailing pragma suppresses its own line; a pragma alone on a line
//! (empty code channel) suppresses the next line. A pragma without a reason,
//! or naming an unknown rule, is itself reported as `invalid-pragma` and
//! suppresses nothing.

use crate::lexer::{split_channels, Line};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The rule slug (one of [`RULES`] or [`INVALID_PRAGMA`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// `HashMap`/`HashSet` in a replay-relevant module: iteration order is
/// nondeterministic, which would break op-log replay and lockstep
/// differential testing.
pub const NONDET_ITERATION: &str = "nondet-iteration";
/// Wall-clock reads inside apply/replay paths: replaying an op log must
/// reproduce state bit-for-bit, so time may only enter through the op stream.
pub const CLOCK_IN_APPLY: &str = "clock-in-apply";
/// `unwrap`/`expect`/`panic!`/`unreachable!` in the hot event-processing
/// modules: a panic there kills a shard worker mid-event.
pub const PANIC_IN_HOT_PATH: &str = "panic-in-hot-path";
/// Thread spawns outside the shard supervisor: every worker thread must be
/// owned by the supervision/recovery machinery in `sharded.rs`.
pub const SPAWN_OUTSIDE_SUPERVISOR: &str = "spawn-outside-supervisor";
/// Crate roots must carry `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs, unused_must_use)]`.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// `unwrap`/`expect` in the service/admission and fault-policy modules:
/// these paths sit between an abusive stream source and the engine, and must
/// surface typed errors or explicit `Admission` refusals — a panic there
/// converts overload into an outage.
pub const UNWRAP_IN_SERVICE: &str = "unwrap-in-service";
/// A malformed `cts-lint:` pragma: missing reason, unknown rule, or
/// unparseable syntax. Not suppressible.
pub const INVALID_PRAGMA: &str = "invalid-pragma";

/// Every enforced rule slug, in reporting order.
pub const RULES: [&str; 6] = [
    NONDET_ITERATION,
    CLOCK_IN_APPLY,
    PANIC_IN_HOT_PATH,
    SPAWN_OUTSIDE_SUPERVISOR,
    CRATE_HYGIENE,
    UNWRAP_IN_SERVICE,
];

/// Modules on the op-log replay path: state they build must be a pure
/// function of the op sequence, so unordered iteration and wall-clock reads
/// are forbidden (`nondet-iteration`, `clock-in-apply`).
const REPLAY_MODULES: &[&str] = &[
    "crates/core/src/ita.rs",
    "crates/core/src/service.rs",
    "crates/core/src/sharded.rs",
    "crates/core/src/testkit.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/result.rs",
    "crates/core/src/slab.rs",
    "crates/index/src/index.rs",
    "crates/index/src/store.rs",
    "crates/index/src/segmented.rs",
    "crates/index/src/window.rs",
    "crates/index/src/arena.rs",
    "crates/index/src/posting.rs",
    "crates/index/src/threshold.rs",
];

/// Modules on the per-event hot path, where a stray panic kills a shard
/// worker mid-event (`panic-in-hot-path`).
const HOT_MODULES: &[&str] = &[
    "crates/core/src/ita.rs",
    "crates/core/src/sharded.rs",
    "crates/index/src/segmented.rs",
];

/// The only module allowed to spawn threads: the shard supervisor.
const SUPERVISOR_MODULE: &str = "crates/core/src/sharded.rs";

/// Modules on the service/admission and fault-policy surface, where queue
/// paths must refuse (`Admission`) or return typed `EngineError`s instead of
/// panicking (`unwrap-in-service`).
const SERVICE_MODULES: &[&str] = &[
    "crates/core/src/service.rs",
    "crates/core/src/sharded.rs",
    "crates/core/src/fault.rs",
];

fn in_module_set(path: &str, set: &[&str]) -> bool {
    set.iter().any(|m| path == *m || path.ends_with(m))
}

/// Whether `path` is test or bench code (integration tests, benches), where
/// the runtime rules do not apply.
fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/")
}

/// Whole-word occurrence of `word` in `code` (both neighbours must be
/// non-identifier characters).
fn has_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before = code[..start]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = code[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before && after {
            return true;
        }
        from = end;
    }
    false
}

/// Occurrence of macro-like `name!` where the preceding character is not an
/// identifier character (so `debug_unreachable!` does not match
/// `unreachable!`).
fn has_macro(code: &str, name: &str) -> bool {
    let token = format!("{name}!");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&token) {
        let start = from + pos;
        let before = code[..start]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before {
            return true;
        }
        from = start + token.len();
    }
    false
}

/// A parsed, *valid* pragma: suppresses `rule` findings on `line`
/// (1-indexed).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Allow {
    line: usize,
    rule: String,
}

/// Scans comment channels for `cts-lint: allow(rule, reason)` pragmas.
/// Returns the valid suppressions and a finding for every malformed pragma.
fn parse_pragmas(path: &str, lines: &[Line]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // Doc comments (`///`, `//!`) never carry pragmas — they may quote
        // the pragma syntax when documenting it.
        if matches!(line.comment.chars().next(), Some('/' | '!')) {
            continue;
        }
        let Some(at) = line.comment.find("cts-lint:") else {
            continue;
        };
        let lineno = idx + 1;
        let rest = line.comment[at + "cts-lint:".len()..].trim_start();
        let mut invalid = |message: String| {
            findings.push(Finding {
                path: path.to_string(),
                line: lineno,
                rule: INVALID_PRAGMA,
                message,
            });
        };
        let Some(body) = rest.strip_prefix("allow(") else {
            invalid(format!(
                "malformed pragma (expected `cts-lint: allow(<rule>, <reason>)`): `{}`",
                rest.trim_end()
            ));
            continue;
        };
        let Some(close) = body.rfind(')') else {
            invalid("pragma is missing its closing `)`".to_string());
            continue;
        };
        let body = &body[..close];
        let Some((rule, reason)) = body.split_once(',') else {
            invalid(format!(
                "pragma for `{}` has no reason; every suppression must say why it is sound",
                body.trim()
            ));
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if !RULES.contains(&rule) {
            invalid(format!("pragma names unknown rule `{rule}`"));
            continue;
        }
        if reason.is_empty() {
            invalid(format!(
                "pragma for `{rule}` has an empty reason; every suppression must say why it is sound"
            ));
            continue;
        }
        // A trailing pragma covers its own line; a pragma on a line of its
        // own covers the next line.
        let covered = if line.code.trim().is_empty() {
            lineno + 1
        } else {
            lineno
        };
        allows.push(Allow {
            line: covered,
            rule: rule.to_string(),
        });
    }
    (allows, findings)
}

/// Marks every line that is inside a `#[cfg(test)]`-gated item (the
/// attribute line itself, through the matching closing brace). Runtime rules
/// skip these lines: unit-test modules may unwrap and hash freely.
fn test_region_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if line.code.contains("#[cfg(test)]") {
            pending = true;
        }
        let entered_as_test = pending || region.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        if region.is_none() {
                            region = Some(depth);
                        }
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region == Some(depth) {
                        region = None;
                    }
                }
                _ => {}
            }
        }
        mask[idx] = entered_as_test || pending || region.is_some();
    }
    mask
}

/// Whether a `#![deny(...)]` attribute in `code` lists `lint`.
fn denies(code: &str, lint: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("#![deny(") {
        let start = from + pos + "#![deny(".len();
        let inner = match code[start..].find(')') {
            Some(end) => &code[start..start + end],
            None => &code[start..],
        };
        if inner.split(',').any(|l| l.trim() == lint) {
            return true;
        }
        from = start;
    }
    false
}

/// Lints one source file. `path` must be workspace-relative with `/`
/// separators (e.g. `crates/core/src/ita.rs`) — the rules decide relevance
/// by module path.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let path = path.replace('\\', "/");
    let lines = split_channels(source);
    let (allows, mut findings) = parse_pragmas(&path, &lines);
    let in_test = test_region_mask(&lines);

    let replay = in_module_set(&path, REPLAY_MODULES) && !is_test_path(&path);
    let hot = in_module_set(&path, HOT_MODULES) && !is_test_path(&path);
    let may_spawn = path.ends_with(SUPERVISOR_MODULE) || is_test_path(&path);
    let service = in_module_set(&path, SERVICE_MODULES) && !is_test_path(&path);

    let mut report = |line: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            path: path.clone(),
            line,
            rule,
            message,
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if in_test[idx] || code.trim().is_empty() {
            continue;
        }
        if replay {
            for ty in ["HashMap", "HashSet"] {
                if has_word(code, ty) {
                    report(
                        lineno,
                        NONDET_ITERATION,
                        format!(
                            "{ty} in a replay-relevant module: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or justify with a pragma"
                        ),
                    );
                }
            }
            for token in ["Instant::now", "SystemTime"] {
                if code.contains(token) {
                    report(
                        lineno,
                        CLOCK_IN_APPLY,
                        format!(
                            "{token} on a replay-relevant path: wall-clock reads make \
                             op-log replay irreproducible; time must enter via the op stream"
                        ),
                    );
                }
            }
        }
        if hot {
            let mut panic_token = None;
            if code.contains(".unwrap()") {
                panic_token = Some(".unwrap()");
            } else if code.contains(".expect(") {
                panic_token = Some(".expect(..)");
            } else if has_macro(code, "panic") {
                panic_token = Some("panic!");
            } else if has_macro(code, "unreachable") {
                panic_token = Some("unreachable!");
            }
            if let Some(token) = panic_token {
                report(
                    lineno,
                    PANIC_IN_HOT_PATH,
                    format!(
                        "{token} in a hot event-processing module: a panic here kills a \
                         shard worker mid-event; return a typed error or justify with a pragma"
                    ),
                );
            }
        }
        if service {
            let unwrap_token = if code.contains(".unwrap()") {
                Some(".unwrap()")
            } else if code.contains(".expect(") {
                Some(".expect(..)")
            } else {
                None
            };
            if let Some(token) = unwrap_token {
                report(
                    lineno,
                    UNWRAP_IN_SERVICE,
                    format!(
                        "{token} on the service/admission surface: overload and fault \
                         handling must refuse (Admission) or return a typed error; a \
                         panic here turns backpressure into an outage"
                    ),
                );
            }
        }
        if !may_spawn && (code.contains("thread::spawn") || code.contains(".spawn(")) {
            report(
                lineno,
                SPAWN_OUTSIDE_SUPERVISOR,
                "thread spawn outside the shard supervisor: worker threads must be owned \
                 by the supervision machinery in sharded.rs"
                    .to_string(),
            );
        }
    }

    if path.ends_with("/src/lib.rs") && path.contains("crates/") && !path.contains("/compat/") {
        let code: String = lines
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        if !code.contains("#![forbid(unsafe_code)]") {
            report(
                1,
                CRATE_HYGIENE,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
        for lint in ["missing_docs", "unused_must_use"] {
            if !denies(&code, lint) {
                report(
                    1,
                    CRATE_HYGIENE,
                    format!("crate root is missing `#![deny({lint})]`"),
                );
            }
        }
    }

    findings.retain(|f| {
        f.rule == INVALID_PRAGMA || !allows.iter().any(|a| a.line == f.line && a.rule == f.rule)
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/ita.rs";
    const REPLAY: &str = "crates/core/src/testkit.rs";

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_in_hot_module_is_flagged() {
        let f = lint_source(HOT, "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n");
        assert_eq!(rules_of(&f), vec![PANIC_IN_HOT_PATH]);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "pub fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }\n\
                   pub fn g(v: Option<u8>) -> u8 { v.unwrap_or_else(|| 1) }\n\
                   pub fn h(v: Option<u8>) -> u8 { v.unwrap_or_default() }\n";
        assert!(lint_source(HOT, src).is_empty());
    }

    #[test]
    fn asserts_are_not_flagged() {
        let src = "pub fn f(n: usize) { assert!(n > 0); debug_assert!(n < 10); }\n";
        assert!(lint_source(HOT, src).is_empty());
    }

    #[test]
    fn trailing_pragma_with_reason_suppresses_same_line() {
        let src = "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() } \
                   // cts-lint: allow(panic-in-hot-path, slice is never empty here)\n";
        assert!(lint_source(HOT, src).is_empty());
    }

    #[test]
    fn standalone_pragma_suppresses_next_line() {
        let src = "// cts-lint: allow(panic-in-hot-path, slice is never empty here)\n\
                   pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n";
        assert!(lint_source(HOT, src).is_empty());
    }

    #[test]
    fn pragma_does_not_leak_past_its_line() {
        let src = "// cts-lint: allow(panic-in-hot-path, only covers the next line)\n\
                   pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n\
                   pub fn g(v: &[u8]) -> u8 { *v.last().unwrap() }\n";
        let f = lint_source(HOT, src);
        assert_eq!(rules_of(&f), vec![PANIC_IN_HOT_PATH]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn pragma_without_reason_is_invalid_and_suppresses_nothing() {
        let src = "// cts-lint: allow(panic-in-hot-path)\n\
                   pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n";
        let f = lint_source(HOT, src);
        assert_eq!(rules_of(&f), vec![INVALID_PRAGMA, PANIC_IN_HOT_PATH]);
    }

    #[test]
    fn unwrap_on_the_service_surface_is_flagged() {
        for path in ["crates/core/src/service.rs", "crates/core/src/fault.rs"] {
            let f = lint_source(path, "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n");
            assert_eq!(rules_of(&f), vec![UNWRAP_IN_SERVICE], "for {path}");
        }
        let f = lint_source(
            "crates/core/src/fault.rs",
            "pub fn f(v: Option<u8>) -> u8 { v.expect(\"present\") }\n",
        );
        assert_eq!(rules_of(&f), vec![UNWRAP_IN_SERVICE]);
    }

    #[test]
    fn service_rule_leaves_panic_macros_to_the_hot_path_rule() {
        // fault.rs is service-surface but not a hot module: explicit panics
        // there are assertion-style and stay out of unwrap-in-service scope.
        let f = lint_source(
            "crates/core/src/fault.rs",
            "pub fn f() { panic!(\"boom\"); }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn sharded_unwrap_trips_both_hot_and_service_rules() {
        let f = lint_source(
            "crates/core/src/sharded.rs",
            "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
        );
        assert_eq!(rules_of(&f), vec![PANIC_IN_HOT_PATH, UNWRAP_IN_SERVICE]);
    }

    #[test]
    fn a_pragma_naming_only_one_rule_leaves_the_other_finding() {
        let src = "pub fn f(v: Option<u8>) -> u8 { v.unwrap() } \
                   // cts-lint: allow(panic-in-hot-path, checked by caller)\n";
        let f = lint_source("crates/core/src/sharded.rs", src);
        assert_eq!(rules_of(&f), vec![UNWRAP_IN_SERVICE]);
    }

    #[test]
    fn unwrap_outside_service_modules_is_not_service_flagged() {
        let f = lint_source(
            "crates/core/src/monitor.rs",
            "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_in_service_pragma_with_reason_suppresses() {
        let src = "// cts-lint: allow(unwrap-in-service, config invariant guarantees Some)\n\
                   pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        assert!(lint_source("crates/core/src/service.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_quoting_pragma_syntax_are_not_pragmas() {
        let src = "//! Suppress with `// cts-lint: allow(rule)` — documented, not used.\n\
                   /// See also `cts-lint: allow(panic-in-hot-path)`.\n\
                   pub fn f() {}\n";
        assert!(lint_source(HOT, src).is_empty());
    }

    #[test]
    fn pragma_with_unknown_rule_is_invalid() {
        let src = "// cts-lint: allow(made-up-rule, because reasons)\nfn f() {}\n";
        let f = lint_source(HOT, src);
        assert_eq!(rules_of(&f), vec![INVALID_PRAGMA]);
    }

    #[test]
    fn pragma_reason_may_contain_commas() {
        let src = "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() } \
                   // cts-lint: allow(panic-in-hot-path, checked above, twice, carefully)\n";
        assert!(lint_source(HOT, src).is_empty());
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src = "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() } \
                   // cts-lint: allow(nondet-iteration, wrong rule named)\n";
        let f = lint_source(HOT, src);
        assert_eq!(rules_of(&f), vec![PANIC_IN_HOT_PATH]);
    }

    #[test]
    fn hashmap_in_replay_module_is_flagged_but_btreemap_is_not() {
        let src = "use std::collections::{BTreeMap, HashMap};\n";
        let f = lint_source(REPLAY, src);
        assert_eq!(rules_of(&f), vec![NONDET_ITERATION]);
        assert!(lint_source(REPLAY, "use std::collections::BTreeMap;\n").is_empty());
    }

    #[test]
    fn hashmap_as_substring_of_identifier_is_not_flagged() {
        let src = "struct MyHashMapLike; fn f(_: MyHashMapLike) {}\n";
        assert!(lint_source(REPLAY, src).is_empty());
    }

    #[test]
    fn clock_reads_in_replay_module_are_flagged() {
        let src = "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n";
        let f = lint_source(REPLAY, src);
        assert_eq!(rules_of(&f), vec![CLOCK_IN_APPLY]);
    }

    #[test]
    fn rules_do_not_apply_outside_their_module_sets() {
        // monitor.rs is neither replay-relevant nor hot: clocks and unwraps
        // are fine there; spawning still is not.
        let src =
            "pub fn f() { let _ = std::time::Instant::now(); let _ = [1].first().unwrap(); }\n\
                   pub fn g() { std::thread::spawn(|| {}); }\n";
        let f = lint_source("crates/core/src/monitor.rs", src);
        assert_eq!(rules_of(&f), vec![SPAWN_OUTSIDE_SUPERVISOR]);
    }

    #[test]
    fn supervisor_module_may_spawn() {
        let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
        let f = lint_source("crates/core/src/sharded.rs", src);
        assert!(rules_of(&f).iter().all(|r| *r != SPAWN_OUTSIDE_SUPERVISOR));
    }

    #[test]
    fn test_and_bench_paths_skip_runtime_rules() {
        let src = "pub fn f() { std::thread::spawn(|| {}).join().unwrap(); }\n";
        assert!(lint_source("crates/core/tests/chaos.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/sweep.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "pub fn f(v: &[u8]) -> Option<u8> { v.first().copied() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use super::*;\n\
                       #[test]\n\
                       fn t() { assert_eq!(f(&[1]).unwrap(), 1); }\n\
                   }\n";
        assert!(lint_source(HOT, src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_module_is_checked_again() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { let _ = [1].first().unwrap(); }\n\
                   }\n\
                   pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n";
        let f = lint_source(HOT, src);
        assert_eq!(rules_of(&f), vec![PANIC_IN_HOT_PATH]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn tokens_inside_strings_and_comments_are_ignored() {
        let src = "// HashMap would be wrong here, as would .unwrap()\n\
                   pub fn f() -> &'static str { \"HashMap Instant::now .unwrap()\" }\n\
                   pub fn g() -> &'static str { r\"thread::spawn // .expect(\" }\n";
        assert!(lint_source(HOT, src).is_empty());
        assert!(lint_source(REPLAY, src).is_empty());
    }

    #[test]
    fn crate_hygiene_requires_forbid_and_deny() {
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs, unused_must_use)]\n\
                    //! Docs.\npub fn f() {}\n";
        assert!(lint_source("crates/fake/src/lib.rs", good).is_empty());
        let bad = "//! Docs.\npub fn f() {}\n";
        let f = lint_source("crates/fake/src/lib.rs", bad);
        assert_eq!(rules_of(&f), vec![CRATE_HYGIENE; 3]);
        let partial = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        let f = lint_source("crates/fake/src/lib.rs", partial);
        assert_eq!(rules_of(&f), vec![CRATE_HYGIENE]);
        assert!(f[0].message.contains("unused_must_use"));
    }

    #[test]
    fn hygiene_skips_compat_and_non_roots() {
        let bare = "pub fn f() {}\n";
        assert!(lint_source("crates/compat/rand/src/lib.rs", bare).is_empty());
        assert!(lint_source("crates/core/src/engine.rs", bare).is_empty());
    }
}
