// Fixture: linted as `crates/fake/src/lib.rs` — a crate root missing both
// `#![forbid(unsafe_code)]` and the `#![deny(...)]` lints. Must trip
// `crate-hygiene` (three findings: forbid, missing_docs, unused_must_use)
// and nothing else.

//! A crate that forgot its hygiene headers.

pub fn noop() {}
