// Fixture: linted as `crates/core/src/result.rs` (a replay-relevant
// module), where unordered iteration is forbidden. Must trip
// `nondet-iteration` and nothing else.
use std::collections::HashMap;

pub fn tally(events: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for (key, value) in events {
        *counts.entry(*key).or_insert(0) += value;
    }
    counts.into_iter().collect()
}
