// Fixture: linted as `crates/core/src/ita.rs`. The pragma below names a
// real rule but gives no reason, so it must be reported as
// `invalid-pragma` AND fail to suppress the `panic-in-hot-path` finding on
// the line it covers.
pub fn head(values: &[u64]) -> u64 {
    // cts-lint: allow(panic-in-hot-path)
    *values.first().unwrap()
}
