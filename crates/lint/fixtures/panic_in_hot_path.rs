// Fixture: linted as `crates/index/src/segmented.rs` (a hot
// event-processing module), where unguarded panics are forbidden. Must trip
// `panic-in-hot-path` and nothing else; the `#[cfg(test)]` block at the
// bottom must NOT be flagged.
pub fn head(values: &[u64]) -> u64 {
    *values.first().unwrap()
}

pub fn tail(values: &[u64]) -> u64 {
    *values.last().expect("values are non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let _ = [1u64].first().unwrap();
    }
}
