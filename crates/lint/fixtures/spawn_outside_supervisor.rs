// Fixture: linted as `crates/core/src/monitor.rs` — any non-supervisor,
// non-test module. Must trip `spawn-outside-supervisor` and nothing else.
pub fn fan_out() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
