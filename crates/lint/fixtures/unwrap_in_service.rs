// Fixture: linted as `crates/core/src/fault.rs` (service/admission surface,
// not a hot module), where `unwrap`/`expect` are forbidden in non-test code.
// Must trip `unwrap-in-service` and nothing else; the explicit panic is
// assertion-style and belongs to `panic-in-hot-path`, which is out of scope
// here, and the `#[cfg(test)]` block at the bottom must NOT be flagged.
pub fn last_degraded(shards: &[usize]) -> usize {
    *shards.last().unwrap()
}

pub fn budget(limit: Option<u64>) -> u64 {
    limit.expect("a fault budget is always configured")
}

pub fn assertion_style_panics_are_not_this_rule() {
    panic!("belongs to panic-in-hot-path, which does not cover this module");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let _ = [1usize].last().unwrap();
    }
}
