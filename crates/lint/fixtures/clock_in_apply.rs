// Fixture: linted as `crates/core/src/testkit.rs` (a replay-relevant
// module), where wall-clock reads are forbidden. Must trip
// `clock-in-apply` and nothing else.
pub fn stamp(log: &mut Vec<u128>) {
    let now = std::time::Instant::now();
    log.push(now.elapsed().as_micros());
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
