//! An offline, API-compatible subset of [`serde`](https://docs.rs/serde).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the surface it actually uses: derivable
//! [`Serialize`] / [`Deserialize`] traits and a self-describing [`Value`]
//! tree that `serde_json` (also vendored) renders to and parses from JSON.
//!
//! Design differences from real serde, chosen to keep the vendored code
//! small while preserving observable behaviour:
//!
//! * Serialisation goes through an owned [`Value`] tree instead of a
//!   streaming `Serializer`; fine for configs and test fixtures, which is
//!   the only serialisation this workspace performs.
//! * Newtype structs (`struct Weight(f64)`) always serialise transparently
//!   as their inner value, so `#[serde(transparent)]` is honoured by
//!   default (the attribute is accepted and ignored).
//! * Enums use externally-tagged representation, like serde's default.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are re-exported
//! from the vendored `serde_derive` proc-macro crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the vendored analogue of
/// `serde_json::Value`, shared by all data formats).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used for negative integers).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field or variant names).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected a map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up an element of a [`Value::Seq`].
    pub fn item(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Seq(items) => items
                .get(index)
                .ok_or_else(|| Error(format!("missing sequence element {index}"))),
            other => Err(Error(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialises `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialises an instance from `value`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error(format!(
                            "expected an unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error(format!("integer {u} out of range for i64")))?,
                    other => {
                        return Err(Error(format!(
                            "expected an integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error(format!("expected a number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected a bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected a string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error(format!(
                "expected a 2-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(Error(format!(
                "expected a 3-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&some.serialize()), Ok(Some(5)));
        assert_eq!(Option::<u32>::deserialize(&none.serialize()), Ok(None));
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 0.25)];
        let val = v.serialize();
        assert_eq!(Vec::<(u32, f64)>::deserialize(&val), Ok(v));
    }

    #[test]
    fn integers_check_ranges() {
        let big = Value::UInt(u64::MAX);
        assert!(u8::deserialize(&big).is_err());
        assert!(u64::deserialize(&big).is_ok());
        let neg = Value::Int(-1);
        assert!(u32::deserialize(&neg).is_err());
        assert_eq!(i32::deserialize(&neg), Ok(-1));
    }

    #[test]
    fn field_lookup_reports_missing() {
        let map = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert!(map.field("a").is_ok());
        let err = map.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
        assert!(Value::Null.field("a").is_err());
    }

    #[test]
    fn type_mismatch_errors_name_the_kind() {
        let err = bool::deserialize(&Value::UInt(1)).unwrap_err();
        assert!(err.to_string().contains("expected a bool"));
    }
}
