//! An offline, API-compatible subset of [`serde_json`](https://docs.rs/serde_json).
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses JSON
//! text back, exposing the two entry points this workspace uses:
//! [`to_string`] and [`from_str`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialises `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Deserialises a `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ryū-style shortest representation via the standard library;
                // ensure a fractional part so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Infinity/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {} of JSON input",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!(
                "invalid literal at byte {} of JSON input",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated JSON string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject them clearly.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".into()))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?} in JSON string",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing on
                    // char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in JSON input".into()))?;
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_text() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn floats_keep_a_fractional_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tünïcode".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn sequences_and_options() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), v);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("9").unwrap(), Some(9));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 ,\n 2 ] ").unwrap();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<bool>("maybe").is_err());
    }
}
