//! An offline, API-compatible subset of
//! [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the pieces the workspace's benchmarks use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! straightforward warm-up + timed-batch loop reporting mean and best
//! per-iteration times; it has none of real criterion's statistics, but the
//! numbers are honest wall-clock measurements and the harness keeps
//! `cargo bench` working end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard library's optimisation barrier, matching
/// `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    #[default]
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// The benchmark driver handed to each registered benchmark function.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1_200),
        }
    }
}

impl Criterion {
    /// Sets the warm-up time (builder style, like real criterion).
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warmup = duration;
        self
    }

    /// Sets the measurement time (builder style, like real criterion).
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Runs one benchmark: `routine` receives a [`Bencher`] and must call one
    /// of its `iter*` methods.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            report: None,
        };
        routine(&mut bencher);
        match bencher.report {
            Some(report) => {
                println!(
                    "{id:<40} time: [mean {:>12} | best {:>12}]  ({} iterations)",
                    format_duration(report.mean),
                    format_duration(report.best),
                    report.iterations,
                );
            }
            None => println!("{id:<40} (no measurement: Bencher::iter was never called)"),
        }
        self
    }
}

struct Report {
    mean: Duration,
    best: Duration,
    iterations: u64,
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine` by calling it repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / u32::try_from(warm_iters.max(1)).unwrap_or(u32::MAX);

        // Measurement: batches of ~10ms, tracked individually so the best
        // batch approximates the noise floor.
        let batch = batch_size(per_iter);
        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        let mut best = Duration::MAX;
        while total < self.measurement {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            iterations += batch;
            let per = elapsed / u32::try_from(batch).unwrap_or(u32::MAX);
            if per < best {
                best = per;
            }
        }
        self.report = Some(Report {
            mean: total / u32::try_from(iterations.max(1)).unwrap_or(u32::MAX),
            best,
            iterations,
        });
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut measured = Duration::ZERO;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            warm_iters += 1;
        }

        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        let mut best = Duration::MAX;
        while total < self.measurement {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            iterations += 1;
            if elapsed < best {
                best = elapsed;
            }
        }
        self.report = Some(Report {
            mean: total / u32::try_from(iterations.max(1)).unwrap_or(u32::MAX),
            best,
            iterations,
        });
    }
}

fn batch_size(per_iter: Duration) -> u64 {
    let target = Duration::from_millis(10).as_nanos();
    let per = per_iter.as_nanos().max(1);
    (target / per).clamp(1, 1_000_000) as u64
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); none apply here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_function_produces_a_report() {
        let mut c = fast();
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn iter_batched_runs_setup_outside_measurement() {
        let mut c = fast();
        c.bench_function("sort", |b| {
            b.iter_batched(
                || vec![3u32, 1, 2],
                |mut v| {
                    v.sort_unstable();
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn black_box_returns_its_input() {
        assert_eq!(black_box(7u8), 7);
    }

    #[test]
    fn batch_size_is_bounded() {
        assert_eq!(batch_size(Duration::from_secs(1)), 1);
        assert!(batch_size(Duration::from_nanos(1)) <= 1_000_000);
    }

    #[test]
    fn format_duration_picks_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
