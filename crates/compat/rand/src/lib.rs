//! An offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the minimal surface the corpus generator needs:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::SmallRng`]. The generator behind `SmallRng` is xoshiro256**
//! (Blackman & Vigna, 2018) seeded through SplitMix64 — the same construction
//! the real `rand` crate documents for its small RNG — so statistical quality
//! is adequate for workload synthesis while staying fully deterministic.
//!
//! Only the pieces used by this workspace are provided; this is not a general
//! replacement for `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit values. Mirror of `rand::RngCore` (subset).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods. Mirror of `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from `range` (half-open, `low..high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled from their standard distribution.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformSampled: Sized {
    /// Samples uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

/// Unbiased sampling of an integer in `[0, span)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the result exactly uniform.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformSampled for $ty {
            fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_u64(span, rng) as $ty
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let u: f64 = Standard::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

/// RNGs that can be deterministically constructed from a seed. Mirror of
/// `rand::SeedableRng` (subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with SplitMix64
    /// exactly as `rand` documents for `seed_from_u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256**.
    ///
    /// Matches the role (not the exact output stream) of `rand`'s `SmallRng`:
    /// a non-cryptographic generator suitable for simulation and workload
    /// synthesis.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_the_range_uniformly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            let share = c as f64 / 100_000.0;
            assert!((share - 0.1).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = rng.gen_range(5..8usize);
            assert!((5..8).contains(&v));
        }
        assert_eq!(rng.gen_range(7..8usize), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(6);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
