//! Derive macros for the vendored `serde` subset.
//!
//! The build environment has no access to crates.io, so these derives are
//! written against `proc_macro` alone — no `syn`, no `quote`. They support
//! exactly the item shapes this workspace uses:
//!
//! * unit structs, tuple structs and named-field structs;
//! * enums with unit, tuple and struct variants;
//! * no generic parameters (a clear compile error is emitted if present).
//!
//! `#[serde(...)]` helper attributes are accepted and ignored: newtype
//! structs already serialise transparently (covering `#[serde(transparent)]`)
//! and enums use serde's default externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed `struct` or `enum` item.
enum Shape {
    Unit(String),
    Tuple(String, usize),
    Named(String, Vec<String>),
    Enum(String, Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and the visibility qualifier.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected an item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generics (on `{name}`)"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.next() {
            None => Ok(Shape::Unit(name)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit(name)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::Tuple(name, count_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::Named(name, named_fields(g.stream())?))
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::Enum(name, variants(g.stream())?))
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for a `{other}` item")),
    }
}

/// Splits `stream` into segments separated by commas that sit outside any
/// `<...>` nesting (delimited groups are single tokens, so only angle
/// brackets need explicit tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().expect("nonempty").push(tree);
    }
    segments.retain(|s| !s.is_empty());
    segments
}

fn count_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Extracts the leading identifier of a field/variant segment, skipping
/// attributes and visibility.
fn leading_ident(segment: &[TokenTree]) -> Result<(String, usize), String> {
    let mut i = 0;
    while i < segment.len() {
        match &segment[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = segment.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Ok((id.to_string(), i)),
            other => return Err(format!("unexpected token in field list: {other:?}")),
        }
    }
    Err("empty field segment".into())
}

fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .iter()
        .map(|seg| leading_ident(seg).map(|(name, _)| name))
        .collect()
}

fn variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .iter()
        .map(|seg| {
            let (name, idx) = leading_ident(seg)?;
            let kind = match seg.get(idx + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(named_fields(g.stream())?)
                }
                _ => VariantKind::Unit,
            };
            Ok(Variant { name, kind })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::Unit(name) => (name, "::serde::Value::Null".to_string()),
        Shape::Tuple(name, 1) => (name, "::serde::Serialize::serialize(&self.0)".to_string()),
        Shape::Tuple(name, arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", ")),
            )
        }
        Shape::Named(name, fields) => (name, map_of_fields(fields, |f| format!("&self.{f}"))),
        Shape::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::serialize(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), {inner})]),",
                                binds = binders.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inner = map_of_fields(fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),",
                                binds = fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Builds a `Value::Map` expression over named fields; `access` renders the
/// expression that borrows each field.
fn map_of_fields(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::Unit(name) => (
            name,
            format!(
                "match value {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
                 other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                 \"expected null for unit struct {name}, found {{}}\", other.kind()))) }}"
            ),
        ),
        Shape::Tuple(name, 1) => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))"),
        ),
        Shape::Tuple(name, arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(value.item({i})?)?"))
                .collect();
            (
                name,
                format!("::std::result::Result::Ok({name}({}))", items.join(", ")),
            )
        }
        Shape::Named(name, fields) => (
            name,
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                fields_from_value(fields, "value")
            ),
        ),
        Shape::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(inner.item({i})?)?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            fields_from_value(fields, "inner")
                        )),
                    }
                })
                .collect();
            let unknown = format!(
                "::std::result::Result::Err(::serde::Error(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", other)))"
            );
            let str_arm = if unit_arms.is_empty() {
                format!("::serde::Value::Str(other) => {unknown},")
            } else {
                format!(
                    "::serde::Value::Str(s) => match s.as_str() {{\n\
                     {units}\n\
                     other => {unknown},\n\
                     }},",
                    units = unit_arms.join("\n"),
                )
            };
            let map_arm = if tagged_arms.is_empty() {
                format!(
                    "::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let other = &entries[0].0;\n\
                     {unknown}\n\
                     }},"
                )
            } else {
                format!(
                    "::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {{\n\
                     {tagged}\n\
                     other => {unknown},\n\
                     }}\n\
                     }},",
                    tagged = tagged_arms.join("\n"),
                )
            };
            (
                name,
                format!(
                    "match value {{\n\
                     {str_arm}\n\
                     {map_arm}\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                     \"expected a variant of {name}, found {{}}\", other.kind()))),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn fields_from_value(fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::deserialize({source}.field(\"{f}\")?)?,"))
        .collect::<Vec<_>>()
        .join(" ")
}
