//! Cross-engine validation over seeded synthetic streams.
//!
//! For each configured stream this test registers the same query workload
//! with [`ItaEngine`], [`NaiveEngine`] and [`BruteForceOracle`], feeds all
//! three the identical document sequence and asserts, **after every single
//! event**, that both incremental engines report exactly the oracle's top-k.
//! It also checks the paper's headline claim in counter form: ITA examines
//! strictly fewer (query, update) pairs than the naïve baseline in
//! aggregate, because threshold trees prune the queries an update cannot
//! affect.

use std::time::Duration;

use cts_core::validate::assert_engines_agree;
use cts_core::{
    BruteForceOracle, ContinuousQuery, Engine, ItaConfig, ItaEngine, NaiveConfig, NaiveEngine,
};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::{QueryId, SlidingWindow};
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

const EVENTS: usize = 500;
const NUM_QUERIES: usize = 50;

struct StreamOutcome {
    ita_pairs: u64,
    naive_pairs: u64,
    ita_changed: u64,
    naive_changed: u64,
}

/// Streams `EVENTS` documents through all three engines, validating after
/// every event, and returns the aggregate work counters.
fn run_cross_validation(window: SlidingWindow, seed: u64) -> StreamOutcome {
    let corpus = CorpusConfig {
        vocabulary_size: 2_000,
        seed,
        ..CorpusConfig::small()
    };
    let stream_config = StreamConfig {
        arrival_rate_per_sec: 200.0,
        seed: seed.wrapping_add(1),
    };
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: NUM_QUERIES,
            query_length: 4,
            k: 5,
            popularity_biased: false,
            seed: seed.wrapping_add(2),
        },
        corpus.vocabulary_size,
    );

    let mut ita = ItaEngine::new(window, ItaConfig::default());
    let mut naive = NaiveEngine::new(window, NaiveConfig::default());
    let mut oracle = BruteForceOracle::new(window);

    let dict = Dictionary::new();
    let mut queries: Vec<QueryId> = Vec::with_capacity(NUM_QUERIES);
    for spec in workload.generate() {
        let query =
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict);
        let a = ita.register(query.clone());
        let b = naive.register(query.clone());
        let c = oracle.register(query);
        assert_eq!(a, b, "engines must assign identical query ids");
        assert_eq!(a, c, "engines must assign identical query ids");
        queries.push(a);
    }

    let mut stream = DocumentStream::new(corpus, stream_config);
    let mut outcome = StreamOutcome {
        ita_pairs: 0,
        naive_pairs: 0,
        ita_changed: 0,
        naive_changed: 0,
    };
    for event in 0..EVENTS {
        let doc = stream.next_document();
        let oa = ita.process_document(doc.clone());
        let ob = naive.process_document(doc.clone());
        let oc = oracle.process_document(doc);

        assert_eq!(oa.expired, oc.expired, "window divergence at event {event}");
        assert_eq!(ob.expired, oc.expired, "window divergence at event {event}");
        assert_eq!(ita.num_valid_documents(), oracle.num_valid_documents());
        assert_eq!(naive.num_valid_documents(), oracle.num_valid_documents());

        outcome.ita_pairs +=
            (oa.queries_touched_by_arrival + oa.queries_touched_by_expiration) as u64;
        outcome.naive_pairs +=
            (ob.queries_touched_by_arrival + ob.queries_touched_by_expiration) as u64;
        outcome.ita_changed += oa.results_changed as u64;
        outcome.naive_changed += ob.results_changed as u64;

        assert_engines_agree(&oracle, &ita, &queries);
        assert_engines_agree(&oracle, &naive, &queries);
    }
    outcome
}

fn check_work_counters(outcome: &StreamOutcome) {
    assert!(
        outcome.ita_pairs < outcome.naive_pairs,
        "ITA must touch strictly fewer (query, update) pairs: ita={} naive={}",
        outcome.ita_pairs,
        outcome.naive_pairs
    );
    // Sanity: the streams are dense enough that work actually happened.
    assert!(outcome.ita_pairs > 0, "ITA never touched a query");
    assert!(
        outcome.ita_changed > 0,
        "the stream never changed a top-k result"
    );
    // Both engines observe top-k changes on the same stream; they count them
    // at different granularities but neither may sleep through the churn.
    assert!(outcome.naive_changed > 0);
}

#[test]
fn count_based_window_stream_a() {
    let outcome = run_cross_validation(SlidingWindow::count_based(50), 0xA11CE);
    check_work_counters(&outcome);
}

#[test]
fn count_based_window_stream_b() {
    let outcome = run_cross_validation(SlidingWindow::count_based(80), 0xB0B);
    check_work_counters(&outcome);
}

#[test]
fn time_based_window_stream_a() {
    // 250ms at ~200 docs/s keeps roughly 50 documents valid.
    let outcome = run_cross_validation(
        SlidingWindow::time_based(Duration::from_millis(250)),
        0xCAFE,
    );
    check_work_counters(&outcome);
}

#[test]
fn time_based_window_stream_b() {
    let outcome = run_cross_validation(
        SlidingWindow::time_based(Duration::from_millis(400)),
        0xD00D,
    );
    check_work_counters(&outcome);
}

/// Roll-up is an optimisation, never a semantic change: with it disabled the
/// engine must still match the oracle exactly.
#[test]
fn ita_without_rollup_still_matches_the_oracle() {
    let window = SlidingWindow::count_based(40);
    let corpus = CorpusConfig {
        vocabulary_size: 1_000,
        seed: 0xF00,
        ..CorpusConfig::small()
    };
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: 20,
            query_length: 3,
            k: 4,
            popularity_biased: false,
            seed: 0xF02,
        },
        corpus.vocabulary_size,
    );
    let mut ita = ItaEngine::new(
        window,
        ItaConfig {
            enable_rollup: false,
            ..ItaConfig::default()
        },
    );
    let mut oracle = BruteForceOracle::new(window);
    let dict = Dictionary::new();
    let mut queries = Vec::new();
    for spec in workload.generate() {
        let query =
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict);
        oracle.register(query.clone());
        queries.push(ita.register(query));
    }
    let mut stream = DocumentStream::new(
        corpus,
        StreamConfig {
            arrival_rate_per_sec: 200.0,
            seed: 0xF01,
        },
    );
    for _ in 0..300 {
        let doc = stream.next_document();
        ita.process_document(doc.clone());
        oracle.process_document(doc);
        assert_engines_agree(&oracle, &ita, &queries);
    }
}
