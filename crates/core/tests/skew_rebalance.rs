//! Adversarial-skew stress test for the sharded engine's rebalancer.
//!
//! The attack: a query population engineered to live entirely on **one**
//! shard — built by registering under a disabled rebalancer and
//! deregistering every query whose hash placement is not shard 0, the
//! static-partitioning failure mode FAST-style frequency-adaptive systems
//! exist to avoid. The engine is then re-armed and must (a) migrate load
//! until every shard's query count is within 2× of uniform, and (b) keep
//! every result and every event outcome **byte-identical** to the
//! single-shard reference throughout — migration moves threshold trees,
//! result sets and shadow-index term filters, and none of it may be
//! observable from the outside.

use cts_core::testkit::{generate_script, Op, RunOptions, ScriptConfig};
use cts_core::validate::assert_lockstep_event;
use cts_core::{Engine, ItaConfig, ItaEngine, RebalanceConfig, ShardedItaEngine};
use cts_index::{QueryId, SlidingWindow};

/// Queries to register before the cull. Large enough that every shard count
/// below keeps at least a handful of shard-0 survivors.
const REGISTERED: u32 = 64;

/// Builds the skewed pair: a sharded engine whose whole query population
/// sits on shard 0 (rebalancer disabled during construction), plus the
/// single-shard reference holding the identical surviving queries.
fn engineer_skew(
    window: SlidingWindow,
    shards: usize,
    seed: u64,
) -> (ItaEngine, ShardedItaEngine, Vec<QueryId>) {
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = ShardedItaEngine::with_rebalance(
        window,
        ItaConfig::default(),
        shards,
        RebalanceConfig::disabled(),
    );
    let mut rng = cts_core::testkit::ScriptRng::new(seed);
    let mut qids = Vec::new();
    for _ in 0..REGISTERED {
        let terms = rng.range(1, 4);
        let weights: Vec<(cts_text::TermId, f64)> = (0..terms)
            .map(|_| {
                (
                    cts_text::TermId(rng.below(24) as u32),
                    0.1 + rng.below(8) as f64 * 0.1,
                )
            })
            .collect();
        let query = cts_core::ContinuousQuery::from_weights(weights, rng.range(1, 4));
        let qa = reference.register(query.clone());
        let qb = sharded.register(query);
        assert_eq!(qa, qb);
        qids.push(qa);
    }
    // Cull everything that does not hash to shard 0.
    let survivors: Vec<QueryId> = qids
        .iter()
        .copied()
        .filter(|&q| sharded.shard_of(q) == 0)
        .collect();
    assert!(
        survivors.len() >= 4,
        "hash left too few shard-0 queries to make the test meaningful"
    );
    for &q in &qids {
        if !survivors.contains(&q) {
            assert!(reference.deregister(q));
            assert!(sharded.deregister(q));
        }
    }
    // The skew is real: one shard holds every query, the rest idle.
    assert_eq!(sharded.migrations(), 0);
    let loads = sharded.shard_loads();
    assert_eq!(loads[0], survivors.len(), "loads {loads:?}");
    assert!(loads[1..].iter().all(|&l| l == 0), "loads {loads:?}");
    (reference, sharded, survivors)
}

#[test]
fn rebalancer_spreads_an_all_on_one_shard_population_and_stays_exact() {
    for shards in [2usize, 4, 8] {
        let window = SlidingWindow::count_based(24);
        let (mut reference, mut sharded, survivors) =
            engineer_skew(window, shards, 0x5C3A_0000 + shards as u64);

        // Re-arm the rebalancer; the next boundary repairs the skew.
        sharded.set_rebalance_config(RebalanceConfig::default());
        let config = ScriptConfig {
            initial_queries: 0,
            events: 160,
            register_probability: 0.0,
            deregister_probability: 0.0,
            max_batch: 12,
            ..ScriptConfig::batched()
        };
        let script = generate_script(&config, 0x5C3A_1000 + shards as u64);
        for op in &script.ops {
            match op {
                Op::Feed(doc) => {
                    assert_lockstep_event(&mut reference, &mut sharded, doc, &survivors);
                }
                Op::FeedBatch(docs) => {
                    let expected = reference.process_batch(docs.clone());
                    let actual = sharded.process_batch(docs.clone());
                    assert_eq!(expected, actual, "batch outcomes diverged");
                    for &q in &survivors {
                        assert_eq!(
                            reference.current_results(q),
                            sharded.current_results(q),
                            "results diverged on {q}"
                        );
                    }
                }
                _ => unreachable!("script has no churn"),
            }
        }

        // The rebalancer did move load...
        assert!(
            sharded.migrations() > 0,
            "{shards} shards: no query migrated off the hot shard"
        );
        // ...to within 2× of uniform (the acceptance bound; the default
        // policy actually levels tighter than this).
        let loads = sharded.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), survivors.len());
        let uniform = survivors.len() as f64 / shards as f64;
        let max = *loads.iter().max().unwrap();
        assert!(
            (max as f64) <= (2.0 * uniform).max(1.0),
            "{shards} shards: loads {loads:?} exceed 2x uniform ({uniform:.2})"
        );
        // Routing survived every migration.
        for &q in &survivors {
            let shard = sharded.assigned_shard(q).expect("survivor is routable");
            assert!(shard < shards);
            assert!(
                !sharded.current_results(q).is_empty() || reference.current_results(q).is_empty()
            );
        }
    }
}

/// The same skewed start driven through the generic testkit runner (with
/// churn re-enabled mid-run), as a second, fully scripted angle on
/// migration exactness.
#[test]
fn skewed_start_survives_scripted_churn() {
    for shards in [4usize, 8] {
        let window = SlidingWindow::count_based(18);
        let (reference, mut sharded, _) =
            engineer_skew(window, shards, 0x5C3A_2000 + shards as u64);
        sharded.set_rebalance_config(RebalanceConfig {
            max_over_ideal: 1.0,
            ..RebalanceConfig::default()
        });
        // Hand the pre-skewed engines to the lockstep runner for a churned,
        // batched continuation. (The runner tracks only queries registered
        // through the script; the pre-existing survivors keep being
        // maintained underneath and any divergence in their upkeep shows up
        // in the compared outcomes.)
        let mut engines: Vec<Box<dyn Engine>> = vec![Box::new(reference), Box::new(sharded)];
        let config = ScriptConfig {
            initial_queries: 2,
            events: 140,
            register_probability: 0.15,
            deregister_probability: 0.08,
            ..ScriptConfig::batched()
        };
        let script = generate_script(&config, 0x5C3A_3000 + shards as u64);
        if let Err(failure) =
            cts_core::testkit::run_script(&mut engines, &script, &RunOptions::default())
        {
            panic!(
                "skewed continuation diverged (seed {:#x})\n  {failure}\n{script}",
                script.seed
            );
        }
    }
}
