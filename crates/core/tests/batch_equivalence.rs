//! Batch-vs-singles differential test: [`cts_core::Engine::process_batch`]
//! must be **byte-identical** to the per-event loop on every engine, across
//! shard counts {1, 2, 4, 8} — including deregistrations between batches
//! and window expiries that fall mid-batch.
//!
//! Two angles, both driven by [`cts_core::testkit`]:
//!
//! * scripted: batched op scripts run over `[ItaEngine, ShardedItaEngine]`
//!   pairs — the reference's `process_batch` is the default per-event loop,
//!   the sharded engine's is the one-round-trip-per-shard fan-out, so any
//!   batching shortcut that changes semantics diverges immediately;
//! * flattened: the *same* sharded engine type processes the same stream
//!   once through batches and once as singles, and the outcome sequences
//!   and results must match element for element.

use cts_core::testkit::{assert_script_equivalence, generate_script, Op, ScriptConfig};
use cts_core::{Engine, EventOutcome, ItaConfig, ItaEngine, MonitoringServer, ShardedItaEngine};
use cts_index::{DocId, Document, QueryId, SlidingWindow, Timestamp};
use cts_text::{TermId, WeightedVector};

fn pair(window: SlidingWindow, shards: usize) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ItaEngine::new(window, ItaConfig::default())),
        Box::new(ShardedItaEngine::new(window, ItaConfig::default(), shards)),
    ]
}

/// Batched scripts with churn: deregistrations land between batches (ops
/// are sequential, so a `Deregister` is never *inside* a burst) and the
/// tight window guarantees most batches expire several documents mid-batch.
#[test]
fn batched_fanout_matches_the_per_event_loop_across_shard_counts() {
    let config = ScriptConfig {
        events: 260,
        max_batch: 24,
        register_probability: 0.12,
        deregister_probability: 0.08,
        ..ScriptConfig::batched()
    };
    for shards in [1usize, 2, 4, 8] {
        // Window of 16 with batches up to 24: a single batch routinely
        // wraps the whole window, so expiries fall mid-batch by
        // construction.
        let window = SlidingWindow::count_based(16);
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0xBA7C_0000 + shards as u64,
        );
    }
}

/// Registration bursts, event batches and churn all at once: the
/// [`ScriptConfig::churn_storm`] axis over the usual reference/sharded pair,
/// with a tight window so bursts of *queries* and bursts of *events* overlap
/// with mid-batch expiry.
#[test]
fn churn_storm_bursts_and_batches_hold_across_shard_counts() {
    let config = ScriptConfig {
        events: 240,
        max_batch: 24,
        ..ScriptConfig::churn_storm()
    };
    for shards in [1usize, 2, 4, 8] {
        let window = SlidingWindow::count_based(16);
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0xBA7C_3000 + shards as u64,
        );
    }
}

#[test]
fn time_windows_expire_mid_batch_identically() {
    let config = ScriptConfig {
        events: 220,
        max_batch: 16,
        ..ScriptConfig::batched()
    };
    for shards in [2usize, 4, 8] {
        // ~20ms window over 0–4ms gaps: a 16-event batch spans several
        // window lengths, so the expiration set changes *within* the batch.
        let window = SlidingWindow::time_based(std::time::Duration::from_millis(20));
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0xBA7C_1000 + shards as u64,
        );
    }
}

/// The same sharded engine type, same stream: batched vs flattened-singles
/// outcome sequences must match element for element, and so must every
/// query's results after every op.
#[test]
fn sharded_batches_equal_sharded_singles_on_the_same_stream() {
    let config = ScriptConfig {
        events: 200,
        max_batch: 20,
        register_probability: 0.1,
        burst_register_probability: 0.1,
        deregister_probability: 0.06,
        ..ScriptConfig::batched()
    };
    for shards in [2usize, 4] {
        let window = SlidingWindow::count_based(14);
        let script = generate_script(&config, 0xBA7C_2000 + shards as u64);
        let mut batched = ShardedItaEngine::new(window, ItaConfig::default(), shards);
        let mut singles = ShardedItaEngine::new(window, ItaConfig::default(), shards);
        let mut live: Vec<QueryId> = Vec::new();
        for (i, op) in script.ops.iter().enumerate() {
            match op {
                Op::Register(query) => {
                    let qa = batched.register(query.clone());
                    let qb = singles.register(query.clone());
                    assert_eq!(qa, qb, "op {i}: ids diverged");
                    live.push(qa);
                }
                Op::RegisterBurst(queries) => {
                    let qa = batched.register_batch(queries.clone());
                    let qb = singles.register_batch(queries.clone());
                    assert_eq!(qa, qb, "op {i}: burst ids diverged");
                    live.extend(qa);
                }
                Op::Deregister { victim } => {
                    if live.is_empty() {
                        continue;
                    }
                    let target = live.swap_remove(victim % live.len());
                    assert!(batched.deregister(target));
                    assert!(singles.deregister(target));
                }
                Op::Feed(doc) => {
                    let a = batched.process_document(doc.clone());
                    let b = singles.process_document(doc.clone());
                    assert_eq!(a, b, "op {i}: single-event outcome diverged");
                }
                Op::FeedBatch(docs) => {
                    let a = batched.process_batch(docs.clone());
                    let b: Vec<EventOutcome> = docs
                        .iter()
                        .map(|doc| singles.process_document(doc.clone()))
                        .collect();
                    assert_eq!(a, b, "op {i}: batch outcomes diverged from singles");
                }
                Op::InjectFault { shard } => {
                    batched.inject_fault(*shard);
                    singles.inject_fault(*shard);
                }
            }
            for &q in &live {
                assert_eq!(
                    batched.current_results(q),
                    singles.current_results(q),
                    "op {i}: results diverged on {q}"
                );
            }
            assert_eq!(batched.num_valid_documents(), singles.num_valid_documents());
            assert_eq!(batched.clock(), singles.clock());
        }
    }
}

/// A deterministic deregister-between-batches scenario, driven through the
/// full [`MonitoringServer`] plumbing so `feed_batch` and the batch stats
/// path are covered end to end.
#[test]
fn server_feed_batch_with_deregistration_between_batches() {
    let window = SlidingWindow::count_based(6);
    let mut sharded = MonitoringServer::sharded_ita(window, ItaConfig::default(), 4);
    let mut reference = MonitoringServer::ita(window, ItaConfig::default());
    let make_doc = |id: u64, w: f64| {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights([(TermId((id % 3) as u32), w)]),
        )
    };
    let mut qids = Vec::new();
    for t in 0..6u32 {
        let q = cts_core::ContinuousQuery::from_weights([(TermId(t % 3), 0.5 + t as f64 * 0.1)], 2);
        let qa = sharded.register_query(q.clone());
        assert_eq!(reference.register_query(q), qa);
        qids.push(qa);
    }
    let first: Vec<Document> = (0..9u64)
        .map(|i| make_doc(i, 0.1 + (i % 4) as f64 * 0.2))
        .collect();
    assert_eq!(
        sharded.feed_batch(first.clone()),
        reference.feed_batch(first)
    );
    // Deregister between batches; the next batch must route around the gap.
    assert!(sharded.deregister_query(qids[2]));
    assert!(reference.deregister_query(qids[2]));
    let second: Vec<Document> = (9..20u64)
        .map(|i| make_doc(i, 0.05 + (i % 5) as f64 * 0.15))
        .collect();
    assert_eq!(
        sharded.feed_batch(second.clone()),
        reference.feed_batch(second)
    );
    for &q in qids.iter().filter(|&&q| q != qids[2]) {
        assert_eq!(sharded.results(q), reference.results(q));
    }
    assert!(sharded.results(qids[2]).is_empty());
    // The batch stats recorded both bursts on both servers.
    assert_eq!(sharded.stats().events, 20);
    assert_eq!(sharded.stats().batches, 2);
    assert_eq!(sharded.stats().largest_batch, 11);
    assert_eq!(reference.stats().batches, 2);
    // Steady state: the 6-doc window expired everything the batches pushed
    // out, identically on both.
    assert_eq!(sharded.stats().expirations, reference.stats().expirations);
    assert_eq!(sharded.num_valid_documents(), 6);
}
