//! Randomized differential test: [`ShardedItaEngine`] must be **exactly**
//! equivalent to the single-shard [`ItaEngine`] — byte-identical top-k on
//! every query after every event, and identical [`EventOutcome`] accounting
//! (expirations, touched queries, changed results) — across shard counts
//! {1, 2, 4, 8}, under both count- and time-based windows, with query
//! registration and deregistration interleaved into the stream.
//!
//! The stream is adversarial on purpose: a small vocabulary and a discrete
//! weight palette force long tie runs and dense term sharing between
//! queries, so shadow-index backfill (registration after traffic), list
//! retirement (deregistration), refill after top-k expiry and roll-up all
//! fire constantly. Any divergence panics with the offending event.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cts_core::validate::assert_lockstep_event;
use cts_core::{ContinuousQuery, Engine, ItaConfig, ItaEngine, ShardedItaEngine};
use cts_index::{DocId, Document, QueryId, SlidingWindow, Timestamp};
use cts_text::{TermId, WeightedVector};

/// Vocabulary size: small enough that queries collide on terms across
/// shards, large enough that some document terms are watched by no query.
const VOCABULARY: u32 = 24;
/// Discrete weight palette — exact score ties are the hard case for top-k
/// order and threshold frontiers.
const PALETTE: [f64; 5] = [0.1, 0.2, 0.2, 0.4, 0.7];

fn random_document(rng: &mut SmallRng, id: u64, arrival: Timestamp) -> Document {
    let terms = rng.gen_range(1usize..6);
    let weights = (0..terms).map(|_| {
        (
            TermId(rng.gen_range(0u32..VOCABULARY)),
            PALETTE[rng.gen_range(0usize..PALETTE.len())],
        )
    });
    Document::new(DocId(id), arrival, WeightedVector::from_weights(weights))
}

fn random_query(rng: &mut SmallRng) -> ContinuousQuery {
    // 1–3 terms with strictly positive weights; duplicate term draws
    // collapse to one entry, which still leaves the query non-empty.
    let terms = rng.gen_range(1usize..4);
    let weights: Vec<(TermId, f64)> = (0..terms)
        .map(|_| {
            (
                TermId(rng.gen_range(0u32..VOCABULARY)),
                0.1 + rng.gen_range(0u32..8) as f64 * 0.1,
            )
        })
        .collect();
    ContinuousQuery::from_weights(weights, rng.gen_range(1usize..4))
}

/// Drives one reference/sharded pair through `events` stream events with
/// register/deregister churn, lockstep-checking every event.
fn run_differential(window: SlidingWindow, shards: usize, seed: u64, events: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), shards);
    let mut live: Vec<QueryId> = Vec::new();
    let mut clock = Timestamp::ZERO;

    // A few queries exist before any traffic...
    for _ in 0..3 {
        let q = random_query(&mut rng);
        let qa = reference.register(q.clone());
        let qb = sharded.register(q);
        assert_eq!(qa, qb, "engines assigned different query ids");
        live.push(qa);
    }

    for event in 0..events {
        // ...and the rest churn in and out mid-stream, exercising shadow
        // backfill and list retirement.
        if rng.gen_bool(0.10) {
            let q = random_query(&mut rng);
            let qa = reference.register(q.clone());
            let qb = sharded.register(q);
            assert_eq!(qa, qb);
            live.push(qa);
        }
        if live.len() > 2 && rng.gen_bool(0.05) {
            let victim = live.swap_remove(rng.gen_range(0usize..live.len()));
            assert!(reference.deregister(victim));
            assert!(sharded.deregister(victim), "shard lost query {victim}");
        }
        clock = clock.advance(std::time::Duration::from_millis(rng.gen_range(0u64..5)));
        let doc = random_document(&mut rng, event, clock);
        assert_lockstep_event(&mut reference, &mut sharded, &doc, &live);
    }

    assert_eq!(reference.num_queries(), sharded.num_queries());
    assert_eq!(
        reference.num_valid_documents(),
        sharded.num_valid_documents()
    );
    // The shadow indexes never hold more postings than the full index times
    // the shard count, and every shard mirrors the same window.
    let full_docs = reference.index_stats().documents;
    for stats in sharded.shard_index_stats() {
        assert_eq!(stats.documents, full_docs);
    }
}

#[test]
fn sharded_matches_single_shard_under_count_based_windows() {
    for shards in [1usize, 2, 4, 8] {
        run_differential(
            SlidingWindow::count_based(30),
            shards,
            0x5EED_0000 + shards as u64,
            320,
        );
    }
}

#[test]
fn sharded_matches_single_shard_under_time_based_windows() {
    // ~40ms window over 0–5ms arrival gaps: bursts of multi-document expiry.
    for shards in [1usize, 2, 4, 8] {
        run_differential(
            SlidingWindow::time_based(std::time::Duration::from_millis(40)),
            shards,
            0x5EED_1000 + shards as u64,
            320,
        );
    }
}

#[test]
fn sharded_matches_single_shard_with_heavy_query_churn() {
    // A second count-based pass at a different seed band and a tighter
    // window, so expiration-triggered refills dominate.
    for shards in [2usize, 8] {
        run_differential(
            SlidingWindow::count_based(12),
            shards,
            0x5EED_2000 + shards as u64,
            400,
        );
    }
}
