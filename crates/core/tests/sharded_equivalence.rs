//! Randomized differential test: [`ShardedItaEngine`] must be **exactly**
//! equivalent to the single-shard [`ItaEngine`] — byte-identical top-k on
//! every query after every event, and identical `EventOutcome` accounting
//! (expirations, touched queries, changed results) — across shard counts
//! {1, 2, 4, 8}, under both count- and time-based windows, with query
//! registration and deregistration interleaved into the stream, and with
//! the skew-aware rebalancer migrating queries mid-run.
//!
//! All of the mechanics — the seeded op-script generator, the lockstep
//! runner, and the failure path that echoes the seed and a minimized
//! reproduction script — live in [`cts_core::testkit`]; this file only
//! states *which* engine pairs and stream shapes must agree. The default
//! [`ScriptConfig`] is adversarial on purpose: a small vocabulary and a
//! discrete weight palette force long tie runs and dense term sharing
//! between queries, so shadow-index backfill (registration after traffic),
//! list retirement (deregistration), refill after top-k expiry and roll-up
//! all fire constantly.

use std::time::Duration;

use cts_core::testkit::{assert_script_equivalence, LoopRegister, ScriptConfig};
use cts_core::{Engine, ItaConfig, ItaEngine, RebalanceConfig, ShardedItaEngine};
use cts_index::SlidingWindow;

/// The reference/candidate pair every scenario drives: a single-shard
/// [`ItaEngine`] against a [`ShardedItaEngine`] with `shards` workers.
fn pair(window: SlidingWindow, shards: usize) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ItaEngine::new(window, ItaConfig::default())),
        Box::new(ShardedItaEngine::new(window, ItaConfig::default(), shards)),
    ]
}

/// Same pair, but with an aggressive rebalancer so migrations fire many
/// times within a short script (trigger exactly at the uniform share).
fn eager_rebalance_pair(window: SlidingWindow, shards: usize) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ItaEngine::new(window, ItaConfig::default())),
        Box::new(ShardedItaEngine::with_rebalance(
            window,
            ItaConfig::default(),
            shards,
            RebalanceConfig {
                max_over_ideal: 1.0,
                ..RebalanceConfig::default()
            },
        )),
    ]
}

#[test]
fn sharded_matches_single_shard_under_count_based_windows() {
    let config = ScriptConfig::default();
    for shards in [1usize, 2, 4, 8] {
        let window = SlidingWindow::count_based(30);
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0x5EED_0000 + shards as u64,
        );
    }
}

/// The runner compares engine-level observables, and
/// `ShardedItaEngine::num_valid_documents` is served by shard 0 — so this
/// scenario keeps the concrete engines (`&mut E` is an `Engine`) and
/// asserts afterwards that **every** shard's shadow index mirrors the
/// reference window exactly. A shard ≥ 1 mis-expiring its mirror cannot
/// hide behind a lucky query placement here.
#[test]
fn every_shard_mirrors_the_reference_window() {
    use cts_core::testkit::{generate_script, run_script, RunOptions};

    for shards in [2usize, 4, 8] {
        let window = SlidingWindow::count_based(30);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), shards);
        let script = generate_script(
            &ScriptConfig {
                events: 200,
                ..ScriptConfig::batched()
            },
            0x5EED_4000 + shards as u64,
        );
        {
            let mut engines: Vec<Box<dyn Engine + '_>> =
                vec![Box::new(&mut reference), Box::new(&mut sharded)];
            if let Err(failure) = run_script(&mut engines, &script, &RunOptions::default()) {
                panic!("diverged (seed {:#x}): {failure}\n{script}", script.seed);
            }
        }
        let full_docs = reference.index_stats().documents;
        for (shard, stats) in sharded.shard_index_stats().iter().enumerate() {
            assert_eq!(
                stats.documents, full_docs,
                "{shards}-shard engine: shard {shard} window mirror drifted"
            );
        }
    }
}

#[test]
fn sharded_matches_single_shard_under_time_based_windows() {
    // ~40ms window over 0–4ms arrival gaps: bursts of multi-document expiry.
    let config = ScriptConfig::default();
    for shards in [1usize, 2, 4, 8] {
        let window = SlidingWindow::time_based(Duration::from_millis(40));
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0x5EED_1000 + shards as u64,
        );
    }
}

#[test]
fn sharded_matches_single_shard_with_heavy_query_churn() {
    // A tighter window and doubled churn probabilities, so
    // expiration-triggered refills dominate and the rebalancer sees the
    // query population move constantly.
    let config = ScriptConfig {
        events: 400,
        register_probability: 0.2,
        deregister_probability: 0.1,
        ..ScriptConfig::default()
    };
    for shards in [2usize, 8] {
        let window = SlidingWindow::count_based(12);
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0x5EED_2000 + shards as u64,
        );
    }
}

/// The registration-heavy axis: [`ScriptConfig::churn_storm`] scripts mix
/// [`cts_core::testkit::Op::RegisterBurst`]s into the churn, and the engine
/// set pits every registration strategy against the lazy reference at once —
/// eager backfill (`lazy_registration: false`), a [`LoopRegister`]-pinned
/// twin (bulk path disabled) and the sharded engine's one-round-trip-per-
/// shard burst fan-out. Bulk merge, cold→warm shadow-list promotion and the
/// per-shard burst protocol must all be byte-invisible.
fn churn_storm_engines(window: SlidingWindow, shards: usize) -> Vec<Box<dyn Engine>> {
    let eager = ItaConfig {
        lazy_registration: false,
        ..ItaConfig::default()
    };
    vec![
        Box::new(ItaEngine::new(window, ItaConfig::default())),
        Box::new(ItaEngine::new(window, eager)),
        Box::new(LoopRegister(ItaEngine::new(window, ItaConfig::default()))),
        Box::new(ShardedItaEngine::new(window, ItaConfig::default(), shards)),
    ]
}

#[test]
fn churn_storm_registration_bursts_hold_across_shard_counts() {
    let config = ScriptConfig {
        events: 260,
        ..ScriptConfig::churn_storm()
    };
    for shards in [1usize, 2, 4, 8] {
        let window = SlidingWindow::count_based(24);
        assert_script_equivalence(
            &|| churn_storm_engines(window, shards),
            &config,
            0x5EED_5000 + shards as u64,
        );
    }
}

#[test]
fn churn_storm_survives_eager_migration() {
    // Registration bursts land whole shard-groups of fresh queries at once —
    // exactly the imbalance a trigger-at-uniform-share rebalancer pounces
    // on, so bursts and migrations interleave densely here.
    let config = ScriptConfig {
        events: 240,
        ..ScriptConfig::churn_storm()
    };
    for shards in [2usize, 4] {
        let window = SlidingWindow::count_based(20);
        assert_script_equivalence(
            &|| eager_rebalance_pair(window, shards),
            &config,
            0x5EED_6000 + shards as u64,
        );
    }
}

#[test]
fn sharded_matches_single_shard_with_eager_migration() {
    // Trigger ratio 1.0: any imbalance the hash placement or churn creates
    // is repaired immediately, so query state migrates (threshold trees,
    // result sets, shadow-filter references) many times per script — and
    // the results must not move by a byte.
    let config = ScriptConfig {
        events: 300,
        register_probability: 0.15,
        deregister_probability: 0.10,
        ..ScriptConfig::batched()
    };
    for shards in [2usize, 4] {
        let window = SlidingWindow::count_based(25);
        assert_script_equivalence(
            &|| eager_rebalance_pair(window, shards),
            &config,
            0x5EED_3000 + shards as u64,
        );
    }
}
