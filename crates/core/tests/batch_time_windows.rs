//! Time-window edge cases pushed through the batched path:
//!
//! * **equal-timestamp events inside one batch** — a burst arriving within
//!   the same clock tick must expire (or retain) its members exactly as the
//!   per-event loop does, on every shard count;
//! * **expiry exactly at the batch boundary** — a document whose lifetime
//!   ends precisely at the arrival time of a batch's first (or previous
//!   batch's last) event exercises the window rule's strict `<` cutoff at
//!   the seam where batches meet;
//! * **the saturating-micros path from PR 3** — a `Duration::MAX` window
//!   saturates to `u64::MAX` microseconds instead of wrapping; through
//!   `process_batch` it must behave as an infinite window, not expire the
//!   store.

use std::time::Duration;

use cts_core::testkit::{assert_script_equivalence, ScriptConfig};
use cts_core::{ContinuousQuery, Engine, ItaConfig, ItaEngine, ShardedItaEngine};
use cts_index::{DocId, Document, SlidingWindow, Timestamp, WindowKind};
use cts_text::{TermId, WeightedVector};

fn pair(window: SlidingWindow, shards: usize) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ItaEngine::new(window, ItaConfig::default())),
        Box::new(ShardedItaEngine::new(window, ItaConfig::default(), shards)),
    ]
}

fn doc_at(id: u64, at: Timestamp, term: u32, weight: f64) -> Document {
    Document::new(
        DocId(id),
        at,
        WeightedVector::from_weights([(TermId(term), weight)]),
    )
}

/// Zero arrival gap: every document in a batch (and across batches) shares
/// one timestamp, so a time window either keeps all of them or expires a
/// whole burst at once — the dense-tie case for the expiration scan.
#[test]
fn equal_timestamps_inside_one_batch_stay_exact() {
    let config = ScriptConfig {
        events: 180,
        max_gap_millis: 0,
        max_batch: 12,
        ..ScriptConfig::batched()
    };
    for shards in [1usize, 2, 4, 8] {
        let window = SlidingWindow::time_based(Duration::from_millis(25));
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0x71ED_0000 + shards as u64,
        );
    }
    // Mixed gaps (mostly zero, occasionally one): equal-timestamp *runs*
    // interleave with real clock advances.
    let config = ScriptConfig {
        events: 180,
        max_gap_millis: 1,
        max_batch: 10,
        ..ScriptConfig::batched()
    };
    for shards in [2usize, 4] {
        let window = SlidingWindow::time_based(Duration::from_millis(3));
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0x71ED_1000 + shards as u64,
        );
    }
}

/// Deterministic construction around a 100ms window: document `d0` arrives
/// at t=0, and the batch seams are placed so one batch *ends* at t=100ms
/// (cutoff exactly at `d0`'s arrival — the strict `<` keeps it valid) and
/// the next batch *begins* at t=100.001ms (one microsecond later — now it
/// must expire, as the first expiration of the new batch).
#[test]
fn expiry_exactly_at_the_batch_boundary() {
    let window = SlidingWindow::time_based(Duration::from_millis(100));
    for shards in [1usize, 3, 8] {
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), shards);
        let q = ContinuousQuery::from_weights([(TermId(0), 0.7), (TermId(1), 0.3)], 2);
        let qa = reference.register(q.clone());
        let qb = sharded.register(q);
        assert_eq!(qa, qb);

        // Batch 1 ends at exactly t = 100ms: cutoff = 100ms − 100ms = 0,
        // and d0 (arrival 0) is NOT strictly below it — still valid.
        let first = vec![
            doc_at(0, Timestamp::ZERO, 0, 0.9),
            doc_at(1, Timestamp::from_millis(40), 1, 0.6),
            doc_at(2, Timestamp::from_millis(100), 0, 0.2),
        ];
        let expected = reference.process_batch(first.clone());
        let actual = sharded.process_batch(first);
        assert_eq!(expected, actual);
        assert_eq!(expected.iter().map(|o| o.expired).sum::<usize>(), 0);
        assert_eq!(reference.num_valid_documents(), 3);
        assert_eq!(sharded.num_valid_documents(), 3);
        assert_eq!(reference.current_results(qa), sharded.current_results(qb));

        // Batch 2 begins one microsecond past the boundary: d0 expires as
        // the very first expiration of the batch, taking the top-scoring
        // document with it (a refill at the seam).
        let second = vec![
            doc_at(3, Timestamp::from_micros(100_001), 0, 0.5),
            doc_at(4, Timestamp::from_micros(140_001), 1, 0.4),
        ];
        let expected = reference.process_batch(second.clone());
        let actual = sharded.process_batch(second);
        assert_eq!(expected, actual);
        assert_eq!(expected[0].expired, 1, "d0 must expire at the seam");
        assert_eq!(expected[1].expired, 1, "d1 follows one event later");
        assert_eq!(reference.current_results(qa), sharded.current_results(qb));
        let top: Vec<u64> = reference
            .current_results(qa)
            .iter()
            .map(|r| r.doc.0)
            .collect();
        // Survivors: d2 (0.7·0.2), d3 (0.7·0.5), d4 (0.3·0.4) — the
        // boundary document d2 outscores the fresher d4.
        assert_eq!(top, vec![3, 2], "post-seam top-k");
    }
}

/// `Duration::MAX` saturates to a `u64::MAX`-microsecond window (PR 3's
/// fix; a wrapping cast would produce a near-zero window and expire
/// everything). Through the batched path the store must simply grow.
#[test]
fn saturating_micros_window_through_process_batch() {
    let window = SlidingWindow::time_based(Duration::MAX);
    assert_eq!(
        window.kind(),
        WindowKind::TimeBased {
            duration_micros: u64::MAX
        }
    );
    for shards in [1usize, 4] {
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), shards);
        let q = ContinuousQuery::from_weights([(TermId(0), 1.0)], 3);
        let qa = reference.register(q.clone());
        let qb = sharded.register(q);
        // Arrival times deep into the future, in one batch: nothing may
        // expire, even with the clock at ~3 million years.
        let batch: Vec<Document> = (0..40u64)
            .map(|i| {
                doc_at(
                    i,
                    Timestamp::from_secs(i * u64::from(u32::MAX)),
                    (i % 2) as u32,
                    0.1 + (i % 7) as f64 * 0.1,
                )
            })
            .collect();
        let expected = reference.process_batch(batch.clone());
        let actual = sharded.process_batch(batch);
        assert_eq!(expected, actual);
        assert!(expected.iter().all(|o| o.expired == 0));
        assert_eq!(reference.num_valid_documents(), 40);
        assert_eq!(sharded.num_valid_documents(), 40);
        assert_eq!(reference.current_results(qa), sharded.current_results(qb));
    }
}
