//! Coordinator error-path and lifecycle tests for the sharded engine: the
//! unglamorous edges the differential suites rarely pin down exactly —
//! unknown-query deregistration, typed `try_*` errors, empty batches,
//! id minting under interleaved churn, and the shutdown stat drain.

use cts_core::{ContinuousQuery, Engine, EngineError, FaultConfig, ItaConfig, ShardedItaEngine};
use cts_index::{DocId, Document, QueryId, SlidingWindow, Timestamp};
use cts_text::{TermId, WeightedVector};

fn engine(shards: usize) -> ShardedItaEngine {
    ShardedItaEngine::new(SlidingWindow::count_based(8), ItaConfig::default(), shards)
}

fn doc(id: u64) -> Document {
    Document::new(
        DocId(id),
        Timestamp::from_millis(id),
        WeightedVector::from_weights([(TermId((id % 5) as u32), 0.1 + (id % 4) as f64 * 0.2)]),
    )
}

fn query(term: u32) -> ContinuousQuery {
    ContinuousQuery::from_weights([(TermId(term), 1.0)], 2)
}

#[test]
fn deregistering_an_unknown_query_is_false_not_fatal() {
    let mut sharded = engine(3);
    // Never registered.
    assert!(!sharded.deregister(QueryId(42)));
    // Registered then removed: the second removal is the unknown case too.
    let q = sharded.register(query(1));
    assert!(sharded.deregister(q));
    assert!(!sharded.deregister(q));
    // The typed path names the query.
    match sharded.try_deregister(q) {
        Err(EngineError::UnknownQuery(named)) => assert_eq!(named, q),
        other => panic!("expected UnknownQuery, got {other:?}"),
    }
    // The engine is fully usable afterwards.
    sharded.process_document(doc(0));
    assert_eq!(sharded.num_queries(), 0);
}

#[test]
fn empty_bursts_are_no_ops() {
    let mut sharded = engine(2);
    assert!(sharded.process_batch(Vec::new()).is_empty());
    assert!(sharded.register_batch(Vec::new()).is_empty());
    assert!(sharded
        .try_process_batch(Vec::new())
        .expect("empty batch is fine")
        .is_empty());
    assert!(sharded
        .try_register_batch(Vec::new())
        .expect("empty burst is fine")
        .is_empty());
    assert_eq!(sharded.aggregate_shard_stats().events, 0);
    assert_eq!(sharded.num_queries(), 0);
}

#[test]
fn minted_ids_stay_unique_across_interleaved_bursts_and_removals() {
    let mut sharded = engine(4);
    let mut seen = std::collections::HashSet::new();
    let mut live: Vec<QueryId> = Vec::new();
    for round in 0..10u32 {
        // A single registration, a burst, then a removal — the id counter
        // must never reuse an id, deregistered or not.
        let single = sharded.register(query(round % 6));
        assert!(seen.insert(single), "{single} minted twice");
        live.push(single);
        let burst = sharded.register_batch((0..3).map(|t| query((round + t) % 6)).collect());
        assert_eq!(burst.len(), 3);
        for qid in burst {
            assert!(seen.insert(qid), "{qid} minted twice");
            live.push(qid);
        }
        let victim = live.swap_remove((round as usize * 7) % live.len());
        assert!(sharded.deregister(victim));
        sharded.process_document(doc(round as u64));
    }
    assert_eq!(sharded.num_queries(), live.len());
    // Every live query still routes to a shard and serves results.
    for &q in &live {
        assert!(sharded.assigned_shard(q).is_some(), "{q} lost its shard");
        let _ = sharded.current_results(q);
    }
}

#[test]
fn duplicate_queries_in_one_burst_get_distinct_ids() {
    let mut sharded = engine(2);
    let same = query(1);
    let ids = sharded.register_batch(vec![same.clone(), same.clone(), same]);
    assert_eq!(ids.len(), 3);
    let unique: std::collections::HashSet<QueryId> = ids.iter().copied().collect();
    assert_eq!(
        unique.len(),
        3,
        "identical queries must still get fresh ids"
    );
    sharded.process_document(doc(0));
    // All three are independent registrations with identical results.
    assert_eq!(
        sharded.current_results(ids[0]),
        sharded.current_results(ids[1])
    );
    assert_eq!(
        sharded.current_results(ids[1]),
        sharded.current_results(ids[2])
    );
}

#[test]
fn shutdown_returns_the_final_aggregate_stats() {
    let mut sharded = ShardedItaEngine::with_faults(
        SlidingWindow::count_based(8),
        ItaConfig::default(),
        3,
        Default::default(),
        FaultConfig::default(),
    );
    sharded.register(query(0));
    for i in 0..12u64 {
        sharded.process_document(doc(i));
    }
    let merged = sharded.shutdown();
    // Every shard saw every event; the drain handshake preserves exactly
    // what a plain drop would have discarded.
    assert_eq!(merged.events, 12 * 3);
    assert!(merged.total_time > std::time::Duration::ZERO);
}
