//! Release-mode paper-scale soak: the ROADMAP's "1,000 queries, 10k+
//! windows, 182k terms" configuration, run as an `#[ignore]`d test so the
//! default `cargo test` stays fast. CI runs it in a dedicated job:
//!
//! ```text
//! cargo test --release -p cts-core --test paper_scale_soak -- --ignored
//! ```
//!
//! The soak fills a 10,000-document count-based window from the synthetic
//! WSJ-like stream (181,978-term vocabulary, log-normal document lengths),
//! registers 1,000 ten-term queries with `k = 10`, streams thousands of
//! steady-state events through [`ItaEngine`], and periodically verifies a
//! sample of queries against a from-scratch brute-force evaluation of the
//! engine's own window — plus the ITA frontier invariant (`τ ≤ S_k` for
//! every saturated query). A full per-event oracle at this scale would cost
//! ~10M score evaluations per event; sampling keeps the soak to a couple of
//! minutes while still catching any incremental-maintenance drift.

use cts_core::{ContinuousQuery, Engine, ItaConfig, ItaEngine};
use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
use cts_index::{QueryId, SlidingWindow};
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

const NUM_QUERIES: usize = 1_000;
const WINDOW_DOCS: usize = 10_000;
const SOAK_EVENTS: usize = 4_000;
const CHECK_EVERY: usize = 500;
/// Queries re-verified per checkpoint (spread across the id space).
const SAMPLE: usize = 25;

/// Recomputes `query`'s true top-k by scoring every valid document in the
/// engine's own store, mirroring `BruteForceOracle` without paying for a
/// second copy of the 10k-document window.
fn brute_force_top(engine: &ItaEngine, query: &ContinuousQuery) -> Vec<(u64, f64)> {
    let mut results = cts_core::ResultSet::new();
    for doc in engine.store_documents() {
        let score = query.score(&doc.composition);
        if score > 0.0 {
            results.insert(doc.id, score);
        }
    }
    results
        .top(query.k())
        .iter()
        .map(|r| (r.doc.0, r.score))
        .collect()
}

#[test]
#[ignore = "paper-scale soak: minutes in release mode; run via cargo test --release -- --ignored"]
fn ita_survives_a_paper_scale_soak() {
    let corpus = CorpusConfig {
        seed: 0x50AC_0001,
        ..CorpusConfig::default()
    };
    assert_eq!(corpus.vocabulary_size, 181_978, "paper-scale vocabulary");
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: NUM_QUERIES,
            query_length: 10,
            k: 10,
            popularity_biased: false,
            seed: 0x50AC_0002,
        },
        corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    let queries: Vec<ContinuousQuery> = workload
        .generate()
        .iter()
        .map(|spec| {
            ContinuousQuery::from_term_frequencies(&spec.terms, spec.k, Scoring::Cosine, &dict)
        })
        .collect();

    let mut stream = DocumentStream::new(
        corpus,
        StreamConfig {
            arrival_rate_per_sec: 200.0,
            seed: 0x50AC_0003,
        },
    );
    let mut engine = ItaEngine::new(
        SlidingWindow::count_based(WINDOW_DOCS),
        ItaConfig::default(),
    );

    // Fill the window, then install the paper's workload.
    for _ in 0..WINDOW_DOCS {
        engine.process_document(stream.next_document());
    }
    let qids: Vec<QueryId> = queries.iter().map(|q| engine.register(q.clone())).collect();
    assert_eq!(engine.num_queries(), NUM_QUERIES);
    assert_eq!(engine.num_valid_documents(), WINDOW_DOCS);

    let sample_stride = (NUM_QUERIES / SAMPLE).max(1);
    for event in 1..=SOAK_EVENTS {
        let outcome = engine.process_document(stream.next_document());
        assert_eq!(outcome.expired, 1, "steady state expires exactly one doc");
        assert_eq!(engine.num_valid_documents(), WINDOW_DOCS);

        if event % CHECK_EVERY != 0 {
            continue;
        }
        // Spot-check: sampled queries must match a from-scratch evaluation.
        for (qid, query) in qids.iter().zip(&queries).step_by(sample_stride) {
            let reported: Vec<(u64, f64)> = engine
                .current_results(*qid)
                .iter()
                .map(|r| (r.doc.0, r.score))
                .collect();
            let expected = brute_force_top(&engine, query);
            assert_eq!(
                reported.len(),
                expected.len(),
                "event {event}, {qid}: result length diverged"
            );
            for (i, ((rd, rs), (ed, es))) in reported.iter().zip(&expected).enumerate() {
                assert_eq!(rd, ed, "event {event}, {qid}: rank {i} document diverged");
                assert!(
                    (rs - es).abs() <= 1e-9,
                    "event {event}, {qid}: rank {i} score diverged ({rs} vs {es})"
                );
            }
            // The paper's frontier invariant: for a saturated top-k,
            // τ = Σ w_{Q,t}·θ_{Q,t} never exceeds S_k.
            let stats = engine.query_stats(*qid).expect("query registered");
            if stats.result_set_size >= query.k() {
                assert!(
                    stats.influence_threshold <= stats.kth_score + 1e-9,
                    "event {event}, {qid}: τ={} > S_k={}",
                    stats.influence_threshold,
                    stats.kth_score
                );
            }
        }
        eprintln!("soak: event {event}/{SOAK_EVENTS} verified");
    }

    // The index tracked the churn exactly: stats stay at window scale.
    let stats = engine.index_stats();
    assert_eq!(stats.documents, WINDOW_DOCS);
    assert!(stats.postings > WINDOW_DOCS, "postings track the window");
    assert!(stats.longest_list <= WINDOW_DOCS);
}

/// Sharded spot-check at paper scale: a 4-shard [`cts_core::ShardedItaEngine`]
/// and the single-shard reference stream the same fill + workload +
/// steady-state events — **as a corpus-built [`cts_core::testkit`] op
/// script** driven by the shared lockstep runner, with the steady state
/// split between single events and 64-document bursts so the batched
/// fan-out is exercised at full scale too. Outcomes are compared on every
/// event; results on a sample of queries at checkpoints
/// (`RunOptions { check_every, sample_stride }` keeps the pair of
/// paper-scale engines to soak-job runtime). Minimization is deliberately
/// skipped at this scale — the failure still reports the offending op.
#[test]
#[ignore = "paper-scale soak: minutes in release mode; run via cargo test --release -- --ignored"]
fn sharded_ita_stays_exact_at_paper_scale() {
    use cts_core::testkit::{run_script, Op, OpScript, RunOptions};
    use cts_core::ShardedItaEngine;

    const SHARDS: usize = 4;
    const EVENTS: usize = 1_000;
    const BATCH: usize = 64;

    let corpus = CorpusConfig {
        seed: 0x50AC_0001,
        ..CorpusConfig::default()
    };
    let workload = QueryWorkload::new(
        WorkloadConfig {
            num_queries: NUM_QUERIES,
            query_length: 10,
            k: 10,
            popularity_biased: false,
            seed: 0x50AC_0002,
        },
        corpus.vocabulary_size,
    );
    let dict = Dictionary::new();
    let mut stream = DocumentStream::new(
        corpus,
        StreamConfig {
            arrival_rate_per_sec: 200.0,
            seed: 0x50AC_0003,
        },
    );

    // Build the whole soak as one op script: window fill, workload
    // registration, then a steady state alternating singles and bursts.
    let mut script = OpScript::new(0x50AC_0004);
    for _ in 0..WINDOW_DOCS {
        script.push(Op::Feed(stream.next_document()));
    }
    for spec in workload.generate() {
        script.push(Op::Register(ContinuousQuery::from_term_frequencies(
            &spec.terms,
            spec.k,
            Scoring::Cosine,
            &dict,
        )));
    }
    let mut emitted = 0;
    while emitted < EVENTS {
        if emitted % (4 * BATCH) < BATCH {
            // One burst per four batch-lengths of stream.
            let size = BATCH.min(EVENTS - emitted);
            let docs: Vec<_> = (0..size).map(|_| stream.next_document()).collect();
            emitted += docs.len();
            script.push(Op::FeedBatch(docs));
        } else {
            script.push(Op::Feed(stream.next_document()));
            emitted += 1;
        }
    }

    let window = SlidingWindow::count_based(WINDOW_DOCS);
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), SHARDS);
    {
        // `&mut E` is an Engine, so the runner drives borrowed engines and
        // the concrete types stay available for the stats checks below.
        let mut engines: Vec<Box<dyn cts_core::Engine + '_>> =
            vec![Box::new(&mut reference), Box::new(&mut sharded)];
        let options = RunOptions {
            compare_outcomes: true,
            check_every: CHECK_EVERY,
            sample_stride: (NUM_QUERIES / SAMPLE).max(1),
        };
        if let Err(failure) = run_script(&mut engines, &script, &options) {
            panic!(
                "sharded paper-scale soak diverged (seed {:#x}): {failure}",
                script.seed
            );
        }
    }
    assert_eq!(reference.num_queries(), NUM_QUERIES);
    assert_eq!(sharded.num_queries(), NUM_QUERIES);
    assert_eq!(sharded.num_valid_documents(), WINDOW_DOCS);

    // Every shard mirrors the full window; the shadow postings across all
    // shards stay below the full index (most composition terms are watched
    // by no query at this workload).
    let full = reference.index_stats();
    let shadow = sharded.shard_index_stats();
    assert!(shadow.iter().all(|s| s.documents == WINDOW_DOCS));
    let shadow_postings: usize = shadow.iter().map(|s| s.postings).sum();
    assert!(
        shadow_postings < full.postings,
        "shadow {shadow_postings} >= full {}",
        full.postings
    );
}
