//! Overload differential and degraded-admission tests for the bounded
//! [`StreamService`] front-end.
//!
//! The correctness contract under overload: the service may shed whatever
//! its bounds dictate, but the events it reports processed must produce
//! byte-identical results to feeding exactly that sequence to an unbounded
//! reference engine, across shard counts and fault policies — and admission
//! must stay explicit and deterministic (`Retry`/`Shed`, never a deadlock or
//! a silently dropped ack) even while a shard is degraded.

use cts_core::testkit::{run_overload_session, OverloadConfig, ScriptRng};
use cts_core::{
    Admission, ContinuousQuery, Engine, FaultConfig, FaultPolicy, IngestEvent, ItaConfig,
    ItaEngine, RebalanceConfig, ServiceConfig, ShardedItaEngine, ShedReason, StreamService,
};
use cts_index::{DocId, Document, SlidingWindow, Timestamp};
use cts_text::{TermId, WeightedVector};

fn sharded(window: SlidingWindow, shards: usize, policy: FaultPolicy) -> ShardedItaEngine {
    ShardedItaEngine::with_faults(
        window,
        ItaConfig::default(),
        shards,
        RebalanceConfig::default(),
        FaultConfig {
            policy,
            ..FaultConfig::default()
        },
    )
}

fn doc(id: u64, millis: u64, weight: f64) -> Document {
    Document::new(
        DocId(id),
        Timestamp::from_millis(millis),
        WeightedVector::from_weights([(TermId((id % 4) as u32), weight)]),
    )
}

fn query(term: u32) -> ContinuousQuery {
    ContinuousQuery::from_weights([(TermId(term), 1.0)], 2)
}

#[test]
fn overload_lockstep_holds_across_shards_and_policies() {
    let window = SlidingWindow::count_based(32);
    let config = OverloadConfig {
        bursts: 25,
        inject_fault_probability: 0.05,
        ..OverloadConfig::default()
    };
    for shards in [1usize, 2, 4, 8] {
        for policy in [FaultPolicy::BlockUntilRecovered, FaultPolicy::ServeDegraded] {
            let candidate = sharded(window, shards, policy);
            let mut reference = ItaEngine::new(window, ItaConfig::default());
            let overload = run_overload_session(
                candidate,
                &mut reference,
                &config,
                0x0BAD_0001 + shards as u64,
            );
            assert!(
                overload.shed() > 0,
                "{shards} shards / {policy:?}: bursty session never shed"
            );
        }
    }
}

/// The acceptance burst: arrival rate 10× the drain budget at the
/// 1,000-query/10k-window point, across shard counts and both fault
/// policies. Release-only (run by the soak job via `--ignored`).
#[test]
#[ignore = "acceptance-scale overload soak; run with --release -- --ignored"]
fn ten_x_burst_stays_live_and_exact_at_paper_scale() {
    let window = SlidingWindow::count_based(10_000);
    let config = OverloadConfig::ten_x();
    let mut rng = ScriptRng::new(0x0BAD_5CA1);
    let upfront: Vec<ContinuousQuery> = (0..1_000)
        .map(|_| {
            let terms = rng.range(1, 4);
            let weights: Vec<(TermId, f64)> = (0..terms)
                .map(|_| {
                    (
                        TermId(rng.below(24) as u32),
                        0.1 + rng.below(8) as f64 * 0.1,
                    )
                })
                .collect();
            ContinuousQuery::from_weights(weights, rng.range(1, 4))
        })
        .collect();
    for shards in [1usize, 2, 4, 8] {
        for policy in [FaultPolicy::BlockUntilRecovered, FaultPolicy::ServeDegraded] {
            let mut candidate = sharded(window, shards, policy);
            let mut reference = ItaEngine::new(window, ItaConfig::default());
            let ids = candidate.register_batch(upfront.clone());
            assert_eq!(ids, reference.register_batch(upfront.clone()));
            let overload = run_overload_session(
                candidate,
                &mut reference,
                &config,
                0x0BAD_0100 + shards as u64,
            );
            // 10× overload must actually shed, and the ledger must settle
            // exactly (run_overload_session asserts the identity and the
            // byte-identical results; this pins the profile's shape).
            assert!(
                overload.shed() > overload.offered / 2,
                "{shards} shards / {policy:?}: a 10x profile should shed most \
                 of its offers, got {overload:?}"
            );
        }
    }
}

#[test]
fn serve_degraded_with_a_full_queue_refuses_deterministically() {
    let window = SlidingWindow::count_based(16);
    let mut config = ServiceConfig::bounded(8);
    // Backpressure exactly at capacity: a degraded engine with a full queue
    // must refuse every further offer the same way.
    config.backpressure_watermark = config.queue_capacity;
    let mut service = StreamService::new(
        sharded(window, 2, FaultPolicy::ServeDegraded),
        config.clone(),
    );
    let q = service
        .offer_register(query(0))
        .1
        .expect("immediate registration under no pressure");
    // Degrade shard 0 and let an op discover the dead worker.
    assert!(service.engine_mut().inject_disconnect(0));
    service.offer_document(doc(0, 0, 0.5));
    service.pump(Timestamp::from_millis(1));
    assert!(
        service
            .engine()
            .fault_stats()
            .is_some_and(|faults| faults.degraded_shards > 0),
        "disconnect was not discovered"
    );
    // Fill the queue to capacity: every offer below the watermark is an
    // explicit Accepted ack.
    for i in 1..=config.queue_capacity as u64 {
        assert_eq!(service.offer_document(doc(i, i, 0.5)), Admission::Accepted);
    }
    assert_eq!(service.depth(), config.queue_capacity);
    // Full queue × degraded shard: deterministic Retry, no deadlock, depth
    // frozen, accounting exact — for as long as the caller keeps offering.
    for i in 0..20u64 {
        let admission = service.offer_document(doc(100 + i, 100 + i, 0.5));
        assert_eq!(
            admission,
            Admission::Retry {
                after: config.retry_after
            },
            "offer {i} while degraded+full was not a deterministic Retry"
        );
        assert_eq!(service.depth(), config.queue_capacity);
        service.check_accounting();
    }
    // The queue still drains under ServeDegraded (healthy shards serve)…
    let report = service.pump(Timestamp::from_millis(200));
    assert_eq!(report.processed.len(), config.queue_capacity);
    assert_eq!(service.depth(), 0);
    // …results for queries on healthy shards remain served…
    let _ = service.results(q);
    // …and explicit recovery restores normal admission.
    service
        .engine_mut()
        .recover_degraded()
        .expect("resurrection succeeds");
    assert_eq!(
        service.offer_document(doc(500, 500, 0.5)),
        Admission::Accepted
    );
}

#[test]
fn block_until_recovered_does_not_block_the_shed_path() {
    let window = SlidingWindow::count_based(16);
    let mut service = StreamService::new(
        sharded(window, 2, FaultPolicy::BlockUntilRecovered),
        ServiceConfig::bounded(8),
    );
    let q = service
        .offer_register(query(0))
        .1
        .expect("immediate registration");
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let rq = reference.register(query(0));
    assert_eq!(q, rq);
    // Kill a worker. BlockUntilRecovered repairs it at the next *engine*
    // op — but offers never touch the engine, so admission (including
    // shedding) keeps answering instantly while the shard is down.
    assert!(service.engine_mut().inject_disconnect(0));
    // An offer whose deadline already passed is shed at offer time, with an
    // explicit ack and no engine call (nothing here can block on recovery).
    service.offer_document(doc(0, 100, 0.5)); // advances the logical clock
    let stale = IngestEvent::with_deadline(doc(1, 40, 0.5), Timestamp::from_millis(60));
    assert_eq!(
        service.offer(stale),
        Admission::Shed(ShedReason::DeadlineExpired)
    );
    service.check_accounting();
    // The pump is where BlockUntilRecovered pays the rebuild, and the
    // drained events still match the unbounded reference exactly.
    let report = service.pump(Timestamp::from_millis(100));
    assert_eq!(report.processed, vec![DocId(0)]);
    assert_eq!(report.shed, vec![(DocId(1), ShedReason::DeadlineExpired)]);
    reference.process_document(doc(0, 100, 0.5));
    assert_eq!(service.results(q), reference.current_results(rq));
    assert!(
        service
            .engine()
            .fault_stats()
            .is_some_and(|faults| faults.degraded_shards == 0),
        "BlockUntilRecovered left a degraded shard behind"
    );
}

#[test]
fn retry_refusals_are_never_counted_as_owned() {
    let window = SlidingWindow::count_based(16);
    let mut config = ServiceConfig::bounded(4);
    config.backpressure_watermark = 2;
    let mut service = StreamService::new(sharded(window, 2, FaultPolicy::ServeDegraded), config);
    assert!(service.engine_mut().inject_disconnect(1));
    service.offer_document(doc(0, 0, 0.5));
    service.pump(Timestamp::from_millis(1));
    service.offer_document(doc(1, 1, 0.5));
    service.offer_document(doc(2, 2, 0.5));
    let offered_before = service.overload_stats().offered;
    for i in 3..10u64 {
        assert!(service.offer_document(doc(i, i, 0.5)).is_retry());
    }
    let overload = service.overload_stats();
    assert_eq!(
        overload.offered, offered_before,
        "Retry refusals must not enter the offered ledger"
    );
    assert_eq!(overload.retry_hints, 7);
    service.check_accounting();
    // A retried registration is refused the same way, hint counted apart.
    let (admission, id) = service.offer_register(query(1));
    assert!(admission.is_retry());
    assert!(id.is_none());
    assert_eq!(service.overload_stats().register_retry_hints, 1);
}
