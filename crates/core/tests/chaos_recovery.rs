//! The fault-injection differential axis: a fault-tolerant
//! [`ShardedItaEngine`] must stay in **exact** lockstep with a fault-free
//! single-shard [`ItaEngine`] *through* injected worker panics, poison
//! documents and killed worker threads — across shard counts {1, 2, 4, 8}
//! and across checkpoint cadences (including a cadence of 1, which
//! checkpoints on every mutation, and small odd cadences that force long
//! log replays).
//!
//! Why warm recovery must be checkpoint + op-log and not "rebuild from the
//! window": ITA per-query state is **not** observably a pure function of
//! (window contents, registered queries). The thresholds θ and τ are
//! history-dependent — a query registered mid-stream carries thresholds
//! derived from documents that have since expired, which a fresh engine fed
//! only the surviving window cannot reproduce. The
//! `window_replay_rebuild_is_not_exact` test at the bottom documents this
//! with a concrete divergence, and is the experiment that shaped the
//! recovery design (see DESIGN.md §10): warm recovery restores a cloned
//! checkpoint and replays the logged mutations (byte-identical by
//! determinism); cold resurrection rebuilds from the registry + window
//! mirror, which reproduces the *reported top-k* exactly (those are a
//! function of window contents) but not necessarily the future work
//! counters — so cold-recovery tests compare results only.

use std::time::Duration;

use cts_core::testkit::{generate_script, run_script, Op, RunOptions, ScriptConfig, ScriptRng};
use cts_core::{
    ContinuousQuery, Engine, FaultConfig, FaultPolicy, ItaConfig, ItaEngine, RebalanceConfig,
    ShardedItaEngine,
};
use cts_index::{DocId, Document, QueryId, SlidingWindow, Timestamp};
use cts_text::{TermId, WeightedVector};

fn faulty(window: SlidingWindow, shards: usize, faults: FaultConfig) -> ShardedItaEngine {
    ShardedItaEngine::with_faults(
        window,
        ItaConfig::default(),
        shards,
        RebalanceConfig::default(),
        faults,
    )
}

/// Runs a chaos-storm script over (reference, sharded-with-faults) and
/// asserts lockstep held *and* that the script actually made the sharded
/// engine fault and recover — a chaos suite that never faults tests
/// nothing.
fn assert_chaos_lockstep(shards: usize, faults: FaultConfig, seed: u64) {
    let window = SlidingWindow::count_based(30);
    let config = ScriptConfig {
        events: 160,
        ..ScriptConfig::chaos_storm()
    };
    let script = generate_script(&config, seed);
    let injections = script
        .ops
        .iter()
        .filter(|op| matches!(op, Op::InjectFault { .. }))
        .count();
    assert!(injections > 0, "seed {seed:#x} armed no faults");
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = faulty(window, shards, faults);
    {
        let mut engines: Vec<Box<dyn Engine>> = vec![
            Box::new(&mut reference) as Box<dyn Engine>,
            Box::new(&mut sharded),
        ];
        if let Err(failure) = run_script(&mut engines, &script, &RunOptions::default()) {
            panic!(
                "chaos lockstep broke (shards {shards}, checkpoint {}, seed {seed:#x})\n  \
                 {failure}\n{script}",
                faults.checkpoint_interval
            );
        }
    }
    let stats = sharded.fault_stats().expect("sharded engines track faults");
    assert!(
        stats.faults > 0,
        "shards {shards}, seed {seed:#x}: chaos script caused no faults"
    );
    assert!(
        stats.recoveries > 0,
        "shards {shards}, seed {seed:#x}: faults happened but nothing recovered"
    );
    assert!(stats.recovery_micros > 0 || stats.recoveries == 0);
    assert_eq!(
        stats.degraded_shards, 0,
        "shards {shards}, seed {seed:#x}: run ended with degraded shards under BlockUntilRecovered"
    );
}

#[test]
fn chaos_storm_locksteps_across_shard_counts() {
    for shards in [1usize, 2, 4, 8] {
        assert_chaos_lockstep(shards, FaultConfig::default(), 0xC4A0_0000 + shards as u64);
    }
}

#[test]
fn chaos_storm_locksteps_across_checkpoint_cadences() {
    // Cadence 1 checkpoints every mutation (empty log replays); 5 and 7
    // force replays of several logged ops, including ops logged *during* a
    // batch.
    for interval in [1usize, 5, 7] {
        let faults = FaultConfig {
            checkpoint_interval: interval,
            ..FaultConfig::default()
        };
        assert_chaos_lockstep(4, faults, 0xC4A0_0100 + interval as u64);
    }
}

/// One explicit, readable fault-recovery scenario (the differential above
/// is the strong check; this one is the debuggable one): arm a fault, feed
/// a document, and verify the armed shard panicked, recovered warm, and
/// reports the same results as a never-faulted reference.
#[test]
fn injected_fault_is_applied_then_recovered_exactly() {
    let window = SlidingWindow::count_based(8);
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = faulty(window, 2, FaultConfig::default());
    let query = ContinuousQuery::from_weights([(TermId(1), 0.7), (TermId(2), 0.3)], 2);
    let qr = reference.register(query.clone());
    let qs = sharded.register(query);
    assert_eq!(qr, qs);
    for i in 0..20u64 {
        if i == 5 || i == 11 {
            assert!(sharded.inject_fault((i % 2) as usize));
        }
        let doc = Document::new(
            DocId(i),
            Timestamp::from_millis(i),
            WeightedVector::from_weights([(
                TermId(1 + (i % 2) as u32),
                0.1 + (i % 5) as f64 * 0.1,
            )]),
        );
        let expected = reference.process_document(doc.clone());
        let actual = sharded.process_document(doc);
        assert_eq!(expected, actual, "outcome diverged at event {i}");
        assert_eq!(reference.current_results(qr), sharded.current_results(qs));
    }
    let stats = sharded.fault_stats().expect("tracked");
    assert_eq!(stats.faults, 2);
    assert_eq!(stats.recoveries, 2);
    assert_eq!(stats.degraded_shards, 0);
}

/// Poison documents detonate once per shard (the event is applied, then the
/// worker panics), recover warm, and must not re-detonate when the same
/// document is replayed from the recovery log.
#[test]
fn poison_documents_detonate_once_and_recover() {
    let window = SlidingWindow::count_based(6);
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = faulty(window, 2, FaultConfig::default());
    let query = ContinuousQuery::from_weights([(TermId(3), 1.0)], 2);
    let qr = reference.register(query.clone());
    let qs = sharded.register(query);
    for i in 0..15u64 {
        let mut doc = Document::new(
            DocId(i),
            Timestamp::from_millis(i),
            WeightedVector::from_weights([(TermId(3), 0.1 + (i % 4) as f64 * 0.2)]),
        );
        if i == 4 || i == 9 {
            doc = cts_core::poison_document(doc);
        }
        let expected = reference.process_document(doc.clone());
        let actual = sharded.process_document(doc);
        assert_eq!(expected, actual, "outcome diverged at event {i}");
        assert_eq!(reference.current_results(qr), sharded.current_results(qs));
    }
    let stats = sharded.fault_stats().expect("tracked");
    // Each of the 2 poison docs detonates once in each of the 2 shards.
    assert_eq!(stats.faults, 4);
    assert_eq!(stats.recoveries, 4);
}

/// With checkpointing disabled every caught panic poisons the shard, so
/// recovery must go through the cold path: respawn + registry
/// re-registration + window-mirror replay. Cold resurrection guarantees
/// exact *results* (not future work counters), so this scenario compares
/// results only.
#[test]
fn cold_rebuild_restores_exact_results_under_block_policy() {
    let window = SlidingWindow::count_based(10);
    let faults = FaultConfig {
        checkpoint_interval: 0, // no warm recovery possible
        policy: FaultPolicy::BlockUntilRecovered,
    };
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = faulty(window, 3, faults);
    let mut rng = ScriptRng::new(0xC01D);
    let mut qids: Vec<QueryId> = Vec::new();
    for t in 0..9u32 {
        let q = ContinuousQuery::from_weights([(TermId(t % 5), 0.6), (TermId(5 + t % 3), 0.4)], 2);
        let qr = reference.register(q.clone());
        assert_eq!(qr, sharded.register(q));
        qids.push(qr);
    }
    for i in 0..60u64 {
        if rng.chance(0.15) {
            sharded.inject_fault(rng.below(3));
        }
        let doc = Document::new(
            DocId(i),
            Timestamp::from_millis(i),
            WeightedVector::from_weights([
                (TermId((i % 8) as u32), 0.1 + (i % 5) as f64 * 0.12),
                (TermId((2 + i % 3) as u32), 0.3),
            ]),
        );
        reference.process_document(doc.clone());
        sharded.process_document(doc);
        for &q in &qids {
            assert_eq!(
                reference.current_results(q),
                sharded.current_results(q),
                "results diverged on {q} at event {i}"
            );
        }
    }
    let stats = sharded.fault_stats().expect("tracked");
    assert!(stats.faults > 0, "no faults fired");
    assert!(stats.recoveries > 0, "no cold resurrection happened");
    assert_eq!(stats.degraded_shards, 0);
}

/// A killed worker thread (disconnect, not panic) is resurrected by the
/// coordinator under the blocking policy, with exact results afterwards.
#[test]
fn killed_worker_is_resurrected_with_exact_results() {
    let window = SlidingWindow::count_based(8);
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = faulty(window, 2, FaultConfig::default());
    let mut qids = Vec::new();
    for t in 0..6u32 {
        let q = ContinuousQuery::from_weights([(TermId(t), 1.0)], 2);
        let qr = reference.register(q.clone());
        assert_eq!(qr, sharded.register(q));
        qids.push(qr);
    }
    for i in 0..30u64 {
        if i == 10 {
            assert!(sharded.inject_disconnect(0));
        }
        if i == 20 {
            assert!(sharded.inject_disconnect(1));
        }
        let doc = Document::new(
            DocId(i),
            Timestamp::from_millis(i),
            WeightedVector::from_weights([(TermId((i % 6) as u32), 0.2 + (i % 4) as f64 * 0.15)]),
        );
        reference.process_document(doc.clone());
        sharded.process_document(doc);
        for &q in &qids {
            assert_eq!(
                reference.current_results(q),
                sharded.current_results(q),
                "results diverged on {q} at event {i}"
            );
        }
    }
    let stats = sharded.fault_stats().expect("tracked");
    assert!(stats.faults >= 2, "disconnects were not counted as faults");
    assert!(stats.recoveries >= 2, "killed workers were not resurrected");
    assert_eq!(stats.degraded_shards, 0);
    assert_eq!(sharded.num_valid_documents(), 8);
}

/// Under [`FaultPolicy::ServeDegraded`] the healthy shards keep serving:
/// queries on the dead shard go stale (empty results, `query_is_stale`),
/// events are counted in `events_during_degraded`, and an explicit
/// `recover_degraded` brings the shard back with exact results.
#[test]
fn serve_degraded_keeps_healthy_shards_live_until_explicit_recovery() {
    let window = SlidingWindow::count_based(8);
    let faults = FaultConfig {
        policy: FaultPolicy::ServeDegraded,
        checkpoint_interval: 0, // every caught panic degrades the shard
    };
    let mut reference = ItaEngine::new(window, ItaConfig::default());
    let mut sharded = faulty(window, 2, faults);
    let mut qids = Vec::new();
    for t in 0..8u32 {
        let q = ContinuousQuery::from_weights([(TermId(t % 4), 1.0)], 2);
        let qr = reference.register(q.clone());
        assert_eq!(qr, sharded.register(q));
        qids.push(qr);
    }
    let feed = |engine: &mut dyn Engine, i: u64| {
        engine.process_document(Document::new(
            DocId(i),
            Timestamp::from_millis(i),
            WeightedVector::from_weights([(TermId((i % 4) as u32), 0.2 + (i % 3) as f64 * 0.2)]),
        ));
    };
    for i in 0..10u64 {
        feed(&mut reference, i);
        feed(&mut sharded, i);
    }
    // Kill shard 0 and keep serving.
    assert!(sharded.inject_fault(0));
    for i in 10..20u64 {
        feed(&mut reference, i);
        feed(&mut sharded, i);
    }
    let stats = sharded.fault_stats().expect("tracked");
    assert_eq!(stats.degraded_shards, 1);
    // The faulting event itself is applied before the panic; after it the
    // coordinator served 9 more events degraded — plus the one that faulted.
    assert_eq!(stats.events_during_degraded, 10);
    let (stale, live): (Vec<QueryId>, Vec<QueryId>) =
        qids.iter().partition(|&&q| sharded.query_is_stale(q));
    assert!(!stale.is_empty(), "no query was hosted on the dead shard");
    assert!(!live.is_empty(), "every query was hosted on the dead shard");
    for &q in &stale {
        assert!(
            sharded.current_results(q).is_empty(),
            "stale {q} served data"
        );
    }
    for &q in &live {
        assert_eq!(reference.current_results(q), sharded.current_results(q));
    }
    // Explicit recovery rebuilds the dead shard from registry + mirror;
    // results come back exact for every query.
    let resurrected = sharded.recover_degraded().expect("recovery succeeds");
    assert_eq!(resurrected, 1);
    assert_eq!(sharded.fault_stats().expect("tracked").degraded_shards, 0);
    for &q in &qids {
        assert!(!sharded.query_is_stale(q));
        assert_eq!(reference.current_results(q), sharded.current_results(q));
    }
    // And the engine is fully live again.
    for i in 20..30u64 {
        feed(&mut reference, i);
        feed(&mut sharded, i);
        for &q in &qids {
            assert_eq!(reference.current_results(q), sharded.current_results(q));
        }
    }
}

/// Under [`FaultPolicy::FailFast`] an unrecoverable fault surfaces as a
/// typed error from the `try_*` paths, and the engine is usable again after
/// an explicit `recover_degraded`.
#[test]
fn fail_fast_surfaces_typed_errors_and_recovers_on_request() {
    let window = SlidingWindow::count_based(6);
    let faults = FaultConfig {
        policy: FaultPolicy::FailFast,
        checkpoint_interval: 0,
    };
    let mut sharded = faulty(window, 2, faults);
    let q = sharded.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
    let doc = |i: u64| {
        Document::new(
            DocId(i),
            Timestamp::from_millis(i),
            WeightedVector::from_weights([(TermId(1), 0.5)]),
        )
    };
    sharded.try_process(doc(0)).expect("healthy engine serves");
    assert!(sharded.inject_fault(0));
    // The faulting event returns an error naming the shard…
    let err = sharded.try_process(doc(1)).expect_err("fault must surface");
    assert!(
        matches!(err, cts_core::EngineError::ShardFault(ref fault) if fault.shard == 0),
        "unexpected error: {err}"
    );
    // …and so does every subsequent operation until recovery.
    let err = sharded.try_process(doc(2)).expect_err("still degraded");
    assert!(matches!(
        err,
        cts_core::EngineError::ShardUnavailable { shard: 0 }
    ));
    assert_eq!(sharded.recover_degraded().expect("recovers"), 1);
    sharded
        .try_process(doc(3))
        .expect("recovered engine serves");
    assert!(!sharded.current_results(q).is_empty());
}

/// The experiment that shaped the recovery design, kept as a living
/// document: rebuilding an ITA engine from (window contents, registered
/// queries) alone — either replay order — does **not** reproduce the
/// pre-fault engine observably. Registered-mid-stream queries carry
/// thresholds derived from expired history. If this test ever starts
/// failing (i.e. rebuilds stop diverging), the checkpoint + op-log
/// machinery can be replaced by plain window replay — see DESIGN.md §10.
#[test]
fn window_replay_rebuild_is_not_exact() {
    let mut diverged = 0usize;
    for seed in 0..20u64 {
        let mut rng = ScriptRng::new(seed);
        let window = SlidingWindow::count_based(10);
        let mut reference = ItaEngine::term_filtered(window, ItaConfig::default());
        let mut clock = Timestamp::ZERO;
        let random_doc = |rng: &mut ScriptRng, id: u64, clock: &mut Timestamp| {
            *clock = clock.advance(Duration::from_millis(rng.below(4) as u64));
            let terms = rng.range(1, 5);
            let palette = [0.1, 0.2, 0.2, 0.4, 0.7];
            let weights: Vec<(TermId, f64)> = (0..terms)
                .map(|_| (TermId(rng.below(16) as u32), palette[rng.below(5)]))
                .collect();
            Document::new(DocId(id), *clock, WeightedVector::from_weights(weights))
        };
        let random_query = |rng: &mut ScriptRng| {
            let terms = rng.range(1, 4);
            let weights: Vec<(TermId, f64)> = (0..terms)
                .map(|_| {
                    (
                        TermId(rng.below(16) as u32),
                        0.1 + rng.below(8) as f64 * 0.1,
                    )
                })
                .collect();
            ContinuousQuery::from_weights(weights, rng.range(1, 4))
        };
        let mut queries = Vec::new();
        for _ in 0..3 {
            let q = random_query(&mut rng);
            queries.push((reference.register(q.clone()), q));
        }
        for i in 0..40u64 {
            let d = random_doc(&mut rng, i, &mut clock);
            reference.process_document(d);
            if rng.chance(0.08) {
                let q = random_query(&mut rng);
                queries.push((reference.register(q.clone()), q));
            }
        }
        // The naive rebuild: register everything, replay the surviving
        // window (the order the cold-resurrection path uses — which is why
        // cold recovery only promises exact *results*, not exact state).
        let mut rebuilt = ItaEngine::term_filtered(window, ItaConfig::default());
        rebuilt.register_batch_with_ids(queries.clone());
        let window_docs: Vec<Document> = reference.store_documents().cloned().collect();
        for d in window_docs {
            rebuilt.process_document(d);
        }
        // Current results DO match (they are a function of window contents)…
        for (qid, _) in &queries {
            assert_eq!(
                reference.current_results(*qid),
                rebuilt.current_results(*qid),
                "seed {seed}: cold rebuild broke current results"
            );
        }
        // …but future behaviour may not: thresholds are history-dependent.
        for i in 40..80u64 {
            let d = random_doc(&mut rng, i, &mut clock);
            if reference.process_document(d.clone()) != rebuilt.process_document(d) {
                diverged += 1;
                break;
            }
        }
    }
    assert!(
        diverged > 0,
        "window-replay rebuilds reproduced the engine exactly on all seeds; \
         the checkpoint+log recovery design may be over-engineered now"
    );
}
