//! Differential suite pinning the determinism of the cold-shadow-term
//! lifecycle under warm recovery: registration bursts mint cold terms,
//! poison documents and injected faults kill shard workers mid-event, and
//! the supervised resurrection replays the checkpoint + op log — all while
//! staying in byte-lockstep with a fault-free single-shard reference.
//!
//! This is the suite CI runs with `--features invariant-checks`, turning on
//! the per-op structural audits in [`cts_core::testkit::run_script`]: after
//! **every** op, every engine's `check_invariants` walks the threshold
//! trees, term refcounts, cold-term filter agreement and (for the sharded
//! engine) the routing tables of every healthy shard. A replay that
//! reconstructs state that merely *answers* correctly but is structurally
//! wrong fails here, not three PRs later.

use cts_core::testkit::{assert_script_equivalence, ScriptConfig};
use cts_core::{Engine, ItaConfig, ItaEngine, ShardedItaEngine};
use cts_index::SlidingWindow;

fn pair(window: SlidingWindow, shards: usize) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ItaEngine::new(window, ItaConfig::default())),
        Box::new(ShardedItaEngine::new(window, ItaConfig::default(), shards)),
    ]
}

#[test]
fn cold_terms_survive_warm_replay_across_shard_counts() {
    // The chaos shape with the burst knobs turned up: bursts mint batches of
    // cold terms, and the elevated fault rate forces each shard through
    // several checkpoint + op-log replays per script. Lazy (reference) and
    // sharded engines must agree byte-for-byte through every recovery.
    let config = ScriptConfig {
        events: 220,
        burst_register_probability: 0.18,
        max_burst_registers: 10,
        ..ScriptConfig::chaos_storm()
    };
    for shards in [1usize, 2, 4, 8] {
        let window = SlidingWindow::count_based(24);
        assert_script_equivalence(
            &|| pair(window, shards),
            &config,
            0x5EED_7000 + shards as u64,
        );
    }
}

#[test]
fn eager_and_lazy_registration_agree_under_chaos() {
    // Same stream, but the candidate set pits eager backfill (no cold terms
    // ever) against the lazy default: the cold→warm promotion must be
    // invisible even when recovery replays it.
    let config = ScriptConfig {
        events: 180,
        ..ScriptConfig::chaos_storm()
    };
    let engines = |window: SlidingWindow, shards: usize| -> Vec<Box<dyn Engine>> {
        let eager = ItaConfig {
            lazy_registration: false,
            ..ItaConfig::default()
        };
        vec![
            Box::new(ItaEngine::new(window, ItaConfig::default())),
            Box::new(ItaEngine::new(window, eager)),
            Box::new(ShardedItaEngine::new(window, ItaConfig::default(), shards)),
        ]
    };
    for shards in [2usize, 4] {
        let window = SlidingWindow::count_based(20);
        assert_script_equivalence(
            &|| engines(window, shards),
            &config,
            0x5EED_8000 + shards as u64,
        );
    }
}

#[test]
fn cold_term_listing_is_sorted_however_terms_went_cold() {
    // The replay paths sweep `cold_terms()` in listing order, so that order
    // must be deterministic no matter the order in which registration marked
    // terms cold. The cold set is a BTreeSet precisely for this; pin it.
    use cts_index::InvertedIndex;
    use cts_text::TermId;

    let mut index = InvertedIndex::new();
    for term in [9u32, 2, 40, 17, 4, 31, 0, 25] {
        index.mark_cold(TermId(term));
    }
    let listed: Vec<u32> = index.cold_terms().iter().map(|t| t.0).collect();
    let mut sorted = listed.clone();
    sorted.sort_unstable();
    assert_eq!(listed, sorted, "cold_terms() must list in ascending order");
    assert_eq!(listed, vec![0, 2, 4, 9, 17, 25, 31, 40]);
}
