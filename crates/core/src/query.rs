//! Continuous-query representation.
//!
//! A text search query specifies a set of terms and a parameter `k`; the
//! query string is translated to `Q = {⟨t, w_{Q,t}⟩, …}` where the weights
//! follow the similarity measure in use (paper §II). A [`ContinuousQuery`]
//! stores exactly that translated form, so the engines never re-derive
//! weights.

use serde::{Deserialize, Serialize};

use cts_text::weighting::Scoring;
use cts_text::{query_document_score, Dictionary, TermId, TermVector, Weight, WeightedVector};

/// A registered continuous top-k text query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContinuousQuery {
    /// The weighted query terms `⟨t, w_{Q,t}⟩`, sorted by term id.
    weights: WeightedVector,
    /// Number of result documents to maintain.
    k: usize,
}

impl ContinuousQuery {
    /// Builds a query directly from `(term, weight)` pairs. Non-positive
    /// weights are dropped (consistent with [`WeightedVector`] semantics).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or no term has a positive weight.
    pub fn from_weights<I>(weights: I, k: usize) -> Self
    where
        I: IntoIterator<Item = (TermId, f64)>,
    {
        let weights = WeightedVector::from_weights(weights);
        Self::from_weighted_vector(weights, k)
    }

    /// Builds a query from an already-weighted vector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the vector is empty.
    pub fn from_weighted_vector(weights: WeightedVector, k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        assert!(
            !weights.is_empty(),
            "a query needs at least one weighted term"
        );
        Self { weights, k }
    }

    /// Builds a query from raw term frequencies (e.g. the output of
    /// [`cts_text::Analyzer::analyze_query`] or a workload generator), using
    /// the given similarity measure to derive `w_{Q,t}`.
    pub fn from_term_frequencies(
        terms: &TermVector,
        k: usize,
        scoring: Scoring,
        dict: &Dictionary,
    ) -> Self {
        Self::from_weighted_vector(scoring.query_weights(terms, dict), k)
    }

    /// The number of results to maintain.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The weighted query terms.
    pub fn weights(&self) -> &WeightedVector {
        &self.weights
    }

    /// Number of distinct query terms.
    pub fn num_terms(&self) -> usize {
        self.weights.len()
    }

    /// The weight `w_{Q,t}` of `term` (0 if the query does not contain it).
    pub fn weight(&self, term: TermId) -> Weight {
        self.weights.impact(term)
    }

    /// Iterates over the query terms and their weights.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, Weight)> + '_ {
        self.weights.iter().map(|e| (e.term, e.weight))
    }

    /// Scores a document composition list against this query:
    /// `S(d|Q) = Σ_{t∈Q} w_{Q,t} · w_{d,t}`.
    ///
    /// Queries are short (the paper uses 4–40 terms) while newswire
    /// composition lists run to hundreds of entries, so this uses the
    /// asymmetry-adaptive product: per-term binary probes of the composition
    /// list when the query is much shorter, the linear merge otherwise. Both
    /// paths are bit-identical (see `cts_text::score`).
    pub fn score(&self, composition: &WeightedVector) -> f64 {
        query_document_score(&self.weights, composition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_text::weighting::Scoring;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn from_weights_builds_sorted_query() {
        let q = ContinuousQuery::from_weights([(t(20), 0.894), (t(11), 0.447)], 2);
        assert_eq!(q.k(), 2);
        assert_eq!(q.num_terms(), 2);
        let ids: Vec<u32> = q.terms().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![11, 20]);
    }

    #[test]
    fn from_term_frequencies_applies_cosine_weighting() {
        // "white white tower": f_white = 2, f_tower = 1.
        let dict = Dictionary::new();
        let tv = TermVector::from_counts([(t(20), 2), (t(11), 1)]);
        let q = ContinuousQuery::from_term_frequencies(&tv, 2, Scoring::Cosine, &dict);
        let denom = 5.0f64.sqrt();
        assert!((q.weight(t(20)).get() - 2.0 / denom).abs() < 1e-12);
        assert!((q.weight(t(11)).get() - 1.0 / denom).abs() < 1e-12);
        assert_eq!(q.weight(t(99)), Weight::ZERO);
    }

    #[test]
    fn score_is_the_sparse_dot_product() {
        let q = ContinuousQuery::from_weights([(t(11), 0.447), (t(20), 0.894)], 2);
        let d = WeightedVector::from_weights([(t(11), 0.16), (t(20), 0.08), (t(3), 0.9)]);
        let expected = 0.447 * 0.16 + 0.894 * 0.08;
        assert!((q.score(&d) - expected).abs() < 1e-12);
    }

    #[test]
    fn score_of_disjoint_document_is_zero() {
        let q = ContinuousQuery::from_weights([(t(1), 1.0)], 1);
        let d = WeightedVector::from_weights([(t(2), 1.0)]);
        assert_eq!(q.score(&d), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        let _ = ContinuousQuery::from_weights([(t(1), 1.0)], 0);
    }

    #[test]
    #[should_panic(expected = "at least one weighted term")]
    fn empty_query_is_rejected() {
        let _ = ContinuousQuery::from_weights([(t(1), 0.0)], 3);
    }
}
