//! Cross-engine equivalence checking.
//!
//! Every engine in this crate must produce the same top-k for the same
//! stream — ITA and the naïve baseline are *exact* algorithms, not
//! approximations. The helpers here compare engines query by query (same
//! document ids in the same rank order, scores equal up to a floating-point
//! tolerance) and produce a readable [`Divergence`] report on mismatch.
//! They are used by the unit tests, by the `cross_validation` integration
//! test and by the figure-reproduction binaries' self-checks.

use std::fmt;

use cts_index::QueryId;

use crate::engine::Engine;
use crate::result::RankedDocument;

/// The default score tolerance: engines compute scores with the same dot
/// product over the same `f64` inputs, so they agree to round-off.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// A description of the first disagreement found between two engines.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The query whose results disagree.
    pub query: QueryId,
    /// The reference engine's name.
    pub reference_name: &'static str,
    /// The candidate engine's name.
    pub candidate_name: &'static str,
    /// The reference engine's top-k.
    pub reference: Vec<RankedDocument>,
    /// The candidate engine's top-k.
    pub candidate: Vec<RankedDocument>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "results diverge on {} ({} vs {}):",
            self.query, self.reference_name, self.candidate_name
        )?;
        let rows = self.reference.len().max(self.candidate.len());
        for i in 0..rows {
            let render = |r: Option<&RankedDocument>| match r {
                Some(r) => format!("{} @ {:.9}", r.doc, r.score),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "  #{i}: {:<24} | {}",
                render(self.reference.get(i)),
                render(self.candidate.get(i))
            )?;
        }
        Ok(())
    }
}

/// Whether two ranked lists agree: same documents, same order, scores within
/// `tolerance`.
pub fn results_match(a: &[RankedDocument], b: &[RankedDocument], tolerance: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.doc == y.doc && (x.score - y.score).abs() <= tolerance)
}

/// Compares `candidate` against `reference` on every query in `queries`,
/// returning the first divergence found.
pub fn compare_engines<R, C>(
    reference: &R,
    candidate: &C,
    queries: &[QueryId],
    tolerance: f64,
) -> Result<(), Box<Divergence>>
where
    R: Engine,
    C: Engine,
{
    for &query in queries {
        let expected = reference.current_results(query);
        let actual = candidate.current_results(query);
        if !results_match(&expected, &actual, tolerance) {
            return Err(Box::new(Divergence {
                query,
                reference_name: reference.name(),
                candidate_name: candidate.name(),
                reference: expected,
                candidate: actual,
            }));
        }
    }
    Ok(())
}

/// Panics with a formatted [`Divergence`] if the engines disagree on any
/// query. Test-suite convenience around [`compare_engines`].
pub fn assert_engines_agree<R, C>(reference: &R, candidate: &C, queries: &[QueryId])
where
    R: Engine,
    C: Engine,
{
    if let Err(divergence) = compare_engines(reference, candidate, queries, DEFAULT_TOLERANCE) {
        panic!("{divergence}");
    }
}

/// Feeds the same stream event to both engines and asserts they stay in
/// lockstep: identical [`crate::EventOutcome`] (same expiration count, same
/// number of touched queries, same number of changed results) **and**
/// identical current top-k on every query in `queries`. This is the
/// per-event probe of the sharded-vs-single-shard differential tests, where
/// result equality alone would let work-accounting bugs (e.g. a shard
/// double-counting touched queries) slip through.
pub fn assert_lockstep_event<R, C>(
    reference: &mut R,
    candidate: &mut C,
    doc: &cts_index::Document,
    queries: &[QueryId],
) where
    R: Engine,
    C: Engine,
{
    let expected = reference.process_document(doc.clone());
    let actual = candidate.process_document(doc.clone());
    assert_eq!(
        expected,
        actual,
        "event outcomes diverged on {} ({} vs {})",
        doc.id,
        reference.name(),
        candidate.name()
    );
    assert_engines_agree(reference, candidate, queries);
}

/// Captures the current top-k of every query in `queries`, in order. Use
/// this when two engines cannot be alive at the same time (e.g. the
/// paper-scale sweep harness runs them sequentially to halve peak memory):
/// snapshot the first engine, drop it, then compare the snapshot against the
/// second with [`compare_to_snapshot`].
pub fn snapshot_results<E: Engine>(engine: &E, queries: &[QueryId]) -> Vec<Vec<RankedDocument>> {
    queries.iter().map(|&q| engine.current_results(q)).collect()
}

/// Compares `candidate`'s current results against a snapshot previously
/// taken with [`snapshot_results`] over the same `queries`, returning the
/// first divergence found.
pub fn compare_to_snapshot<C: Engine>(
    reference_name: &'static str,
    snapshot: &[Vec<RankedDocument>],
    candidate: &C,
    queries: &[QueryId],
    tolerance: f64,
) -> Result<(), Box<Divergence>> {
    assert_eq!(
        snapshot.len(),
        queries.len(),
        "snapshot and query list must be parallel"
    );
    for (&query, expected) in queries.iter().zip(snapshot) {
        let actual = candidate.current_results(query);
        if !results_match(expected, &actual, tolerance) {
            return Err(Box::new(Divergence {
                query,
                reference_name,
                candidate_name: candidate.name(),
                reference: expected.clone(),
                candidate: actual,
            }));
        }
    }
    Ok(())
}

/// Every `stride`-th query of `queries` (always including the first), the
/// sampling used by paper-scale self-checks where comparing all 1,000
/// queries after every cell would dominate the run.
pub fn sample_queries(queries: &[QueryId], stride: usize) -> Vec<QueryId> {
    queries.iter().step_by(stride.max(1)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ita::{ItaConfig, ItaEngine};
    use crate::naive::{NaiveConfig, NaiveEngine};
    use crate::oracle::BruteForceOracle;
    use crate::query::ContinuousQuery;
    use cts_index::{DocId, Document, SlidingWindow, Timestamp};
    use cts_text::{TermId, WeightedVector};

    fn rd(id: u64, score: f64) -> RankedDocument {
        RankedDocument {
            doc: DocId(id),
            score,
        }
    }

    #[test]
    fn results_match_requires_same_docs_order_and_scores() {
        let a = vec![rd(1, 0.9), rd(2, 0.5)];
        assert!(results_match(&a, &a.clone(), 0.0));
        assert!(!results_match(&a, &[rd(2, 0.5), rd(1, 0.9)], 1e-9));
        assert!(!results_match(&a, &[rd(1, 0.9)], 1e-9));
        assert!(results_match(&a, &[rd(1, 0.9 + 1e-12), rd(2, 0.5)], 1e-9));
        assert!(!results_match(&a, &[rd(1, 0.8), rd(2, 0.5)], 1e-9));
    }

    #[test]
    fn agreeing_engines_pass() {
        let window = SlidingWindow::count_based(5);
        let mut ita = ItaEngine::new(window, ItaConfig::default());
        let mut naive = NaiveEngine::new(window, NaiveConfig::default());
        let mut oracle = BruteForceOracle::new(window);
        let query = ContinuousQuery::from_weights([(TermId(1), 0.8), (TermId(2), 0.6)], 2);
        let q = ita.register(query.clone());
        naive.register(query.clone());
        oracle.register(query);
        let queries = [q];
        for i in 0..20u64 {
            let d = Document::new(
                DocId(i),
                Timestamp::from_millis(i),
                WeightedVector::from_weights([(
                    TermId(1 + (i % 2) as u32),
                    0.1 + (i % 5) as f64 * 0.15,
                )]),
            );
            ita.process_document(d.clone());
            naive.process_document(d.clone());
            oracle.process_document(d);
            assert_engines_agree(&oracle, &ita, &queries);
            assert_engines_agree(&oracle, &naive, &queries);
        }
    }

    #[test]
    fn snapshot_comparison_matches_live_comparison() {
        let window = SlidingWindow::count_based(5);
        let mut a = BruteForceOracle::new(window);
        let mut b = BruteForceOracle::new(window);
        let q = a.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        b.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        for i in 0..8u64 {
            let d = Document::new(
                DocId(i),
                Timestamp::from_millis(i),
                WeightedVector::from_weights([(TermId(1), 0.1 * (i % 4 + 1) as f64)]),
            );
            a.process_document(d.clone());
            b.process_document(d);
        }
        let queries = [q];
        let snap = snapshot_results(&a, &queries);
        compare_to_snapshot("oracle-a", &snap, &b, &queries, DEFAULT_TOLERANCE)
            .expect("identical streams must match");
        // Perturb b and the snapshot comparison must notice.
        b.process_document(Document::new(
            DocId(99),
            Timestamp::from_millis(99),
            WeightedVector::from_weights([(TermId(1), 9.0)]),
        ));
        let err = compare_to_snapshot("oracle-a", &snap, &b, &queries, DEFAULT_TOLERANCE)
            .expect_err("divergence must be reported");
        assert_eq!(err.query, q);
        assert_eq!(err.reference_name, "oracle-a");
    }

    #[test]
    fn lockstep_helper_accepts_agreeing_engines() {
        let window = SlidingWindow::count_based(4);
        let mut ita = ItaEngine::new(window, ItaConfig::default());
        let mut naive = NaiveEngine::new(window, NaiveConfig::default());
        let q = ita.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        naive.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        for i in 0..12u64 {
            let d = Document::new(
                DocId(i),
                Timestamp::from_millis(i),
                WeightedVector::from_weights([(TermId(1), 0.1 + (i % 3) as f64 * 0.2)]),
            );
            // ITA and the naïve baseline touch different numbers of queries
            // per event, so lockstep them against equally-configured twins.
            let mut ita_twin = ita.clone();
            assert_lockstep_event(&mut ita, &mut ita_twin, &d, &[q]);
            naive.process_document(d);
            assert_engines_agree(&ita, &naive, &[q]);
        }
    }

    #[test]
    #[should_panic(expected = "event outcomes diverged")]
    fn lockstep_helper_rejects_diverging_outcomes() {
        let window = SlidingWindow::count_based(4);
        let mut a = ItaEngine::new(window, ItaConfig::default());
        let mut b = ItaEngine::new(window, ItaConfig::default());
        a.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        // b has no query registered: the arrival touches 0 of its queries.
        let d = Document::new(
            DocId(0),
            Timestamp::ZERO,
            WeightedVector::from_weights([(TermId(1), 0.5)]),
        );
        assert_lockstep_event(&mut a, &mut b, &d, &[]);
    }

    #[test]
    fn sample_queries_takes_every_stride_th() {
        let ids: Vec<QueryId> = (0..10).map(QueryId).collect();
        let sampled = sample_queries(&ids, 4);
        assert_eq!(sampled, vec![QueryId(0), QueryId(4), QueryId(8)]);
        assert_eq!(sample_queries(&ids, 0).len(), 10);
        assert!(sample_queries(&[], 3).is_empty());
    }

    #[test]
    fn divergence_is_detected_and_displayed() {
        let window = SlidingWindow::count_based(5);
        let mut a = BruteForceOracle::new(window);
        let mut b = BruteForceOracle::new(window);
        let q = a.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        b.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        let d1 = Document::new(
            DocId(0),
            Timestamp::ZERO,
            WeightedVector::from_weights([(TermId(1), 0.5)]),
        );
        let d2 = Document::new(
            DocId(1),
            Timestamp::ZERO,
            WeightedVector::from_weights([(TermId(1), 0.7)]),
        );
        a.process_document(d1);
        b.process_document(d2);
        let err = compare_engines(&a, &b, &[q], DEFAULT_TOLERANCE).unwrap_err();
        assert_eq!(err.query, q);
        let rendered = err.to_string();
        assert!(rendered.contains("diverge"), "{rendered}");
        assert!(rendered.contains("d0"), "{rendered}");
        assert!(rendered.contains("d1"), "{rendered}");
    }
}
