//! Event timing around any [`Engine`].
//!
//! The paper's headline metric is *processing time per stream event*
//! (arrival plus the expirations it triggers). [`Monitor`] wraps an engine,
//! times every [`Engine::process_document`] call with a monotonic clock and
//! accumulates [`ProcessingStats`]. It implements [`Engine`] itself, so a
//! monitored engine drops into any harness unchanged.

use std::time::{Duration, Instant};

use cts_index::{Document, QueryId, Timestamp};

use crate::engine::{Engine, EventOutcome};
use crate::query::ContinuousQuery;
use crate::result::RankedDocument;

/// Admission-control and load-shedding counters of a bounded-queue
/// streaming front-end ([`crate::StreamService`]).
///
/// The counters obey an exact accounting identity, checked by the service
/// after every admission and drain:
///
/// ```text
/// offered == accepted + coalesced + shed() + queue depth
/// ```
///
/// which collapses to the quiescent form `offered == accepted + coalesced +
/// shed()` once the queue has drained. `Retry` refusals are *not* part of
/// `offered` — a retried caller still owns its event — and are tracked
/// separately as hints.
///
/// Embedded in [`ProcessingStats`] so overload counters ride through every
/// aggregation path ([`ProcessingStats::absorb`],
/// [`ProcessingStats::delta_since`]) instead of silently zeroing when stats
/// are folded across shards or batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Events the ingest queue took ownership of (enqueued, or shed on the
    /// spot); excludes `Retry` refusals, which the caller retains.
    pub offered: u64,
    /// Owned events processed individually (drained below the coalescing
    /// watermark). Disjoint from `coalesced`.
    pub accepted: u64,
    /// Owned events processed as members of a coalesced
    /// [`Engine::process_batch`] burst. Disjoint from `accepted`.
    pub coalesced: u64,
    /// Owned events dropped because their ingest deadline passed
    /// (oldest-first).
    pub shed_deadline: u64,
    /// Owned events displaced from a full queue to admit fresher arrivals
    /// (oldest-first).
    pub shed_queue_full: u64,
    /// `Retry { after }` hints issued under backpressure (degraded shard
    /// with a deep queue). Not counted in `offered`.
    pub retry_hints: u64,
    /// Deepest the ingest queue has ever been (high-water mark; cumulative
    /// like the timing maxima).
    pub queue_high_water: u64,
    /// Registrations the admission path took ownership of (immediate or
    /// queued); excludes `Retry` refusals.
    pub register_offered: u64,
    /// Registrations performed immediately (no pressure).
    pub register_immediate: u64,
    /// Registrations queued and later flushed through one
    /// [`Engine::register_batch`] call (coalesced under pressure).
    pub register_coalesced: u64,
    /// `Retry { after }` hints issued because the pending-register queue was
    /// at capacity. Not counted in `register_offered`.
    pub register_retry_hints: u64,
    /// Deepest the pending-register queue has ever been.
    pub register_high_water: u64,
}

impl OverloadStats {
    /// Total events shed, across every reason.
    pub fn shed(&self) -> u64 {
        self.shed_deadline + self.shed_queue_full
    }

    /// Asserts the exact accounting identity at the given queue depth:
    /// `offered == accepted + coalesced + shed() + depth`. Panics with the
    /// full ledger on violation — a lost or double-counted event is a bug,
    /// never a rounding artifact, because every counter is an exact integer.
    pub fn check_accounting(&self, queue_depth: u64) {
        let settled = self.accepted + self.coalesced + self.shed();
        assert!(
            self.offered == settled + queue_depth,
            "overload accounting violated: offered {} != accepted {} + coalesced {} \
             + shed {} + depth {}",
            self.offered,
            self.accepted,
            self.coalesced,
            self.shed(),
            queue_depth
        );
    }

    /// Folds another accumulator into this one: counters add exactly,
    /// high-water marks take the maximum — the same discipline as
    /// [`ProcessingStats::absorb`].
    pub fn absorb(&mut self, other: &OverloadStats) {
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.coalesced += other.coalesced;
        self.shed_deadline += other.shed_deadline;
        self.shed_queue_full += other.shed_queue_full;
        self.retry_hints += other.retry_hints;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.register_offered += other.register_offered;
        self.register_immediate += other.register_immediate;
        self.register_coalesced += other.register_coalesced;
        self.register_retry_hints += other.register_retry_hints;
        self.register_high_water = self.register_high_water.max(other.register_high_water);
    }

    /// The change in counters since `earlier` (saturating). High-water marks
    /// stay cumulative, the same wart [`ProcessingStats::delta_since`]
    /// documents for its timing maxima.
    pub fn delta_since(&self, earlier: &OverloadStats) -> OverloadStats {
        OverloadStats {
            offered: self.offered.saturating_sub(earlier.offered),
            accepted: self.accepted.saturating_sub(earlier.accepted),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            shed_deadline: self.shed_deadline.saturating_sub(earlier.shed_deadline),
            shed_queue_full: self.shed_queue_full.saturating_sub(earlier.shed_queue_full),
            retry_hints: self.retry_hints.saturating_sub(earlier.retry_hints),
            queue_high_water: self.queue_high_water,
            register_offered: self
                .register_offered
                .saturating_sub(earlier.register_offered),
            register_immediate: self
                .register_immediate
                .saturating_sub(earlier.register_immediate),
            register_coalesced: self
                .register_coalesced
                .saturating_sub(earlier.register_coalesced),
            register_retry_hints: self
                .register_retry_hints
                .saturating_sub(earlier.register_retry_hints),
            register_high_water: self.register_high_water,
        }
    }
}

/// Accumulated cost of the stream events processed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessingStats {
    /// Number of stream events (arrivals) processed.
    pub events: u64,
    /// Number of expirations those events triggered.
    pub expirations: u64,
    /// Sum of `queries_touched_by_arrival` over all events.
    pub queries_touched_by_arrival: u64,
    /// Sum of `queries_touched_by_expiration` over all events.
    pub queries_touched_by_expiration: u64,
    /// Sum of `results_changed` over all events.
    pub results_changed: u64,
    /// Total wall-clock time spent inside `process_document` /
    /// `process_batch`.
    pub total_time: Duration,
    /// The most expensive single event. Individually-timed events always
    /// contribute; batches contribute when the engine times its batched
    /// events internally and surfaces the in-batch maximum (the sharded
    /// engine's workers do — see [`crate::Engine::batched_max_event_time`]
    /// and the `max_event` parameter of [`ProcessingStats::record_batch`]).
    /// Whole-batch wall clock is tracked separately as
    /// [`ProcessingStats::max_batch_time`].
    pub max_event_time: Duration,
    /// Number of [`crate::Engine::process_batch`] calls recorded (singleton
    /// batches are recorded through the per-event path and do not count).
    pub batches: u64,
    /// Largest batch recorded, in events.
    pub largest_batch: u64,
    /// The most expensive single batch (whole-batch wall clock).
    pub max_batch_time: Duration,
    /// Admission-control counters when the events flowed through a bounded
    /// ingest queue ([`crate::StreamService`]); all-zero for unbounded
    /// monitors. Carried through [`ProcessingStats::absorb`] and
    /// [`ProcessingStats::delta_since`] like every other counter.
    pub overload: OverloadStats,
}

impl ProcessingStats {
    /// Folds one event's outcome and duration into the totals.
    pub fn record(&mut self, outcome: &EventOutcome, elapsed: Duration) {
        self.events += 1;
        self.expirations += outcome.expired as u64;
        self.queries_touched_by_arrival += outcome.queries_touched_by_arrival as u64;
        self.queries_touched_by_expiration += outcome.queries_touched_by_expiration as u64;
        self.results_changed += outcome.results_changed as u64;
        self.total_time += elapsed;
        if elapsed > self.max_event_time {
            self.max_event_time = elapsed;
        }
    }

    /// Folds one batch's outcomes and its whole-batch duration into the
    /// totals. Counters sum exactly as if each event had been recorded
    /// individually; `elapsed` goes to `total_time` (keeping
    /// [`ProcessingStats::mean_event_time`] exact) and to the batch-level
    /// maximum. `max_event` is the most expensive single event *within* the
    /// batch when the engine timed its batched events internally (see
    /// [`crate::Engine::batched_max_event_time`]); it folds into
    /// `max_event_time` via max, so pass [`Duration::ZERO`] when the split is
    /// unknown and the field is simply left alone.
    pub fn record_batch(
        &mut self,
        outcomes: &[EventOutcome],
        elapsed: Duration,
        max_event: Duration,
    ) {
        self.events += outcomes.len() as u64;
        for outcome in outcomes {
            self.expirations += outcome.expired as u64;
            self.queries_touched_by_arrival += outcome.queries_touched_by_arrival as u64;
            self.queries_touched_by_expiration += outcome.queries_touched_by_expiration as u64;
            self.results_changed += outcome.results_changed as u64;
        }
        self.total_time += elapsed;
        if max_event > self.max_event_time {
            self.max_event_time = max_event;
        }
        self.batches += 1;
        self.largest_batch = self.largest_batch.max(outcomes.len() as u64);
        if elapsed > self.max_batch_time {
            self.max_batch_time = elapsed;
        }
    }

    /// Mean processing time per event (zero when no events were processed).
    ///
    /// Computed in integer nanoseconds: `Duration / u32` would need the event
    /// count clamped to `u32::MAX`, silently inflating the mean once more
    /// than 2^32 events have been recorded — exactly the regime a
    /// long-running monitor is for.
    pub fn mean_event_time(&self) -> Duration {
        if self.events == 0 {
            return Duration::ZERO;
        }
        let mean_nanos = self.total_time.as_nanos() / u128::from(self.events);
        // A per-event mean cannot overflow u64 nanoseconds (~584 years)
        // unless total_time already did; saturate rather than wrap.
        Duration::from_nanos(u64::try_from(mean_nanos).unwrap_or(u64::MAX))
    }

    /// Events processed per second of processing time (the paper's
    /// throughput view of the same metric).
    pub fn events_per_second(&self) -> f64 {
        let secs = self.total_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Total (query, update) pairs examined, the paper's work measure.
    pub fn total_queries_touched(&self) -> u64 {
        self.queries_touched_by_arrival + self.queries_touched_by_expiration
    }

    /// Folds another accumulator into this one — the combinator behind every
    /// multi-source aggregation (the sharded engine's per-worker stats, batch
    /// deltas in [`Monitor::run`]).
    ///
    /// The merge is exact: counters and `total_time` (integer nanoseconds)
    /// add, `max_event_time` takes the maximum, and derived quantities like
    /// [`ProcessingStats::mean_event_time`] are recomputed from the merged
    /// totals — never averaged across sources, so there is no mean-of-means
    /// drift when the sources saw different event counts.
    pub fn absorb(&mut self, other: &ProcessingStats) {
        self.events += other.events;
        self.expirations += other.expirations;
        self.queries_touched_by_arrival += other.queries_touched_by_arrival;
        self.queries_touched_by_expiration += other.queries_touched_by_expiration;
        self.results_changed += other.results_changed;
        self.total_time += other.total_time;
        self.max_event_time = self.max_event_time.max(other.max_event_time);
        self.batches += other.batches;
        self.largest_batch = self.largest_batch.max(other.largest_batch);
        self.max_batch_time = self.max_batch_time.max(other.max_batch_time);
        self.overload.absorb(&other.overload);
    }

    /// The change in counters since `earlier` (saturating; `earlier` should
    /// be a previous snapshot of the same monitor).
    ///
    /// Note the wart this pattern carries: `max_event_time` is the
    /// *cumulative* maximum, not the interval's. Batch aggregation should
    /// prefer recording into a fresh accumulator and
    /// [`ProcessingStats::absorb`]ing it (what [`Monitor::run`] does), which
    /// keeps every field exact.
    pub fn delta_since(&self, earlier: &ProcessingStats) -> ProcessingStats {
        ProcessingStats {
            events: self.events.saturating_sub(earlier.events),
            expirations: self.expirations.saturating_sub(earlier.expirations),
            queries_touched_by_arrival: self
                .queries_touched_by_arrival
                .saturating_sub(earlier.queries_touched_by_arrival),
            queries_touched_by_expiration: self
                .queries_touched_by_expiration
                .saturating_sub(earlier.queries_touched_by_expiration),
            results_changed: self.results_changed.saturating_sub(earlier.results_changed),
            total_time: self.total_time.saturating_sub(earlier.total_time),
            max_event_time: self.max_event_time,
            batches: self.batches.saturating_sub(earlier.batches),
            largest_batch: self.largest_batch,
            max_batch_time: self.max_batch_time,
            overload: self.overload.delta_since(&earlier.overload),
        }
    }
}

/// An [`Engine`] wrapper that times every stream event.
#[derive(Debug, Clone)]
pub struct Monitor<E> {
    engine: E,
    stats: ProcessingStats,
}

impl<E: Engine> Monitor<E> {
    /// Wraps `engine`.
    pub fn new(engine: E) -> Self {
        Self {
            engine,
            stats: ProcessingStats::default(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the wrapped engine. Events processed directly on
    /// the inner engine bypass timing.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Consumes the monitor, returning the engine.
    pub fn into_inner(self) -> E {
        self.engine
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &ProcessingStats {
        &self.stats
    }

    /// Processes a whole batch of documents, returning the statistics for
    /// exactly this batch. The batch is recorded into a fresh accumulator and
    /// [`ProcessingStats::absorb`]ed into the cumulative stats, so cumulative
    /// and per-batch views are built from the same exact integer totals.
    pub fn run<I>(&mut self, docs: I) -> ProcessingStats
    where
        I: IntoIterator<Item = Document>,
    {
        let mut batch = ProcessingStats::default();
        for doc in docs {
            let start = Instant::now();
            let outcome = self.engine.process_document(doc);
            batch.record(&outcome, start.elapsed());
        }
        self.stats.absorb(&batch);
        batch
    }

    /// Drives the whole document iterator through the engine's batched path,
    /// `batch` events per [`Engine::process_batch`] call (the final batch may
    /// be shorter), returning the statistics for exactly this run. Outcomes
    /// are byte-identical to [`Monitor::run`] — batching only amortises
    /// dispatch — but timing is recorded per batch, not per event. A `batch`
    /// of 1 (or 0, treated as 1) degenerates to [`Monitor::run`] exactly,
    /// per-event maxima included.
    pub fn run_batched<I>(&mut self, docs: I, batch: usize) -> ProcessingStats
    where
        I: IntoIterator<Item = Document>,
    {
        let batch = batch.max(1);
        if batch == 1 {
            return self.run(docs);
        }
        let mut stats = ProcessingStats::default();
        let mut docs = docs.into_iter().peekable();
        let mut buffer = Vec::with_capacity(batch);
        while docs.peek().is_some() {
            buffer.extend(docs.by_ref().take(batch));
            if buffer.len() == 1 {
                // A trailing partial batch of one is a single event, and is
                // recorded as one (per-event maxima included, `batches` not
                // bumped) — the same singleton routing Engine::process_batch
                // on Monitor performs.
                let doc = buffer.pop().expect("len checked");
                let start = Instant::now();
                let outcome = self.engine.process_document(doc);
                stats.record(&outcome, start.elapsed());
                continue;
            }
            let (outcomes, elapsed, in_batch_max) = self.timed_batch(std::mem::take(&mut buffer));
            stats.record_batch(&outcomes, elapsed, in_batch_max);
            buffer = Vec::with_capacity(batch);
        }
        self.stats.absorb(&stats);
        stats
    }

    /// Resets the accumulated statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = ProcessingStats::default();
    }

    /// Times one [`Engine::process_batch`] call, returning the outcomes, the
    /// whole-batch wall clock, and the most expensive single event *within*
    /// this batch when the engine surfaces one.
    ///
    /// The engine only reports a *cumulative* per-event maximum
    /// ([`Engine::batched_max_event_time`]), so the batch's own maximum is
    /// recovered by snapshotting around the call: if the cumulative maximum
    /// grew, an event in this batch set it and the new value is exactly this
    /// batch's maximum; if it did not, this batch's maximum is unknown but
    /// cannot exceed what `max_event_time` already holds, so reporting ZERO
    /// keeps the fold exact.
    fn timed_batch(&mut self, docs: Vec<Document>) -> (Vec<EventOutcome>, Duration, Duration) {
        let before = self
            .engine
            .batched_max_event_time()
            .unwrap_or(Duration::ZERO);
        let start = Instant::now();
        let outcomes = self.engine.process_batch(docs);
        let elapsed = start.elapsed();
        let after = self
            .engine
            .batched_max_event_time()
            .unwrap_or(Duration::ZERO);
        let in_batch_max = if after > before {
            after
        } else {
            Duration::ZERO
        };
        (outcomes, elapsed, in_batch_max)
    }
}

impl<E: Engine> Engine for Monitor<E> {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        self.engine.register(query)
    }

    fn register_batch(&mut self, queries: Vec<ContinuousQuery>) -> Vec<QueryId> {
        self.engine.register_batch(queries)
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        self.engine.deregister(query)
    }

    fn process_document(&mut self, doc: Document) -> EventOutcome {
        let start = Instant::now();
        let outcome = self.engine.process_document(doc);
        self.stats.record(&outcome, start.elapsed());
        outcome
    }

    fn process_batch(&mut self, docs: Vec<Document>) -> Vec<EventOutcome> {
        // An empty batch is a no-op and must not touch the stats (a timed
        // zero-event batch would inflate `batches` and drift the mean); a
        // singleton batch is recorded through the per-event path, so the
        // batch==1 protocol produces stats indistinguishable from singles
        // (per-event maxima included).
        if docs.is_empty() {
            return Vec::new();
        }
        if docs.len() == 1 {
            let doc = docs.into_iter().next().expect("len checked");
            return vec![self.process_document(doc)];
        }
        let (outcomes, elapsed, in_batch_max) = self.timed_batch(docs);
        self.stats.record_batch(&outcomes, elapsed, in_batch_max);
        outcomes
    }

    fn current_results(&self, query: QueryId) -> Vec<RankedDocument> {
        self.engine.current_results(query)
    }

    fn num_queries(&self) -> usize {
        self.engine.num_queries()
    }

    fn num_valid_documents(&self) -> usize {
        self.engine.num_valid_documents()
    }

    fn clock(&self) -> Timestamp {
        self.engine.clock()
    }

    fn name(&self) -> &'static str {
        self.engine.name()
    }

    fn batched_max_event_time(&self) -> Option<Duration> {
        self.engine.batched_max_event_time()
    }

    fn inject_fault(&mut self, shard: usize) -> bool {
        self.engine.inject_fault(shard)
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.engine.fault_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ita::{ItaConfig, ItaEngine};
    use cts_index::{DocId, SlidingWindow};
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, weight: f64) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights([(TermId(1), weight)]),
        )
    }

    fn monitored() -> Monitor<ItaEngine> {
        Monitor::new(ItaEngine::new(
            SlidingWindow::count_based(2),
            ItaConfig::default(),
        ))
    }

    #[test]
    fn events_are_counted_and_timed() {
        let mut m = monitored();
        let q = m.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        for i in 0..5 {
            m.process_document(doc(i, 0.1 * (i + 1) as f64));
        }
        let stats = m.stats();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.expirations, 3);
        assert!(stats.total_time >= stats.max_event_time);
        assert!(stats.mean_event_time() <= stats.max_event_time);
        assert!(stats.events_per_second() > 0.0);
        assert_eq!(m.current_results(q).len(), 1);
        assert_eq!(m.name(), "ita");
    }

    #[test]
    fn reset_clears_the_counters() {
        let mut m = monitored();
        m.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        m.process_document(doc(0, 0.5));
        assert_eq!(m.stats().events, 1);
        m.reset_stats();
        assert_eq!(m.stats(), &ProcessingStats::default());
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let mut m = monitored();
        m.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        m.process_document(doc(0, 0.5));
        let snapshot = *m.stats();
        m.process_document(doc(1, 0.6));
        m.process_document(doc(2, 0.7));
        let delta = m.stats().delta_since(&snapshot);
        assert_eq!(delta.events, 2);
        assert_eq!(delta.expirations, 1);
    }

    #[test]
    fn mean_event_time_is_exact_past_u32_max_events() {
        // 3·2^32 events of exactly 1s each: the old `Duration / u32` path
        // clamped the divisor to u32::MAX and reported ~3s.
        let events = 3 * (1u64 << 32);
        let stats = ProcessingStats {
            events,
            total_time: Duration::from_secs(events),
            ..ProcessingStats::default()
        };
        assert_eq!(stats.mean_event_time(), Duration::from_secs(1));
        // Sub-nanosecond means truncate to zero rather than misreport.
        let tiny = ProcessingStats {
            events: u64::MAX,
            total_time: Duration::from_nanos(7),
            ..ProcessingStats::default()
        };
        assert_eq!(tiny.mean_event_time(), Duration::ZERO);
    }

    #[test]
    fn absorb_is_an_exact_integer_merge() {
        let mut a = ProcessingStats {
            events: 3,
            expirations: 2,
            queries_touched_by_arrival: 7,
            queries_touched_by_expiration: 1,
            results_changed: 4,
            total_time: Duration::from_nanos(10),
            max_event_time: Duration::from_nanos(6),
            ..ProcessingStats::default()
        };
        let b = ProcessingStats {
            events: 5,
            expirations: 1,
            queries_touched_by_arrival: 2,
            queries_touched_by_expiration: 9,
            results_changed: 1,
            total_time: Duration::from_nanos(11),
            max_event_time: Duration::from_nanos(4),
            ..ProcessingStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.events, 8);
        assert_eq!(a.expirations, 3);
        assert_eq!(a.queries_touched_by_arrival, 9);
        assert_eq!(a.queries_touched_by_expiration, 10);
        assert_eq!(a.results_changed, 5);
        assert_eq!(a.total_time, Duration::from_nanos(21));
        assert_eq!(a.max_event_time, Duration::from_nanos(6));
        // The merged mean is 21 ns / 8 events = 2 ns, computed from the exact
        // totals. A mean-of-means would have reported
        // (10/3 + 11/5) / 2 ≈ 2.77 ns — the drift absorb exists to avoid.
        assert_eq!(a.mean_event_time(), Duration::from_nanos(2));
    }

    #[test]
    fn absorb_matches_recording_the_same_events_in_one_accumulator() {
        let outcome = |touched: usize| EventOutcome {
            queries_touched_by_arrival: touched,
            expired: 1,
            ..EventOutcome::default()
        };
        let mut merged = ProcessingStats::default();
        let mut left = ProcessingStats::default();
        let mut right = ProcessingStats::default();
        for i in 0..6u64 {
            let (elapsed, o) = (Duration::from_nanos(100 + i), outcome(i as usize));
            merged.record(&o, elapsed);
            if i % 2 == 0 {
                left.record(&o, elapsed);
            } else {
                right.record(&o, elapsed);
            }
        }
        let mut absorbed = ProcessingStats::default();
        absorbed.absorb(&left);
        absorbed.absorb(&right);
        assert_eq!(absorbed, merged);
        // Absorbing empty stats is the identity.
        absorbed.absorb(&ProcessingStats::default());
        assert_eq!(absorbed, merged);
    }

    #[test]
    fn run_returns_batch_stats_and_absorbs_them_into_the_cumulative_view() {
        let mut m = monitored();
        m.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        let first = m.run((0..3u64).map(|i| doc(i, 0.5)));
        assert_eq!(first.events, 3);
        assert_eq!(m.stats().events, 3);
        let second = m.run((3..8u64).map(|i| doc(i, 0.5)));
        assert_eq!(second.events, 5);
        assert_eq!(second.expirations, 5);
        assert_eq!(m.stats().events, 8);
        assert_eq!(m.stats().total_time, first.total_time + second.total_time);
    }

    #[test]
    fn record_batch_sums_counters_like_singles_and_tracks_batch_shape() {
        let outcome = |touched: usize| EventOutcome {
            queries_touched_by_arrival: touched,
            expired: 1,
            results_changed: touched / 2,
            ..EventOutcome::default()
        };
        let outcomes: Vec<EventOutcome> = (0..5).map(outcome).collect();
        let mut singles = ProcessingStats::default();
        for o in &outcomes {
            singles.record(o, Duration::from_nanos(20));
        }
        let mut batched = ProcessingStats::default();
        batched.record_batch(
            &outcomes,
            Duration::from_nanos(100),
            Duration::from_nanos(40),
        );
        // Same counters, same total time; only the per-event/batch timing
        // split differs.
        assert_eq!(batched.events, singles.events);
        assert_eq!(batched.expirations, singles.expirations);
        assert_eq!(
            batched.queries_touched_by_arrival,
            singles.queries_touched_by_arrival
        );
        assert_eq!(batched.results_changed, singles.results_changed);
        assert_eq!(batched.total_time, singles.total_time);
        assert_eq!(batched.mean_event_time(), singles.mean_event_time());
        assert_eq!(batched.batches, 1);
        assert_eq!(batched.largest_batch, 5);
        assert_eq!(batched.max_batch_time, Duration::from_nanos(100));
        // The engine-reported in-batch maximum lands in max_event_time …
        assert_eq!(batched.max_event_time, Duration::from_nanos(40));
        // … and a ZERO (split unknown) leaves it untouched.
        batched.record_batch(&outcomes, Duration::from_nanos(50), Duration::ZERO);
        assert_eq!(batched.max_event_time, Duration::from_nanos(40));
        // Batch bookkeeping merges through absorb: totals add, maxima max.
        let mut merged = batched;
        let mut more = ProcessingStats::default();
        more.record_batch(
            &outcomes[..2],
            Duration::from_nanos(300),
            Duration::from_nanos(90),
        );
        merged.absorb(&more);
        assert_eq!(merged.batches, 3);
        assert_eq!(merged.largest_batch, 5);
        assert_eq!(merged.max_batch_time, Duration::from_nanos(300));
        assert_eq!(merged.max_event_time, Duration::from_nanos(90));
    }

    #[test]
    fn monitor_process_batch_times_batches_and_degenerates_to_singles_at_one() {
        let mut m = monitored();
        m.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        // A singleton batch goes through the per-event path.
        let outcomes = m.process_batch(vec![doc(0, 0.5)]);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(m.stats().batches, 0);
        assert!(m.stats().max_event_time > Duration::ZERO);
        // A real batch is timed as a whole.
        let outcomes = m.process_batch((1..5u64).map(|i| doc(i, 0.5)).collect());
        assert_eq!(outcomes.len(), 4);
        assert_eq!(m.stats().events, 5);
        assert_eq!(m.stats().batches, 1);
        assert_eq!(m.stats().largest_batch, 4);
        assert!(m.stats().max_batch_time > Duration::ZERO);
        // Empty batches are a full no-op: no event, no batch, no time.
        let before = *m.stats();
        assert!(m.process_batch(Vec::new()).is_empty());
        assert_eq!(m.stats(), &before);
    }

    #[test]
    fn run_batched_routes_a_trailing_singleton_through_the_per_event_path() {
        let mut m = monitored();
        m.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        // 7 events at batch 3: two real batches (3 + 3) and one trailing
        // single event — recorded as an event, not a phantom batch, so its
        // per-event maximum is kept.
        let stats = m.run_batched((0..7u64).map(|i| doc(i, 0.5)), 3);
        assert_eq!(stats.events, 7);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.largest_batch, 3);
        assert!(stats.max_event_time > Duration::ZERO);
    }

    #[test]
    fn run_batched_matches_run_event_for_event() {
        let mut batched = monitored();
        let mut singles = monitored();
        let qa = batched.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        let qb = singles.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        let docs = |lo: u64, hi: u64| (lo..hi).map(|i| doc(i, 0.1 + (i % 4) as f64 * 0.2));
        // Batch size 3 over 8 events: batches of 3, 3 and 2.
        let stats = batched.run_batched(docs(0, 8), 3);
        singles.run(docs(0, 8));
        assert_eq!(stats.events, 8);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.largest_batch, 3);
        assert_eq!(batched.current_results(qa), singles.current_results(qb));
        assert_eq!(batched.stats().expirations, singles.stats().expirations);
        // batch <= 1 degenerates to the per-event path exactly.
        let stats = batched.run_batched(docs(8, 10), 1);
        assert_eq!(stats.batches, 0);
        assert!(stats.max_event_time > Duration::ZERO);
    }

    fn sample_overload() -> OverloadStats {
        OverloadStats {
            offered: 10,
            accepted: 4,
            coalesced: 3,
            shed_deadline: 2,
            shed_queue_full: 1,
            retry_hints: 5,
            queue_high_water: 7,
            register_offered: 6,
            register_immediate: 2,
            register_coalesced: 4,
            register_retry_hints: 1,
            register_high_water: 3,
        }
    }

    #[test]
    fn overload_counters_survive_every_folding_path() {
        let overload = sample_overload();
        overload.check_accounting(0); // 10 == 4 + 3 + (2 + 1) + 0
        assert_eq!(overload.shed(), 3);

        // Path 1: absorb — counters add exactly, high waters take the max.
        let mut a = ProcessingStats {
            overload,
            ..ProcessingStats::default()
        };
        let mut other = overload;
        other.queue_high_water = 2;
        other.register_high_water = 9;
        let b = ProcessingStats {
            overload: other,
            ..ProcessingStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.overload.offered, 20);
        assert_eq!(a.overload.accepted, 8);
        assert_eq!(a.overload.coalesced, 6);
        assert_eq!(a.overload.shed(), 6);
        assert_eq!(a.overload.retry_hints, 10);
        assert_eq!(a.overload.queue_high_water, 7);
        assert_eq!(a.overload.register_offered, 12);
        assert_eq!(a.overload.register_high_water, 9);
        a.overload.check_accounting(0);

        // Path 2: event recording (record / record_batch) must leave the
        // admission-side counters untouched — recording a batch into an
        // accumulator that already carries overload counters may not zero
        // them.
        let snapshot = a.overload;
        a.record(&EventOutcome::default(), Duration::from_nanos(3));
        let outcomes = [EventOutcome::default(), EventOutcome::default()];
        a.record_batch(&outcomes, Duration::from_nanos(9), Duration::ZERO);
        assert_eq!(a.overload, snapshot);

        // Path 3: delta_since — counts subtract (saturating), high waters
        // stay cumulative like the timing maxima.
        let delta = a.delta_since(&b);
        assert_eq!(delta.overload.offered, 10);
        assert_eq!(delta.overload.accepted, 4);
        assert_eq!(delta.overload.coalesced, 3);
        assert_eq!(delta.overload.shed_deadline, 2);
        assert_eq!(delta.overload.register_coalesced, 4);
        assert_eq!(delta.overload.queue_high_water, 7);
        assert_eq!(delta.overload.register_high_water, 9);
    }

    #[test]
    #[should_panic(expected = "overload accounting violated")]
    fn accounting_check_catches_a_lost_event() {
        let mut overload = sample_overload();
        overload.accepted -= 1; // one event vanished from the ledger
        overload.check_accounting(0);
    }

    #[test]
    fn empty_stats_are_well_behaved() {
        let stats = ProcessingStats::default();
        assert_eq!(stats.mean_event_time(), Duration::ZERO);
        assert_eq!(stats.events_per_second(), 0.0);
        assert_eq!(stats.total_queries_touched(), 0);
    }

    #[test]
    fn monitor_passes_engine_calls_through() {
        let mut m = monitored();
        let q = m.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        assert_eq!(m.num_queries(), 1);
        m.process_document(doc(0, 0.5));
        assert_eq!(m.num_valid_documents(), 1);
        assert_eq!(m.clock(), Timestamp::ZERO.advance(Duration::ZERO));
        assert!(m.deregister(q));
        assert_eq!(m.engine().num_queries(), 0);
        let inner = m.into_inner();
        assert_eq!(inner.num_valid_documents(), 1);
    }
}
