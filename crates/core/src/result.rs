//! Per-query result sets.
//!
//! For each continuous query the ITA engine maintains a result set `R`
//! containing the current top-k documents **and** every other valid document
//! that lies above at least one of the query's local thresholds (the paper's
//! "unverified" documents). Keeping the unverified documents is what makes
//! the expiration-time *refill* incremental: the threshold search can resume
//! downwards instead of restarting from the top of the inverted lists.
//!
//! [`ResultSet`] is an ordered multiset of `(score, document)` pairs with
//! by-document lookup, supporting the operations the engines need:
//! score-ordered traversal, `S_k` (the k-th best score), membership tests and
//! point updates — all in `O(log |R|)`.

// cts-lint: allow(nondet-iteration, the score map is point-lookup only; all traversal goes through the BTreeSet)
use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use cts_index::DocId;
use cts_text::Weight;

/// One entry of a query result: a document and its similarity score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedDocument {
    /// The document.
    pub doc: DocId,
    /// Its similarity score `S(d|Q)`.
    pub score: f64,
}

/// Internal ordering key: descending score, ascending document id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScoreKey {
    score: Weight,
    doc: DocId,
}

impl Ord for ScoreKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

impl PartialOrd for ScoreKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The result set `R` of one continuous query.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    ordered: BTreeSet<ScoreKey>,
    scores: HashMap<DocId, Weight>, // cts-lint: allow(nondet-iteration, point lookups only; never iterated)
}

impl ResultSet {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or updates) `doc` with `score`.
    pub fn insert(&mut self, doc: DocId, score: f64) {
        let score = Weight::new(score);
        if let Some(old) = self.scores.insert(doc, score) {
            self.ordered.remove(&ScoreKey { score: old, doc });
        }
        self.ordered.insert(ScoreKey { score, doc });
    }

    /// Removes `doc`, returning its score if it was present.
    pub fn remove(&mut self, doc: DocId) -> Option<f64> {
        let score = self.scores.remove(&doc)?;
        self.ordered.remove(&ScoreKey { score, doc });
        Some(score.get())
    }

    /// The score recorded for `doc`, if present.
    pub fn score_of(&self, doc: DocId) -> Option<f64> {
        self.scores.get(&doc).map(|w| w.get())
    }

    /// Whether `doc` is in the result set.
    pub fn contains(&self, doc: DocId) -> bool {
        self.scores.contains_key(&doc)
    }

    /// Number of documents in the set (top-k plus unverified extras).
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The `k`-th best score `S_k`, or `0.0` when fewer than `k` documents
    /// are present (so that any positive-scoring arrival qualifies for the
    /// top-k, matching the maintenance rules of §II/§III).
    pub fn kth_score(&self, k: usize) -> f64 {
        if k == 0 {
            return f64::INFINITY;
        }
        self.ordered
            .iter()
            .nth(k - 1)
            .map(|e| e.score.get())
            .unwrap_or(0.0)
    }

    /// The top `k` documents in descending score order.
    pub fn top(&self, k: usize) -> Vec<RankedDocument> {
        self.ordered
            .iter()
            .take(k)
            .map(|e| RankedDocument {
                doc: e.doc,
                score: e.score.get(),
            })
            .collect()
    }

    /// Whether `doc` currently ranks within the top `k` (ties broken by
    /// ascending document id, consistently with [`ResultSet::top`]).
    pub fn is_in_top_k(&self, doc: DocId, k: usize) -> bool {
        match self.scores.get(&doc) {
            None => false,
            Some(&score) => self
                .ordered
                .iter()
                .take(k)
                .any(|e| e.doc == doc && e.score == score),
        }
    }

    /// Iterates over all entries in descending score order.
    pub fn iter(&self) -> impl Iterator<Item = RankedDocument> + '_ {
        self.ordered.iter().map(|e| RankedDocument {
            doc: e.doc,
            score: e.score.get(),
        })
    }

    /// The best (highest) score, if any.
    pub fn best_score(&self) -> Option<f64> {
        self.ordered.iter().next().map(|e| e.score.get())
    }

    /// The worst (lowest) score currently retained, if any.
    pub fn worst_score(&self) -> Option<f64> {
        self.worst().map(|e| e.score)
    }

    /// The lowest-ranked entry (lowest score, ties broken by highest
    /// document id — the exact inverse of [`ResultSet::top`]'s order), if
    /// any. This is the admission boundary of a bounded view: a newcomer
    /// belongs in the set iff it ranks above this entry.
    pub fn worst(&self) -> Option<RankedDocument> {
        self.ordered.iter().next_back().map(|e| RankedDocument {
            doc: e.doc,
            score: e.score.get(),
        })
    }

    /// Removes and returns the lowest-scored entry (used by bounded buffers
    /// such as the Naïve engine's top-`k_max` view).
    pub fn pop_worst(&mut self) -> Option<RankedDocument> {
        let worst = *self.ordered.iter().next_back()?;
        self.ordered.remove(&worst);
        self.scores.remove(&worst.doc);
        Some(RankedDocument {
            doc: worst.doc,
            score: worst.score.get(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DocId {
        DocId(i)
    }

    #[test]
    fn insert_and_rank_order() {
        let mut r = ResultSet::new();
        r.insert(d(6), 0.19);
        r.insert(d(2), 0.17);
        r.insert(d(7), 0.15);
        let top = r.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].doc, d(6));
        assert_eq!(top[1].doc, d(2));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn kth_score_matches_paper_example() {
        // Initial result {⟨d6,0.19⟩, ⟨d2,0.17⟩} with k = 2 → S_k = 0.17.
        let mut r = ResultSet::new();
        r.insert(d(6), 0.19);
        r.insert(d(2), 0.17);
        r.insert(d(7), 0.15);
        assert!((r.kth_score(2) - 0.17).abs() < 1e-12);
        // After d9 (0.20) arrives → S_k becomes 0.19.
        r.insert(d(9), 0.20);
        assert!((r.kth_score(2) - 0.19).abs() < 1e-12);
    }

    #[test]
    fn kth_score_with_too_few_documents_is_zero() {
        let mut r = ResultSet::new();
        assert_eq!(r.kth_score(3), 0.0);
        r.insert(d(1), 0.4);
        assert_eq!(r.kth_score(3), 0.0);
        assert_eq!(r.kth_score(1), 0.4);
        assert_eq!(r.kth_score(0), f64::INFINITY);
    }

    #[test]
    fn update_replaces_previous_score() {
        let mut r = ResultSet::new();
        r.insert(d(1), 0.2);
        r.insert(d(1), 0.5);
        assert_eq!(r.len(), 1);
        assert_eq!(r.score_of(d(1)), Some(0.5));
        assert_eq!(r.top(1)[0].score, 0.5);
    }

    #[test]
    fn remove_and_membership() {
        let mut r = ResultSet::new();
        r.insert(d(1), 0.2);
        assert!(r.contains(d(1)));
        assert_eq!(r.remove(d(1)), Some(0.2));
        assert!(!r.contains(d(1)));
        assert_eq!(r.remove(d(1)), None);
        assert!(r.is_empty());
    }

    #[test]
    fn ties_are_broken_by_document_id() {
        let mut r = ResultSet::new();
        r.insert(d(30), 0.5);
        r.insert(d(10), 0.5);
        r.insert(d(20), 0.5);
        let order: Vec<u64> = r.iter().map(|e| e.doc.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(r.is_in_top_k(d(10), 1));
        assert!(!r.is_in_top_k(d(30), 2));
        assert!(r.is_in_top_k(d(30), 3));
    }

    #[test]
    fn best_worst_and_pop_worst() {
        let mut r = ResultSet::new();
        r.insert(d(1), 0.9);
        r.insert(d(2), 0.1);
        r.insert(d(3), 0.5);
        assert_eq!(r.best_score(), Some(0.9));
        assert_eq!(r.worst_score(), Some(0.1));
        assert_eq!(r.worst().unwrap().doc, d(2));
        let popped = r.pop_worst().unwrap();
        assert_eq!(popped.doc, d(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.worst_score(), Some(0.5));
    }

    #[test]
    fn worst_breaks_ties_by_highest_doc_id() {
        let mut r = ResultSet::new();
        r.insert(d(10), 0.5);
        r.insert(d(30), 0.5);
        r.insert(d(20), 0.5);
        assert_eq!(r.worst().unwrap().doc, d(30));
        assert!(ResultSet::new().worst().is_none());
    }

    #[test]
    fn is_in_top_k_for_absent_document() {
        let r = ResultSet::new();
        assert!(!r.is_in_top_k(d(1), 5));
    }

    #[test]
    fn iter_is_descending() {
        let mut r = ResultSet::new();
        for i in 0..20u64 {
            r.insert(d(i), (i as f64) * 0.01);
        }
        let scores: Vec<f64> = r.iter().map(|e| e.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }
}
