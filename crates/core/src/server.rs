//! The monitoring-server façade.
//!
//! [`MonitoringServer`] is the top of the stack: it owns a monitored engine,
//! accepts query registrations, consumes the document stream (one event or a
//! whole batch at a time) and serves current results — the role the paper's
//! "monitoring server" plays between the stream source and the users holding
//! continuous queries. Timing comes for free from the embedded
//! [`Monitor`].

use cts_index::{Document, QueryId, SlidingWindow, Timestamp};

use crate::engine::{Engine, EventOutcome};
use crate::ita::{ItaConfig, ItaEngine};
use crate::monitor::{Monitor, ProcessingStats};
use crate::naive::{NaiveConfig, NaiveEngine};
use crate::query::ContinuousQuery;
use crate::result::RankedDocument;
use crate::sharded::ShardedItaEngine;

/// A monitoring server over any [`Engine`].
#[derive(Debug, Clone)]
pub struct MonitoringServer<E: Engine> {
    monitor: Monitor<E>,
}

impl MonitoringServer<ItaEngine> {
    /// A server running the paper's Incremental Threshold Algorithm.
    pub fn ita(window: SlidingWindow, config: ItaConfig) -> Self {
        Self::new(ItaEngine::new(window, config))
    }
}

impl MonitoringServer<NaiveEngine> {
    /// A server running the top-`k_max` materialised-view baseline.
    pub fn naive(window: SlidingWindow, config: NaiveConfig) -> Self {
        Self::new(NaiveEngine::new(window, config))
    }
}

impl MonitoringServer<ShardedItaEngine> {
    /// A server running ITA across `shards` query-partitioned worker
    /// threads — results are byte-identical to [`MonitoringServer::ita`];
    /// event processing fans out to persistent per-shard workers.
    pub fn sharded_ita(window: SlidingWindow, config: ItaConfig, shards: usize) -> Self {
        Self::new(ShardedItaEngine::new(window, config, shards))
    }
}

impl<E: Engine> MonitoringServer<E> {
    /// Wraps `engine` in a timed server.
    pub fn new(engine: E) -> Self {
        Self {
            monitor: Monitor::new(engine),
        }
    }

    /// Registers a continuous query; its initial result is computed
    /// immediately over the currently valid documents.
    pub fn register_query(&mut self, query: ContinuousQuery) -> QueryId {
        self.monitor.register(query)
    }

    /// Removes a query. Returns `true` if it existed.
    pub fn deregister_query(&mut self, query: QueryId) -> bool {
        self.monitor.deregister(query)
    }

    /// Feeds one stream event (an arrival plus the expirations it triggers).
    pub fn feed(&mut self, doc: Document) -> EventOutcome {
        self.monitor.process_document(doc)
    }

    /// Feeds a whole burst of stream events through the engine's batched
    /// path ([`Engine::process_batch`]) in one call, returning one
    /// [`EventOutcome`] per document. Outcomes are byte-identical to feeding
    /// the documents one [`MonitoringServer::feed`] at a time; engines with a
    /// native burst path (the sharded engine) amortise their per-event
    /// dispatch cost across the batch. The batch is timed as a whole — see
    /// [`ProcessingStats::record_batch`] for what the cumulative stats track.
    pub fn feed_batch(&mut self, docs: Vec<Document>) -> Vec<EventOutcome> {
        self.monitor.process_batch(docs)
    }

    /// Feeds a document iterator through the batched path, `batch` events
    /// per [`Engine::process_batch`] call, returning the processing
    /// statistics for exactly this run (see [`Monitor::run_batched`]).
    pub fn run_batched<I>(&mut self, docs: I, batch: usize) -> ProcessingStats
    where
        I: IntoIterator<Item = Document>,
    {
        self.monitor.run_batched(docs, batch)
    }

    /// Feeds a whole batch of documents, returning the processing statistics
    /// for exactly this batch (recorded separately and
    /// [`ProcessingStats::absorb`]ed into the cumulative stats — see
    /// [`Monitor::run`]).
    pub fn run<I>(&mut self, docs: I) -> ProcessingStats
    where
        I: IntoIterator<Item = Document>,
    {
        self.monitor.run(docs)
    }

    /// The current top-k of `query`, best first.
    pub fn results(&self, query: QueryId) -> Vec<RankedDocument> {
        self.monitor.current_results(query)
    }

    /// Cumulative processing statistics since construction (or the last
    /// [`MonitoringServer::reset_stats`]).
    pub fn stats(&self) -> &ProcessingStats {
        self.monitor.stats()
    }

    /// Resets the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.monitor.reset_stats()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.monitor.num_queries()
    }

    /// Number of currently valid documents.
    pub fn num_valid_documents(&self) -> usize {
        self.monitor.num_valid_documents()
    }

    /// The server's stream clock.
    pub fn clock(&self) -> Timestamp {
        self.monitor.clock()
    }

    /// The underlying engine's reporting name ("ita", "naive", …).
    pub fn engine_name(&self) -> &'static str {
        self.monitor.name()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &E {
        self.monitor.engine()
    }

    /// Mutable access to the underlying engine (fault injection, explicit
    /// recovery). Events processed directly on the engine bypass timing.
    pub fn engine_mut(&mut self) -> &mut E {
        self.monitor.engine_mut()
    }

    /// The engine's fault and recovery counters, when it tracks them (the
    /// sharded engine does; single-threaded engines return `None`).
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.monitor.fault_stats()
    }

    /// Promotes this server into an overload-robust
    /// [`StreamService`](crate::StreamService): a bounded ingest queue with
    /// explicit admission, deadline shedding, burst coalescing and
    /// degraded-shard backpressure in front of the same engine. Registered
    /// queries and accumulated statistics carry over.
    pub fn into_service(self, config: crate::ServiceConfig) -> crate::StreamService<E> {
        crate::StreamService::from_monitor(self.monitor, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_index::DocId;
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, weight: f64) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights([(TermId(1), weight)]),
        )
    }

    #[test]
    fn ita_server_end_to_end() {
        let mut server = MonitoringServer::ita(SlidingWindow::count_based(3), ItaConfig::default());
        let q = server.register_query(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        let stats = server.run((0..10u64).map(|i| doc(i, 0.1 + (i % 4) as f64 * 0.2)));
        assert_eq!(stats.events, 10);
        assert_eq!(stats.expirations, 7);
        assert_eq!(server.num_valid_documents(), 3);
        let top = server.results(q);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert_eq!(server.engine_name(), "ita");
        assert_eq!(server.num_queries(), 1);
        assert!(server.deregister_query(q));
    }

    #[test]
    fn naive_server_matches_ita_server() {
        let mut ita = MonitoringServer::ita(SlidingWindow::count_based(4), ItaConfig::default());
        let mut naive =
            MonitoringServer::naive(SlidingWindow::count_based(4), NaiveConfig::default());
        let query = ContinuousQuery::from_weights([(TermId(1), 1.0)], 2);
        let qa = ita.register_query(query.clone());
        let qb = naive.register_query(query);
        for i in 0..30u64 {
            let d = doc(i, 0.05 + (i % 7) as f64 * 0.1);
            ita.feed(d.clone());
            naive.feed(d);
            assert_eq!(ita.results(qa), naive.results(qb), "diverged at event {i}");
        }
        assert_eq!(naive.engine_name(), "naive");
    }

    #[test]
    fn sharded_server_matches_ita_server() {
        let window = SlidingWindow::count_based(5);
        let mut ita = MonitoringServer::ita(window, ItaConfig::default());
        let mut sharded = MonitoringServer::sharded_ita(window, ItaConfig::default(), 3);
        let query = ContinuousQuery::from_weights([(TermId(1), 1.0)], 2);
        let qa = ita.register_query(query.clone());
        let qb = sharded.register_query(query);
        assert_eq!(qa, qb);
        for i in 0..20u64 {
            let d = doc(i, 0.05 + (i % 6) as f64 * 0.1);
            let oa = ita.feed(d.clone());
            let ob = sharded.feed(d);
            assert_eq!(oa, ob, "outcomes diverged at event {i}");
            assert_eq!(ita.results(qa), sharded.results(qb));
        }
        assert_eq!(sharded.engine_name(), "sharded-ita");
        assert_eq!(sharded.engine().num_shards(), 3);
        assert_eq!(sharded.stats().events, 20);
    }

    #[test]
    fn stats_reset() {
        let mut server = MonitoringServer::ita(SlidingWindow::count_based(2), ItaConfig::default());
        server.feed(doc(0, 0.5));
        assert_eq!(server.stats().events, 1);
        server.reset_stats();
        assert_eq!(server.stats().events, 0);
        assert_eq!(server.clock(), Timestamp::ZERO);
        assert_eq!(server.engine().num_valid_documents(), 1);
    }
}
