//! Continuous top-k text search over document streams.
//!
//! This crate implements the contribution of the ICDE 2009 paper
//! *"An Incremental Threshold Method for Continuous Text Search Queries"*
//! (Mouratidis & Pang): the **Incremental Threshold Algorithm (ITA)**, plus
//! the baselines it is evaluated against and a monitoring-server façade.
//!
//! * [`ContinuousQuery`] — a registered query: weighted search terms and `k`.
//! * [`ItaEngine`] — the paper's algorithm. Maintains, per query, a result
//!   set `R` (verified top-k plus the unverified documents needed for
//!   incremental maintenance), per-term *local thresholds* `θ_{Q,t}` stored in
//!   per-list threshold trees, and the *influence threshold* `τ`. Document
//!   arrivals and expirations touch only the queries whose thresholds they
//!   cross; results are repaired by threshold *roll-up* (arrivals) and
//!   incremental *refill* (expirations) instead of recomputation.
//! * [`NaiveEngine`] — the §II baseline enhanced with the top-`k_max`
//!   materialised-view technique of Yi et al. (the competitor measured in the
//!   paper's §IV).
//! * [`BruteForceOracle`] — an exhaustive re-evaluator used by the test suite
//!   to validate both engines.
//! * [`Monitor`] / [`MonitoringServer`] — event-loop wrappers that time every
//!   stream event (the paper's "processing time" metric) and expose results.
//!
//! # Quick example
//!
//! ```
//! use cts_core::{ContinuousQuery, Engine, ItaEngine, ItaConfig};
//! use cts_index::{DocId, Document, SlidingWindow, Timestamp};
//! use cts_text::{TermId, WeightedVector};
//!
//! let mut engine = ItaEngine::new(SlidingWindow::count_based(3), ItaConfig::default());
//! let q = engine.register(ContinuousQuery::from_weights(
//!     [(TermId(1), 0.8), (TermId(2), 0.6)], 2));
//!
//! for i in 0..5u64 {
//!     let doc = Document::new(
//!         DocId(i),
//!         Timestamp::from_millis(i),
//!         WeightedVector::from_weights([(TermId(1), 0.1 * (i + 1) as f64)]),
//!     );
//!     engine.process_document(doc);
//! }
//! let top = engine.current_results(q);
//! assert_eq!(top.len(), 2);
//! assert!(top[0].score >= top[1].score);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, unused_must_use)]

pub mod engine;
pub mod fault;
pub mod ita;
pub mod monitor;
pub mod naive;
pub mod oracle;
pub mod query;
pub mod result;
pub mod server;
pub mod service;
pub mod sharded;
pub mod slab;
pub mod testkit;
pub mod validate;

pub use engine::{Engine, EventOutcome, IngestEvent, RankedDocument};
pub use fault::{
    is_poison_document, poison_document, EngineError, FaultConfig, FaultPolicy, FaultStats,
    ShardFault, POISON_DOC_TEXT,
};
pub use ita::{ItaConfig, ItaEngine, ItaQueryStats, QueryMigration};
pub use monitor::{Monitor, OverloadStats, ProcessingStats};
pub use naive::{NaiveConfig, NaiveEngine};
pub use oracle::BruteForceOracle;
pub use query::ContinuousQuery;
pub use result::ResultSet;
pub use server::MonitoringServer;
pub use service::{Admission, DrainReport, ServiceConfig, ShedReason, StreamService};
pub use sharded::{RebalanceConfig, ShardedItaEngine};
pub use slab::QuerySlab;
