//! Overload-robust streaming front-end: a bounded ingest queue with
//! explicit admission control, deadline-aware load shedding and burst
//! coalescing around any [`Engine`].
//!
//! [`crate::MonitoringServer`] assumes a polite caller that feeds events no
//! faster than the engine drains them. [`StreamService`] drops that
//! assumption: it sits between an abusive stream source and the engine,
//! admits events into a **bounded queue** ([`ServiceConfig::queue_capacity`])
//! and answers every offer with an explicit [`Admission`]:
//!
//! * [`Admission::Accepted`] — the event was enqueued (or a registration ran
//!   immediately). The service now owns it.
//! * [`Admission::Coalesced`] — a registration was queued and will be
//!   flushed through one [`Engine::register_batch`] call at the next
//!   [`StreamService::pump`] (registration storms amortise into the bulk
//!   path instead of paying the per-query cliff).
//! * [`Admission::Shed`] — the event was dropped, with a [`ShedReason`].
//!   Queued events past their [`IngestEvent`] deadline are dropped
//!   **oldest-first**; a full queue displaces its oldest event to admit the
//!   fresher arrival.
//! * [`Admission::Retry`] — backpressure: the caller keeps the event and
//!   should retry after the hint. Raised while the engine reports a degraded
//!   shard and the queue is already deep
//!   ([`ServiceConfig::backpressure_watermark`]), so a recovery never ends up
//!   blocked behind an unbounded backlog — the degraded-shard ⇄ backpressure
//!   interplay of DESIGN.md §12.
//!
//! Draining is explicit: [`StreamService::pump`] (or the budgeted
//! [`StreamService::pump_budget`], which models a slow consumer) flushes
//! pending registrations, sheds expired events and processes the survivors —
//! **coalescing** them into [`Engine::process_batch`] bursts whenever the
//! queue depth is at or above [`ServiceConfig::coalesce_watermark`], which is
//! exactly when batch amortisation pays.
//!
//! # Exactness of the accepted sequence
//!
//! Shedding changes *which* events run, never *what they compute*: the
//! drained sequence is a subsequence of the offered sequence in arrival
//! order, processed through the same [`Engine`] entry points, and
//! [`Engine::process_batch`] is contractually byte-identical to the per-event
//! loop. Feeding the [`DrainReport`]'s processed sequence to an unbounded
//! reference engine therefore reproduces the service's results exactly — the
//! lockstep contract the testkit's overload axis
//! ([`crate::testkit::run_overload_session`]) enforces.
//!
//! Accounting is exact and checked on every operation:
//! `offered == accepted + coalesced + shed + queue depth`
//! (see [`OverloadStats::check_accounting`]).
//!
//! All admission decisions run in *stream time* ([`cts_index::Timestamp`]):
//! the service's logical clock is the latest arrival it has seen (or the
//! caller-passed `now` of a pump), never the wall clock, so the accepted set
//! is a pure function of the offered sequence and replays exactly.

use std::collections::VecDeque;
use std::time::Duration;

use cts_index::{DocId, Document, QueryId, Timestamp};

use crate::engine::{Engine, EventOutcome, IngestEvent};
use crate::monitor::{Monitor, OverloadStats, ProcessingStats};
use crate::query::ContinuousQuery;
use crate::result::RankedDocument;

/// Why a queue-owned event was dropped instead of processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The event's ingest deadline passed before it could be drained
    /// (checked in stream time; sheds run oldest-first).
    DeadlineExpired,
    /// The queue was full and this (oldest) event was displaced to admit a
    /// fresher arrival.
    QueueFull,
}

/// The admission decision for one offered event or registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The service took ownership: the event was enqueued, or the
    /// registration ran immediately.
    Accepted,
    /// A registration was queued for the next pump's coalesced
    /// [`Engine::register_batch`] flush; its id arrives in
    /// [`DrainReport::registered`].
    Coalesced,
    /// The service took ownership and dropped the event on the spot.
    Shed(ShedReason),
    /// Backpressure: the service did **not** take ownership. Retry after the
    /// hint (typically once the degraded shard has recovered or the queue
    /// has drained).
    Retry {
        /// Suggested backoff before re-offering.
        after: Duration,
    },
}

impl Admission {
    /// Whether the service took ownership of the offered item (it will be
    /// processed, coalesced or shed — but not silently lost).
    pub fn is_owned(&self) -> bool {
        !matches!(self, Admission::Retry { .. })
    }

    /// Whether this is a backpressure refusal.
    pub fn is_retry(&self) -> bool {
        matches!(self, Admission::Retry { .. })
    }
}

/// Tuning of the bounded ingest pipeline. Every bound is in events (or
/// queries, for the registration queue); every watermark compares against the
/// current queue depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Ingest queue bound. A full queue sheds expired events first, then
    /// displaces its oldest survivor per fresh admission — memory is bounded
    /// by construction. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Queue depth at which a pump drains via [`Engine::process_batch`]
    /// bursts instead of per-event calls. Clamped to at least 2 (a
    /// "coalesced" burst of one would be indistinguishable from a single).
    pub coalesce_watermark: usize,
    /// Largest coalesced burst per [`Engine::process_batch`] call. Clamped
    /// to at least 2.
    pub max_coalesce: usize,
    /// Default ingest deadline applied (as arrival + slack) to events
    /// offered without one; `None` means such events never expire.
    pub default_deadline: Option<Duration>,
    /// Pending-register queue bound; at capacity, registrations get
    /// [`Admission::Retry`].
    pub register_capacity: usize,
    /// Ingest-queue depth at which registrations stop running immediately
    /// and queue for batch coalescing instead (registration storms under
    /// event pressure amortise into [`Engine::register_batch`]).
    pub register_pressure: usize,
    /// Queue depth at or above which a degraded engine
    /// ([`crate::FaultStats::any_degraded`]) raises backpressure: offers get
    /// [`Admission::Retry`] instead of deepening the backlog behind a
    /// pending recovery.
    pub backpressure_watermark: usize,
    /// The backoff hint carried by every [`Admission::Retry`].
    pub retry_after: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::bounded(1024)
    }
}

impl ServiceConfig {
    /// A config with all bounds scaled from one queue capacity: coalescing
    /// from a sixteenth of the queue, backpressure from half, a
    /// half-capacity register queue deferring at the coalesce watermark.
    pub fn bounded(queue_capacity: usize) -> Self {
        let queue_capacity = queue_capacity.max(1);
        let coalesce_watermark = (queue_capacity / 16).max(2);
        Self {
            queue_capacity,
            coalesce_watermark,
            max_coalesce: (queue_capacity / 4).max(2),
            default_deadline: None,
            register_capacity: (queue_capacity / 2).max(1),
            register_pressure: coalesce_watermark,
            backpressure_watermark: (queue_capacity / 2).max(1),
            retry_after: Duration::from_millis(2),
        }
    }

    /// Normalised copy with every bound clamped to its documented minimum.
    fn normalized(&self) -> Self {
        let mut config = self.clone();
        config.queue_capacity = config.queue_capacity.max(1);
        config.coalesce_watermark = config.coalesce_watermark.max(2);
        config.max_coalesce = config.max_coalesce.max(2);
        config.register_capacity = config.register_capacity.max(1);
        config.backpressure_watermark = config.backpressure_watermark.max(1);
        config
    }
}

/// What one [`StreamService::pump`] did, in order: the exact record a
/// lockstep harness needs to replay the accepted sequence against an
/// unbounded reference engine.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Ids of the events processed, in processing order (a subsequence of
    /// the offered order).
    pub processed: Vec<DocId>,
    /// One outcome per processed event, parallel to `processed`.
    pub outcomes: Vec<EventOutcome>,
    /// Events shed since the previous report (at offer time or by this
    /// pump), with reasons.
    pub shed: Vec<(DocId, ShedReason)>,
    /// Ids assigned to the coalesced registrations this pump flushed, in
    /// offer order.
    pub registered: Vec<QueryId>,
    /// Coalesced bursts this pump sent through [`Engine::process_batch`].
    pub batches: u64,
    /// Events this pump processed individually.
    pub singletons: u64,
}

/// A bounded-queue, overload-robust front-end over any [`Engine`]. See the
/// [module docs](crate::service) for the admission and shedding model.
#[derive(Debug)]
pub struct StreamService<E: Engine> {
    monitor: Monitor<E>,
    config: ServiceConfig,
    queue: VecDeque<IngestEvent>,
    pending_registers: VecDeque<ContinuousQuery>,
    shed_log: Vec<(DocId, ShedReason)>,
    overload: OverloadStats,
    clock: Timestamp,
}

impl<E: Engine> StreamService<E> {
    /// Wraps `engine` behind a bounded ingest queue. Bounds below their
    /// documented minima are clamped (see [`ServiceConfig`]).
    pub fn new(engine: E, config: ServiceConfig) -> Self {
        Self::from_monitor(Monitor::new(engine), config)
    }

    /// Wraps an existing monitor (keeping its accumulated stats) behind a
    /// bounded ingest queue.
    pub fn from_monitor(monitor: Monitor<E>, config: ServiceConfig) -> Self {
        Self {
            monitor,
            config: config.normalized(),
            queue: VecDeque::new(),
            pending_registers: VecDeque::new(),
            shed_log: Vec::new(),
            overload: OverloadStats::default(),
            clock: Timestamp::ZERO,
        }
    }

    /// The normalised configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Current ingest-queue depth, in events.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Registrations currently queued for the next coalesced flush.
    pub fn pending_registers(&self) -> usize {
        self.pending_registers.len()
    }

    /// The service's logical clock: the latest stream time it has observed
    /// (arrival of an offered event, or the `now` of a pump).
    pub fn admission_clock(&self) -> Timestamp {
        self.clock
    }

    /// Whether the next offer would be refused with [`Admission::Retry`]:
    /// the engine reports a degraded shard **and** the queue is at or past
    /// the backpressure watermark. Reading this never touches the engine
    /// mutably, so it cannot trigger (or block on) a recovery.
    pub fn is_backpressured(&self) -> bool {
        self.queue.len() >= self.config.backpressure_watermark
            && self
                .monitor
                .fault_stats()
                .is_some_and(|faults| faults.any_degraded())
    }

    /// Offers one document without an explicit deadline (the configured
    /// [`ServiceConfig::default_deadline`] still applies).
    pub fn offer_document(&mut self, doc: Document) -> Admission {
        self.offer(IngestEvent::new(doc))
    }

    /// Offers one stream event. Never blocks and never calls into the
    /// engine: admission is pure queue arithmetic plus a read of the fault
    /// gauge, which is what keeps the shed path live while a degraded shard
    /// waits for recovery.
    pub fn offer(&mut self, event: IngestEvent) -> Admission {
        let arrival = event.doc.arrival;
        self.advance_clock(arrival);
        if self.is_backpressured() {
            self.overload.retry_hints += 1;
            return Admission::Retry {
                after: self.config.retry_after,
            };
        }
        let mut event = event;
        if event.deadline.is_none() {
            event.deadline = self
                .config
                .default_deadline
                .map(|slack| arrival.advance(slack));
        }
        self.overload.offered += 1;
        if event.is_expired(self.clock) {
            // Dead on arrival: a deadline already in the past (the stream
            // source lagged its own clock).
            self.overload.shed_deadline += 1;
            self.shed_log
                .push((event.doc.id, ShedReason::DeadlineExpired));
            self.check_accounting();
            return Admission::Shed(ShedReason::DeadlineExpired);
        }
        if self.queue.len() >= self.config.queue_capacity {
            // Make room: expired events go first (oldest-first), then the
            // oldest survivor is displaced — fresh data wins, memory stays
            // bounded.
            self.shed_expired();
            if self.queue.len() >= self.config.queue_capacity {
                if let Some(oldest) = self.queue.pop_front() {
                    self.overload.shed_queue_full += 1;
                    self.shed_log.push((oldest.doc.id, ShedReason::QueueFull));
                }
            }
        }
        self.queue.push_back(event);
        self.note_depth();
        self.check_accounting();
        Admission::Accepted
    }

    /// Offers one registration. Under low pressure (no queued registrations
    /// and an ingest queue below [`ServiceConfig::register_pressure`]) the
    /// query registers immediately and its id is returned alongside
    /// [`Admission::Accepted`]. Under pressure it queues for the next pump's
    /// single [`Engine::register_batch`] flush ([`Admission::Coalesced`];
    /// the id arrives in [`DrainReport::registered`], in offer order). A
    /// full pending queue — or active backpressure — yields
    /// [`Admission::Retry`].
    pub fn offer_register(&mut self, query: ContinuousQuery) -> (Admission, Option<QueryId>) {
        if self.is_backpressured() {
            self.overload.register_retry_hints += 1;
            return (
                Admission::Retry {
                    after: self.config.retry_after,
                },
                None,
            );
        }
        if self.pending_registers.is_empty() && self.queue.len() < self.config.register_pressure {
            self.overload.register_offered += 1;
            self.overload.register_immediate += 1;
            let id = self.monitor.register(query);
            return (Admission::Accepted, Some(id));
        }
        if self.pending_registers.len() >= self.config.register_capacity {
            self.overload.register_retry_hints += 1;
            return (
                Admission::Retry {
                    after: self.config.retry_after,
                },
                None,
            );
        }
        self.overload.register_offered += 1;
        self.overload.register_coalesced += 1;
        self.pending_registers.push_back(query);
        self.overload.register_high_water = self
            .overload
            .register_high_water
            .max(self.pending_registers.len() as u64);
        (Admission::Coalesced, None)
    }

    /// Removes a query immediately (registration admission control never
    /// delays removals — freeing capacity must not queue behind a storm).
    /// Returns `true` if it existed. A query still pending coalesced
    /// registration has no id yet and cannot be addressed here.
    pub fn deregister(&mut self, query: QueryId) -> bool {
        self.monitor.deregister(query)
    }

    /// Drains the whole queue at stream time `now`: flushes pending
    /// registrations, sheds expired events oldest-first, processes every
    /// survivor (coalescing into [`Engine::process_batch`] bursts while the
    /// depth is at or above the watermark).
    pub fn pump(&mut self, now: Timestamp) -> DrainReport {
        self.pump_budget(now, usize::MAX)
    }

    /// [`StreamService::pump`] with a drain budget: at most `budget` events
    /// are processed (shedding and registration flushing are not budgeted —
    /// they are how an overloaded service gets *cheaper*, and throttling
    /// them would let a slow consumer grow the backlog unboundedly). This is
    /// the slow-consumer model of the overload tests.
    pub fn pump_budget(&mut self, now: Timestamp, budget: usize) -> DrainReport {
        self.advance_clock(now);
        let mut report = DrainReport::default();
        if !self.pending_registers.is_empty() {
            let queries: Vec<ContinuousQuery> = self.pending_registers.drain(..).collect();
            report.registered = self.monitor.register_batch(queries);
        }
        self.shed_expired();
        let mut budget = budget;
        while budget > 0 && !self.queue.is_empty() {
            if self.queue.len() >= self.config.coalesce_watermark && budget >= 2 {
                let take = self.queue.len().min(self.config.max_coalesce).min(budget);
                let batch: Vec<Document> =
                    self.queue.drain(..take).map(|event| event.doc).collect();
                report.processed.extend(batch.iter().map(|doc| doc.id));
                let outcomes = self.monitor.process_batch(batch);
                report.outcomes.extend(outcomes);
                self.overload.coalesced += take as u64;
                report.batches += 1;
                budget -= take;
            } else {
                let Some(event) = self.queue.pop_front() else {
                    break;
                };
                report.processed.push(event.doc.id);
                let outcome = self.monitor.process_document(event.doc);
                report.outcomes.push(outcome);
                self.overload.accepted += 1;
                report.singletons += 1;
                budget -= 1;
            }
        }
        report.shed = std::mem::take(&mut self.shed_log);
        self.check_accounting();
        report
    }

    /// Asserts the exact shed-accounting identity
    /// `offered == accepted + coalesced + shed + depth` (see
    /// [`OverloadStats::check_accounting`]). Runs after every offer and
    /// pump; also callable by harnesses at quiescence, where the identity
    /// collapses to `offered == accepted + coalesced + shed`.
    pub fn check_accounting(&self) {
        self.overload.check_accounting(self.queue.len() as u64);
    }

    /// The admission-control counters.
    pub fn overload_stats(&self) -> OverloadStats {
        self.overload
    }

    /// Cumulative processing statistics with the overload counters folded
    /// in (see [`ProcessingStats::overload`]).
    pub fn stats(&self) -> ProcessingStats {
        let mut stats = *self.monitor.stats();
        stats.overload = self.overload;
        stats
    }

    /// The current top-k of `query`, best first.
    pub fn results(&self, query: QueryId) -> Vec<RankedDocument> {
        self.monitor.current_results(query)
    }

    /// Number of registered queries (pending coalesced registrations are not
    /// yet registered).
    pub fn num_queries(&self) -> usize {
        self.monitor.num_queries()
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        self.monitor.engine()
    }

    /// Mutable access to the wrapped engine (fault injection, explicit
    /// recovery). Events processed directly on the engine bypass the queue,
    /// the accounting and the timing.
    pub fn engine_mut(&mut self) -> &mut E {
        self.monitor.engine_mut()
    }

    /// Consumes the service, returning the monitor (queued events and
    /// pending registrations are dropped — pump first if they matter).
    pub fn into_monitor(self) -> Monitor<E> {
        self.monitor
    }

    fn advance_clock(&mut self, now: Timestamp) {
        if now > self.clock {
            self.clock = now;
        }
    }

    fn note_depth(&mut self) {
        self.overload.queue_high_water =
            self.overload.queue_high_water.max(self.queue.len() as u64);
    }

    /// Drops every queued event whose deadline lies strictly before the
    /// logical clock, oldest first; survivors keep their relative order.
    fn shed_expired(&mut self) {
        if self.queue.iter().all(|event| !event.is_expired(self.clock)) {
            return;
        }
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(event) = self.queue.pop_front() {
            if event.is_expired(self.clock) {
                self.overload.shed_deadline += 1;
                self.shed_log
                    .push((event.doc.id, ShedReason::DeadlineExpired));
            } else {
                kept.push_back(event);
            }
        }
        self.queue = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPolicy};
    use crate::ita::{ItaConfig, ItaEngine};
    use crate::query::ContinuousQuery;
    use crate::sharded::ShardedItaEngine;
    use cts_index::SlidingWindow;
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, millis: u64, weight: f64) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(millis),
            WeightedVector::from_weights([(TermId(1), weight)]),
        )
    }

    fn query(k: usize) -> ContinuousQuery {
        ContinuousQuery::from_weights([(TermId(1), 1.0)], k)
    }

    fn small_service(capacity: usize) -> StreamService<ItaEngine> {
        let engine = ItaEngine::new(SlidingWindow::count_based(8), ItaConfig::default());
        StreamService::new(engine, ServiceConfig::bounded(capacity))
    }

    #[test]
    fn accepted_events_process_and_match_an_unbounded_reference() {
        let mut service = small_service(16);
        let (admission, id) = service.offer_register(query(3));
        assert_eq!(admission, Admission::Accepted);
        let q = id.expect("immediate registration returns an id");
        let mut reference = ItaEngine::new(SlidingWindow::count_based(8), ItaConfig::default());
        let rq = reference.register(query(3));
        assert_eq!(q, rq);
        let docs: Vec<Document> = (0..10)
            .map(|i| doc(i, i * 5, 0.1 * (i % 4 + 1) as f64))
            .collect();
        for d in &docs {
            assert_eq!(service.offer_document(d.clone()), Admission::Accepted);
        }
        let report = service.pump(Timestamp::from_millis(100));
        assert_eq!(report.processed.len(), 10);
        assert!(report.shed.is_empty());
        for (d, outcome) in docs.iter().zip(&report.outcomes) {
            let expected = reference.process_document(d.clone());
            assert_eq!(&expected, outcome);
        }
        assert_eq!(service.results(q), reference.current_results(rq));
        let overload = service.overload_stats();
        assert_eq!(overload.offered, 10);
        assert_eq!(overload.accepted + overload.coalesced, 10);
        assert_eq!(overload.shed(), 0);
        service.check_accounting();
    }

    #[test]
    fn a_full_queue_displaces_oldest_first_and_accounts_exactly() {
        let mut service = small_service(4);
        assert_eq!(service.config().queue_capacity, 4);
        for i in 0..9u64 {
            assert_eq!(
                service.offer_document(doc(i, i, 0.5)),
                Admission::Accepted,
                "fresh arrivals are always admitted; the oldest is displaced"
            );
        }
        let overload = service.overload_stats();
        assert_eq!(overload.offered, 9);
        assert_eq!(overload.shed_queue_full, 5);
        assert_eq!(overload.queue_high_water, 4);
        assert_eq!(service.depth(), 4);
        service.check_accounting();
        // The survivors are the 4 freshest, in arrival order.
        let report = service.pump(Timestamp::from_millis(20));
        assert_eq!(
            report.processed,
            vec![DocId(5), DocId(6), DocId(7), DocId(8)]
        );
        // Displacements are reported with their reason.
        assert_eq!(report.shed.len(), 5);
        assert!(report
            .shed
            .iter()
            .all(|(_, reason)| *reason == ShedReason::QueueFull));
        let overload = service.overload_stats();
        assert_eq!(
            overload.offered,
            overload.accepted + overload.coalesced + overload.shed()
        );
    }

    #[test]
    fn deadline_shedding_drops_expired_events_oldest_first() {
        let mut service = small_service(16);
        // Three events expiring 10ms after arrival, then a late pump.
        for i in 0..3u64 {
            let event = IngestEvent::deadline_in(doc(i, i, 0.5), Duration::from_millis(10));
            assert_eq!(service.offer(event), Admission::Accepted);
        }
        let event = IngestEvent::deadline_in(doc(3, 50, 0.5), Duration::from_millis(10));
        assert_eq!(service.offer(event), Admission::Accepted);
        let report = service.pump(Timestamp::from_millis(50));
        assert_eq!(report.processed, vec![DocId(3)]);
        assert_eq!(
            report.shed,
            vec![
                (DocId(0), ShedReason::DeadlineExpired),
                (DocId(1), ShedReason::DeadlineExpired),
                (DocId(2), ShedReason::DeadlineExpired),
            ]
        );
        let overload = service.overload_stats();
        assert_eq!(overload.shed_deadline, 3);
        service.check_accounting();
    }

    #[test]
    fn an_event_dead_on_arrival_is_shed_at_offer_time() {
        let mut service = small_service(16);
        // Advance the logical clock to 100ms…
        assert_eq!(
            service.offer_document(doc(0, 100, 0.5)),
            Admission::Accepted
        );
        // …then offer an event whose deadline is already in the past.
        let stale = IngestEvent::with_deadline(doc(1, 40, 0.5), Timestamp::from_millis(60));
        assert_eq!(
            service.offer(stale),
            Admission::Shed(ShedReason::DeadlineExpired)
        );
        let overload = service.overload_stats();
        assert_eq!(overload.offered, 2);
        assert_eq!(overload.shed_deadline, 1);
        service.check_accounting();
    }

    #[test]
    fn default_deadline_applies_to_events_offered_without_one() {
        let engine = ItaEngine::new(SlidingWindow::count_based(8), ItaConfig::default());
        let mut config = ServiceConfig::bounded(16);
        config.default_deadline = Some(Duration::from_millis(5));
        let mut service = StreamService::new(engine, config);
        assert_eq!(service.offer_document(doc(0, 0, 0.5)), Admission::Accepted);
        assert_eq!(
            service.offer_document(doc(1, 100, 0.5)),
            Admission::Accepted
        );
        let report = service.pump(Timestamp::from_millis(100));
        assert_eq!(report.processed, vec![DocId(1)]);
        assert_eq!(report.shed, vec![(DocId(0), ShedReason::DeadlineExpired)]);
    }

    #[test]
    fn deep_queues_coalesce_into_batches_and_shallow_queues_do_not() {
        let engine = ItaEngine::new(SlidingWindow::count_based(32), ItaConfig::default());
        let mut config = ServiceConfig::bounded(64);
        config.coalesce_watermark = 8;
        config.max_coalesce = 8;
        let mut service = StreamService::new(engine, config);
        // 20 queued events: two bursts of 8, then 4 singles below watermark.
        for i in 0..20u64 {
            service.offer_document(doc(i, i, 0.5));
        }
        let report = service.pump(Timestamp::from_millis(100));
        assert_eq!(report.batches, 2);
        assert_eq!(report.singletons, 4);
        assert_eq!(report.processed.len(), 20);
        let overload = service.overload_stats();
        assert_eq!(overload.coalesced, 16);
        assert_eq!(overload.accepted, 4);
        let stats = service.stats();
        assert_eq!(stats.events, 20);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.overload, overload);
    }

    #[test]
    fn budgeted_pumps_model_a_slow_consumer() {
        let mut service = small_service(64);
        for i in 0..10u64 {
            service.offer_document(doc(i, i, 0.5));
        }
        let report = service.pump_budget(Timestamp::from_millis(10), 3);
        assert_eq!(report.processed.len(), 3);
        assert_eq!(service.depth(), 7);
        service.check_accounting();
        let report = service.pump(Timestamp::from_millis(10));
        assert_eq!(report.processed.len(), 7);
        assert_eq!(service.depth(), 0);
        let overload = service.overload_stats();
        assert_eq!(
            overload.offered,
            overload.accepted + overload.coalesced + overload.shed()
        );
    }

    #[test]
    fn registration_storms_coalesce_under_pressure() {
        let engine = ItaEngine::new(SlidingWindow::count_based(8), ItaConfig::default());
        let mut config = ServiceConfig::bounded(16);
        config.register_pressure = 2;
        config.register_capacity = 3;
        let mut service = StreamService::new(engine, config);
        // No pressure: immediate.
        let (admission, id) = service.offer_register(query(1));
        assert_eq!(admission, Admission::Accepted);
        assert!(id.is_some());
        // Raise event pressure past register_pressure.
        service.offer_document(doc(0, 0, 0.5));
        service.offer_document(doc(1, 1, 0.5));
        // Under pressure: queue for coalescing, up to capacity.
        for _ in 0..3 {
            let (admission, id) = service.offer_register(query(2));
            assert_eq!(admission, Admission::Coalesced);
            assert!(id.is_none());
        }
        let (admission, id) = service.offer_register(query(2));
        assert!(admission.is_retry(), "register queue at capacity");
        assert!(id.is_none());
        assert_eq!(service.pending_registers(), 3);
        // The pump flushes all three in one register_batch, ids in order.
        let report = service.pump(Timestamp::from_millis(5));
        assert_eq!(report.registered.len(), 3);
        assert_eq!(service.pending_registers(), 0);
        assert_eq!(service.num_queries(), 4);
        let overload = service.overload_stats();
        assert_eq!(overload.register_offered, 4);
        assert_eq!(overload.register_immediate, 1);
        assert_eq!(overload.register_coalesced, 3);
        assert_eq!(overload.register_retry_hints, 1);
        assert_eq!(overload.register_high_water, 3);
        // Once queued registrations exist, later offers queue behind them to
        // keep id assignment in offer order, even with pressure gone.
        service.pump(Timestamp::from_millis(6));
        let (admission, _) = service.offer_register(query(1));
        assert_eq!(admission, Admission::Accepted);
    }

    #[test]
    fn degraded_shard_raises_backpressure_instead_of_deepening_the_queue() {
        let engine = ShardedItaEngine::with_faults(
            SlidingWindow::count_based(8),
            ItaConfig::default(),
            2,
            crate::sharded::RebalanceConfig::default(),
            FaultConfig {
                policy: FaultPolicy::ServeDegraded,
                ..FaultConfig::default()
            },
        );
        let mut config = ServiceConfig::bounded(8);
        config.backpressure_watermark = 2;
        let mut service = StreamService::new(engine, config);
        let (_, id) = service.offer_register(query(2));
        let q = id.expect("immediate registration");
        // Kill a worker and let an op discover the disconnect.
        service.engine_mut().inject_disconnect(0);
        service.offer_document(doc(0, 0, 0.5));
        service.pump(Timestamp::from_millis(1));
        assert!(service
            .engine()
            .fault_stats()
            .is_some_and(|faults| faults.any_degraded()));
        // Below the watermark offers still land; at the watermark they retry.
        assert_eq!(service.offer_document(doc(1, 1, 0.5)), Admission::Accepted);
        assert_eq!(service.offer_document(doc(2, 2, 0.5)), Admission::Accepted);
        assert!(service.is_backpressured());
        for i in 3..6u64 {
            let admission = service.offer_document(doc(i, i, 0.5));
            assert_eq!(
                admission,
                Admission::Retry {
                    after: service.config().retry_after
                },
                "deterministic backpressure while degraded"
            );
        }
        let overload = service.overload_stats();
        assert_eq!(overload.retry_hints, 3);
        // Retries are not owned: accounting stays exact without them.
        service.check_accounting();
        // The queue still drains (ServeDegraded keeps healthy shards live)…
        service.pump(Timestamp::from_millis(10));
        assert_eq!(service.depth(), 0);
        // …and recovery lifts the backpressure.
        service
            .engine_mut()
            .recover_degraded()
            .expect("resurrection succeeds");
        assert!(!service.is_backpressured());
        assert_eq!(service.offer_document(doc(9, 9, 0.5)), Admission::Accepted);
        let _ = service.results(q);
    }

    #[test]
    fn bounds_are_clamped_to_their_minima() {
        let config = ServiceConfig {
            queue_capacity: 0,
            coalesce_watermark: 0,
            max_coalesce: 0,
            default_deadline: None,
            register_capacity: 0,
            register_pressure: 0,
            backpressure_watermark: 0,
            retry_after: Duration::ZERO,
        };
        let engine = ItaEngine::new(SlidingWindow::count_based(2), ItaConfig::default());
        let service = StreamService::new(engine, config);
        let normalized = service.config();
        assert_eq!(normalized.queue_capacity, 1);
        assert_eq!(normalized.coalesce_watermark, 2);
        assert_eq!(normalized.max_coalesce, 2);
        assert_eq!(normalized.register_capacity, 1);
        assert_eq!(normalized.backpressure_watermark, 1);
    }
}
