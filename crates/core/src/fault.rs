//! Fault taxonomy, recovery policy and fault counters for the sharded
//! engine.
//!
//! A production continuous-search service cannot let one poisoned event take
//! down every registered query. This module holds the types the fault-
//! tolerant [`crate::ShardedItaEngine`] surfaces to callers:
//!
//! * [`ShardFault`] / [`EngineError`] — what went wrong, as data instead of
//!   a process abort. The `try_*` coordinator methods return these; the
//!   infallible [`crate::Engine`] trait methods only panic under
//!   [`FaultPolicy::FailFast`] (or when recovery itself is impossible).
//! * [`FaultPolicy`] / [`FaultConfig`] — what the coordinator does when a
//!   shard cannot be recovered in place: block and resurrect it
//!   synchronously, serve the remaining shards and mark the affected
//!   queries stale, or fail fast with a typed error.
//! * [`FaultStats`] — counters for faults seen, recoveries performed, time
//!   spent recovering, events served while degraded, and spawn
//!   retries/fallbacks at construction.
//! * [`POISON_DOC_TEXT`] / [`poison_document`] — the testkit's
//!   poison-document mechanism: a marked document makes every shard worker
//!   panic mid-mutation the first time it sees it, while fault-free
//!   reference engines score it normally (the marker lives in the payload
//!   text, which scoring ignores), so chaos scripts stay runnable in
//!   lockstep.
//!
//! The recovery design itself (worker-local checkpoint + op-log replay for
//! *warm* recovery; coordinator registry + window-mirror replay for *cold*
//! resurrection) is documented in DESIGN.md §10 and implemented in
//! [`crate::sharded`].

use std::fmt;

use cts_index::{Document, QueryId};

/// A shard worker panicked and could not be recovered in place: the shard's
/// engine state is gone until the coordinator cold-resurrects it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFault {
    /// Which shard faulted (coordinator shard index).
    pub shard: usize,
    /// The panic message (or a description of where recovery gave up).
    pub context: String,
}

impl fmt::Display for ShardFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} faulted: {}", self.shard, self.context)
    }
}

impl std::error::Error for ShardFault {}

/// Typed errors the sharded coordinator's `try_*` paths surface instead of
/// panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A worker panicked beyond in-place recovery; the shard is degraded
    /// until [`crate::ShardedItaEngine::recover_degraded`] resurrects it.
    ShardFault(ShardFault),
    /// A worker thread is gone (its channel disconnected); the shard is
    /// degraded until resurrected.
    ShardUnavailable {
        /// Which shard's worker is unreachable.
        shard: usize,
    },
    /// The query id is not registered.
    UnknownQuery(QueryId),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ShardFault(fault) => fault.fmt(f),
            EngineError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} worker is unavailable (disconnected)")
            }
            EngineError::UnknownQuery(query) => write!(f, "{query} is not registered"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::ShardFault(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<ShardFault> for EngineError {
    fn from(fault: ShardFault) -> Self {
        EngineError::ShardFault(fault)
    }
}

/// What the coordinator does when a shard becomes *degraded* — its worker
/// poisoned (a panic that in-place checkpoint recovery could not undo) or
/// its thread gone entirely.
///
/// This policy governs only unrecoverable faults. The common case — a panic
/// caught by the worker's own guard — is repaired *inside* the worker from
/// its checkpoint + op log before the reply is sent, under every policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Surface a typed [`EngineError`] from the `try_*` paths (the
    /// infallible [`crate::Engine`] methods panic). Nothing is rebuilt until
    /// [`crate::ShardedItaEngine::recover_degraded`] is called explicitly.
    FailFast,
    /// Resurrect degraded shards synchronously before (or during) the next
    /// operation: respawn the worker if needed, replay the window mirror and
    /// re-register the shard's queries from the durable registry. Callers
    /// never observe a degraded shard; they just pay the rebuild latency.
    #[default]
    BlockUntilRecovered,
    /// Keep serving from the healthy shards. Queries hosted on a degraded
    /// shard report empty (stale) results and
    /// [`crate::ShardedItaEngine::query_is_stale`] returns `true` for them;
    /// events processed meanwhile are counted in
    /// [`FaultStats::events_during_degraded`]. Recovery happens only when
    /// [`crate::ShardedItaEngine::recover_degraded`] is called.
    ServeDegraded,
}

/// Fault-tolerance configuration of the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Degraded-mode policy for unrecoverable faults.
    pub policy: FaultPolicy,
    /// Worker-local checkpoint cadence, in state mutations (events +
    /// registration ops). Each worker keeps a clone of its engine refreshed
    /// every this-many mutations plus a log of the mutations since; a caught
    /// panic restores the clone and replays the log, which is byte-identical
    /// to the pre-fault state because every op is deterministic. `0`
    /// disables warm recovery entirely: any caught panic poisons the shard
    /// and only cold resurrection (window replay + re-registration, exact
    /// results but re-derived thresholds) can bring it back.
    pub checkpoint_interval: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            policy: FaultPolicy::default(),
            checkpoint_interval: 256,
        }
    }
}

/// Fault and recovery counters of a sharded engine
/// ([`crate::Engine::fault_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker panics and disconnects observed (recovered or not).
    pub faults: u64,
    /// Recoveries performed: in-place checkpoint restores plus cold shard
    /// resurrections.
    pub recoveries: u64,
    /// Total time spent restoring/rebuilding shard state, in microseconds.
    pub recovery_micros: u64,
    /// Stream events processed while at least one shard was degraded
    /// (only possible under [`FaultPolicy::ServeDegraded`]).
    pub events_during_degraded: u64,
    /// Shards currently degraded (worker poisoned or gone).
    pub degraded_shards: usize,
    /// Worker-spawn attempts that failed once and were retried.
    pub spawn_retries: u64,
    /// Shards dropped at construction because spawning failed twice (the
    /// engine degraded to fewer shards instead of aborting).
    pub spawn_fallbacks: u64,
}

impl FaultStats {
    /// Folds another engine's fault counters into this one — the combinator
    /// for aggregating fault stats across engines (e.g. a fleet report over
    /// several sharded instances). Event-shaped counters add exactly;
    /// `degraded_shards` is a *current-state* gauge, not a counter, and also
    /// adds: each source reports its own currently-degraded shard count and
    /// the shard sets are disjoint.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.faults += other.faults;
        self.recoveries += other.recoveries;
        self.recovery_micros += other.recovery_micros;
        self.events_during_degraded += other.events_during_degraded;
        self.degraded_shards += other.degraded_shards;
        self.spawn_retries += other.spawn_retries;
        self.spawn_fallbacks += other.spawn_fallbacks;
    }

    /// Whether any shard is currently degraded — the signal the bounded
    /// ingest queue ([`crate::StreamService`]) converts into backpressure
    /// (`Retry` admissions) instead of letting a recovery block behind a
    /// growing queue.
    pub fn any_degraded(&self) -> bool {
        self.degraded_shards > 0
    }
}

/// The payload-text marker of a *poison document*: the first time a shard
/// worker processes a document carrying this text it panics mid-mutation
/// (exercising the recovery path), while engines without fault injection
/// score the document normally — the marker rides in [`Document::text`],
/// which no engine's scoring reads.
pub const POISON_DOC_TEXT: &str = "__cts_poison__";

/// Marks `doc` as a poison document (see [`POISON_DOC_TEXT`]).
pub fn poison_document(doc: Document) -> Document {
    doc.with_text(POISON_DOC_TEXT)
}

/// Whether `doc` carries the poison marker.
pub fn is_poison_document(doc: &Document) -> bool {
    doc.text.as_deref() == Some(POISON_DOC_TEXT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_index::{DocId, Timestamp};
    use cts_text::WeightedVector;

    #[test]
    fn errors_render_their_context() {
        let fault = ShardFault {
            shard: 3,
            context: "index out of bounds".to_string(),
        };
        assert_eq!(fault.to_string(), "shard 3 faulted: index out of bounds");
        let err: EngineError = fault.clone().into();
        assert_eq!(err.to_string(), fault.to_string());
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(
            EngineError::ShardUnavailable { shard: 1 }.to_string(),
            "shard 1 worker is unavailable (disconnected)"
        );
        assert!(EngineError::UnknownQuery(QueryId(9))
            .to_string()
            .contains("not registered"));
    }

    #[test]
    fn poison_marking_round_trips() {
        let doc = Document::new(DocId(1), Timestamp::ZERO, WeightedVector::from_weights([]));
        assert!(!is_poison_document(&doc));
        let doc = poison_document(doc);
        assert!(is_poison_document(&doc));
        // The marker does not touch anything scoring reads.
        assert_eq!(doc.id, DocId(1));
        assert!(doc.composition.as_slice().is_empty());
    }

    #[test]
    fn fault_stats_absorb_is_an_exact_merge() {
        let mut a = FaultStats {
            faults: 3,
            recoveries: 2,
            recovery_micros: 40,
            events_during_degraded: 7,
            degraded_shards: 1,
            spawn_retries: 1,
            spawn_fallbacks: 0,
        };
        let b = FaultStats {
            faults: 1,
            recoveries: 1,
            recovery_micros: 5,
            events_during_degraded: 0,
            degraded_shards: 2,
            spawn_retries: 0,
            spawn_fallbacks: 1,
        };
        a.absorb(&b);
        assert_eq!(a.faults, 4);
        assert_eq!(a.recoveries, 3);
        assert_eq!(a.recovery_micros, 45);
        assert_eq!(a.events_during_degraded, 7);
        assert_eq!(a.degraded_shards, 3);
        assert_eq!(a.spawn_retries, 1);
        assert_eq!(a.spawn_fallbacks, 1);
        assert!(a.any_degraded());
        assert!(!FaultStats::default().any_degraded());
        // Absorbing the zero stats is the identity.
        let before = a;
        a.absorb(&FaultStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn defaults_block_until_recovered_with_checkpointing_on() {
        let config = FaultConfig::default();
        assert_eq!(config.policy, FaultPolicy::BlockUntilRecovered);
        assert!(config.checkpoint_interval > 0);
        assert_eq!(FaultStats::default().faults, 0);
    }
}
