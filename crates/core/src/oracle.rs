//! A brute-force reference evaluator.
//!
//! [`BruteForceOracle`] keeps no per-query state at all: it stores the valid
//! documents and, when asked for a query's results, scores **every** valid
//! document from scratch. It is the slowest possible correct implementation,
//! which is precisely what makes it the ground truth the test suite validates
//! [`crate::ItaEngine`] and [`crate::NaiveEngine`] against — any divergence
//! is a bug in the incremental machinery, never in the oracle.

use std::collections::BTreeMap;

use cts_index::{Document, DocumentStore, QueryId, SlidingWindow, Timestamp};

use crate::engine::{Engine, EventOutcome};
use crate::query::ContinuousQuery;
use crate::result::{RankedDocument, ResultSet};

/// The exhaustive re-evaluation engine.
#[derive(Debug, Clone)]
pub struct BruteForceOracle {
    window: SlidingWindow,
    store: DocumentStore,
    queries: BTreeMap<QueryId, ContinuousQuery>,
    next_query: u32,
    clock: Timestamp,
}

impl BruteForceOracle {
    /// Creates an oracle with the given sliding-window policy.
    pub fn new(window: SlidingWindow) -> Self {
        Self {
            window,
            store: DocumentStore::new(),
            queries: BTreeMap::new(),
            next_query: 0,
            clock: Timestamp::ZERO,
        }
    }
}

impl Engine for BruteForceOracle {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        let qid = QueryId(self.next_query);
        self.next_query += 1;
        self.queries.insert(qid, query);
        qid
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        self.queries.remove(&query).is_some()
    }

    /// Stores the arrival and applies expirations. Evaluation is lazy (done
    /// in [`Engine::current_results`]), so the outcome's
    /// `queries_touched_*` counters report the conceptual cost of full
    /// re-evaluation — every query, on every update — and `results_changed`
    /// is always 0 (the oracle does not track deltas).
    fn process_document(&mut self, doc: Document) -> EventOutcome {
        self.clock = doc.arrival;
        let mut outcome = EventOutcome {
            arrived: doc.id,
            queries_touched_by_arrival: self.queries.len(),
            ..EventOutcome::default()
        };
        self.store.push(doc);
        let expired = self.window.expired(&self.store, self.clock);
        outcome.expired = expired.len();
        outcome.queries_touched_by_expiration = expired.len() * self.queries.len();
        for id in expired {
            self.store
                .remove(id)
                .expect("window reported a valid document");
        }
        outcome
    }

    fn current_results(&self, query: QueryId) -> Vec<RankedDocument> {
        let Some(query) = self.queries.get(&query) else {
            return Vec::new();
        };
        let mut results = ResultSet::new();
        for doc in self.store.iter() {
            let score = query.score(&doc.composition);
            if score > 0.0 {
                results.insert(doc.id, score);
            }
        }
        results.top(query.k())
    }

    fn num_queries(&self) -> usize {
        self.queries.len()
    }

    fn num_valid_documents(&self) -> usize {
        self.store.len()
    }

    fn clock(&self) -> Timestamp {
        self.clock
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_index::DocId;
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, terms: &[(u32, f64)]) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w))),
        )
    }

    #[test]
    fn evaluates_the_window_exhaustively() {
        let mut o = BruteForceOracle::new(SlidingWindow::count_based(3));
        let q = o.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        for (i, w) in [0.5, 0.9, 0.1, 0.7].into_iter().enumerate() {
            o.process_document(doc(i as u64, &[(1, w)]));
        }
        // Window holds d1 (0.9), d2 (0.1), d3 (0.7).
        let top: Vec<u64> = o.current_results(q).iter().map(|r| r.doc.0).collect();
        assert_eq!(top, vec![1, 3]);
        assert_eq!(o.num_valid_documents(), 3);
    }

    #[test]
    fn counters_report_full_reevaluation_cost() {
        let mut o = BruteForceOracle::new(SlidingWindow::count_based(1));
        o.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        o.register(ContinuousQuery::from_weights([(TermId(2), 1.0)], 1));
        o.process_document(doc(0, &[(1, 0.5)]));
        let out = o.process_document(doc(1, &[(1, 0.5)]));
        assert_eq!(out.queries_touched_by_arrival, 2);
        assert_eq!(out.expired, 1);
        assert_eq!(out.queries_touched_by_expiration, 2);
        assert_eq!(out.results_changed, 0);
    }

    #[test]
    fn nonmatching_documents_are_excluded() {
        let mut o = BruteForceOracle::new(SlidingWindow::count_based(10));
        let q = o.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 5));
        o.process_document(doc(0, &[(2, 0.9)]));
        o.process_document(doc(1, &[(1, 0.2)]));
        let top = o.current_results(q);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].doc, DocId(1));
    }

    #[test]
    fn unknown_query_yields_no_results() {
        let o = BruteForceOracle::new(SlidingWindow::count_based(10));
        assert!(o.current_results(QueryId(7)).is_empty());
    }

    #[test]
    fn deregister_and_name() {
        let mut o = BruteForceOracle::new(SlidingWindow::count_based(10));
        let q = o.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        assert_eq!(o.name(), "brute-force");
        assert!(o.deregister(q));
        assert!(!o.deregister(q));
    }
}
