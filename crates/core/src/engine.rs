//! The engine abstraction shared by ITA, the baselines and the oracle.
//!
//! All monitoring strategies expose the same interface: register continuous
//! queries, feed stream events (each document arrival may trigger window
//! expirations), and read the current top-k of any query. Benchmarks, tests
//! and the [`crate::Monitor`] wrapper are generic over this trait, which is
//! what makes the paper's ITA-vs-Naïve comparison a one-line swap.

use cts_index::{DocId, Document, QueryId, Timestamp};

use crate::query::ContinuousQuery;

pub use crate::result::RankedDocument;

/// Summary of the work performed for one stream event (an arrival plus the
/// expirations it caused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventOutcome {
    /// Id of the arriving document.
    pub arrived: DocId,
    /// Number of documents that expired from the sliding window.
    pub expired: usize,
    /// Number of (query, update) pairs examined while handling the arrival —
    /// i.e. how many queries were identified as potentially affected.
    pub queries_touched_by_arrival: usize,
    /// Number of (query, update) pairs examined while handling expirations.
    pub queries_touched_by_expiration: usize,
    /// Number of queries whose top-k actually changed.
    pub results_changed: usize,
}

/// A continuous top-k monitoring engine.
pub trait Engine {
    /// Registers a continuous query, returning its id. The query's initial
    /// result is computed immediately over the currently valid documents.
    fn register(&mut self, query: ContinuousQuery) -> QueryId;

    /// Removes a query from the system. Returns `true` if it existed.
    fn deregister(&mut self, query: QueryId) -> bool;

    /// Processes one stream event: the arrival of `doc` and every expiration
    /// it triggers under the engine's sliding window.
    fn process_document(&mut self, doc: Document) -> EventOutcome;

    /// The current top-k of `query`, best first. Fewer than `k` entries are
    /// returned when fewer than `k` valid documents match the query at all.
    fn current_results(&self, query: QueryId) -> Vec<RankedDocument>;

    /// Number of registered queries.
    fn num_queries(&self) -> usize;

    /// Number of currently valid (windowed) documents.
    fn num_valid_documents(&self) -> usize;

    /// The engine's current stream clock (arrival time of the latest event).
    fn clock(&self) -> Timestamp;

    /// A short, stable name for reporting ("ita", "naive", …).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_outcome_default_is_zeroed() {
        let o = EventOutcome::default();
        assert_eq!(o.expired, 0);
        assert_eq!(o.queries_touched_by_arrival, 0);
        assert_eq!(o.queries_touched_by_expiration, 0);
        assert_eq!(o.results_changed, 0);
        assert_eq!(o.arrived, DocId(0));
    }
}
