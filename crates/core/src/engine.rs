//! The engine abstraction shared by ITA, the baselines and the oracle.
//!
//! All monitoring strategies expose the same interface: register continuous
//! queries, feed stream events (each document arrival may trigger window
//! expirations), and read the current top-k of any query. Benchmarks, tests
//! and the [`crate::Monitor`] wrapper are generic over this trait, which is
//! what makes the paper's ITA-vs-Naïve comparison a one-line swap.

use cts_index::{DocId, Document, QueryId, Timestamp};

use crate::fault::FaultStats;
use crate::query::ContinuousQuery;

pub use crate::result::RankedDocument;

/// Summary of the work performed for one stream event (an arrival plus the
/// expirations it caused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventOutcome {
    /// Id of the arriving document.
    pub arrived: DocId,
    /// Number of documents that expired from the sliding window.
    pub expired: usize,
    /// Number of (query, update) pairs examined while handling the arrival —
    /// i.e. how many queries were identified as potentially affected.
    pub queries_touched_by_arrival: usize,
    /// Number of (query, update) pairs examined while handling expirations.
    pub queries_touched_by_expiration: usize,
    /// Number of queries whose top-k actually changed.
    pub results_changed: usize,
}

impl EventOutcome {
    /// Folds another shard's view of the **same stream event** into this one.
    ///
    /// Queries are partitioned across shards, so per-query work counters are
    /// disjoint and sum exactly; the arrival and the expiration set are
    /// global facts every shard observes identically, so those fields must
    /// already agree (checked in debug builds) and are left untouched. The
    /// merged outcome is therefore field-for-field what a single-shard engine
    /// would have reported.
    pub fn merge_shard(&mut self, other: &EventOutcome) {
        debug_assert_eq!(self.arrived, other.arrived, "shards saw different arrivals");
        debug_assert_eq!(
            self.expired, other.expired,
            "shards disagreed on the expiration set for {}",
            self.arrived
        );
        self.queries_touched_by_arrival += other.queries_touched_by_arrival;
        self.queries_touched_by_expiration += other.queries_touched_by_expiration;
        self.results_changed += other.results_changed;
    }
}

/// A stream event offered to a bounded ingest queue: the document plus an
/// optional **ingest deadline** in stream time.
///
/// The deadline is the admission contract of the overload-robust front-end
/// ([`crate::StreamService`]): an event whose deadline lies strictly before
/// the service's logical clock when shedding runs is dropped (oldest first)
/// instead of processed late. Deadlines live in *stream time*
/// ([`Timestamp`], the same clock as [`Document::arrival`]), never wall
/// clock, so admission decisions — and therefore the set of accepted events
/// — are a pure function of the offered sequence and replay exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestEvent {
    /// The arriving document.
    pub doc: Document,
    /// Latest stream time at which processing this event is still useful;
    /// `None` means the event never expires in the queue.
    pub deadline: Option<Timestamp>,
}

impl IngestEvent {
    /// An event without an ingest deadline (it may still be displaced when
    /// the queue is full, but never expires).
    pub fn new(doc: Document) -> Self {
        Self {
            doc,
            deadline: None,
        }
    }

    /// An event that expires at `deadline` (stream time).
    pub fn with_deadline(doc: Document, deadline: Timestamp) -> Self {
        Self {
            doc,
            deadline: Some(deadline),
        }
    }

    /// An event that expires `slack` after its own arrival timestamp — the
    /// common "process me within Δ of arrival" freshness contract.
    pub fn deadline_in(doc: Document, slack: std::time::Duration) -> Self {
        let deadline = doc.arrival.advance(slack);
        Self::with_deadline(doc, deadline)
    }

    /// Whether this event is past its deadline at stream time `now`
    /// (deadline strictly before `now`; an event is still processable at
    /// exactly its deadline).
    pub fn is_expired(&self, now: Timestamp) -> bool {
        self.deadline.is_some_and(|deadline| deadline < now)
    }
}

/// A continuous top-k monitoring engine.
pub trait Engine {
    /// Registers a continuous query, returning its id. The query's initial
    /// result is computed immediately over the currently valid documents.
    fn register(&mut self, query: ContinuousQuery) -> QueryId;

    /// Registers a burst of queries in order, returning their ids —
    /// **byte-identical** to calling [`Engine::register`] once per query, in
    /// order (ids, initial results and all future event processing must come
    /// out the same; the registration-burst differential tests enforce it).
    /// The default implementation is that loop. Engines with a cheaper bulk
    /// path override it: the ITA engine brings all of the batch's newly-live
    /// shadow terms up in one window merge instead of one backfill scan per
    /// query, and the sharded engine registers with a single fan-out
    /// round-trip per shard.
    fn register_batch(&mut self, queries: Vec<ContinuousQuery>) -> Vec<QueryId> {
        queries.into_iter().map(|q| self.register(q)).collect()
    }

    /// Removes a query from the system. Returns `true` if it existed.
    fn deregister(&mut self, query: QueryId) -> bool;

    /// Processes one stream event: the arrival of `doc` and every expiration
    /// it triggers under the engine's sliding window.
    fn process_document(&mut self, doc: Document) -> EventOutcome;

    /// Processes a burst of stream events in arrival order, returning one
    /// [`EventOutcome`] per document — **byte-identical** to calling
    /// [`Engine::process_document`] once per document, in order. That
    /// equivalence is the contract every override must keep (and the
    /// batch-vs-singles differential tests enforce): batching may only
    /// amortise *dispatch* cost, never change what is computed. The default
    /// implementation is the per-event loop itself; engines with a cheaper
    /// burst path (the sharded engine fans a whole batch out in one channel
    /// round-trip per shard) override it.
    fn process_batch(&mut self, docs: Vec<Document>) -> Vec<EventOutcome> {
        docs.into_iter()
            .map(|doc| self.process_document(doc))
            .collect()
    }

    /// The current top-k of `query`, best first. Fewer than `k` entries are
    /// returned when fewer than `k` valid documents match the query at all.
    fn current_results(&self, query: QueryId) -> Vec<RankedDocument>;

    /// Number of registered queries.
    fn num_queries(&self) -> usize;

    /// Number of currently valid (windowed) documents.
    fn num_valid_documents(&self) -> usize;

    /// The engine's current stream clock (arrival time of the latest event).
    fn clock(&self) -> Timestamp;

    /// A short, stable name for reporting ("ita", "naive", …).
    fn name(&self) -> &'static str;

    /// The most expensive single event observed *inside* any batch this
    /// engine processed via [`Engine::process_batch`], when the engine times
    /// its batched events individually (the sharded engine's workers do,
    /// per-shard). `None` means the engine has no per-event view of its
    /// batches — the monitor can then only time whole batches, and
    /// `max_event_micros` stays 0 on purely batch-fed runs. Cumulative since
    /// the engine's stats were last reset.
    fn batched_max_event_time(&self) -> Option<std::time::Duration> {
        None
    }

    /// Arms one injected fault on `shard`, for engines that support fault
    /// injection: the next stream event that shard processes is applied and
    /// then the worker panics mid-request, exercising the recovery path.
    /// Returns whether a fault was armed. The default is a no-op returning
    /// `false` — which is what lets the testkit's chaos scripts run in
    /// lockstep against fault-free reference engines.
    fn inject_fault(&mut self, _shard: usize) -> bool {
        false
    }

    /// Fault and recovery counters, for engines that track them (`None`
    /// otherwise).
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }

    /// Audits the engine's internal structural invariants, panicking with a
    /// description on violation. The testkit lockstep runner calls this on
    /// every engine after every op when the `invariant-checks` feature (or a
    /// unit-test build) is active, so a differential suite catches a
    /// corrupted structure at the op that corrupted it instead of at the
    /// first divergent result. Engines without deep checks inherit this
    /// no-op default.
    fn check_invariants(&self) {}
}

/// Mutable references to engines are engines: harnesses that want to drive
/// an engine they do not own (e.g. the testkit's lockstep runner over a
/// caller-owned pair, so the caller can inspect concrete state afterwards)
/// box `&mut E` instead of `E`. Every method delegates — including
/// [`Engine::process_batch`], which must reach the engine's native override
/// rather than fall back to the default per-event loop.
impl<E: Engine + ?Sized> Engine for &mut E {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        (**self).register(query)
    }

    fn register_batch(&mut self, queries: Vec<ContinuousQuery>) -> Vec<QueryId> {
        (**self).register_batch(queries)
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        (**self).deregister(query)
    }

    fn process_document(&mut self, doc: Document) -> EventOutcome {
        (**self).process_document(doc)
    }

    fn process_batch(&mut self, docs: Vec<Document>) -> Vec<EventOutcome> {
        (**self).process_batch(docs)
    }

    fn current_results(&self, query: QueryId) -> Vec<RankedDocument> {
        (**self).current_results(query)
    }

    fn num_queries(&self) -> usize {
        (**self).num_queries()
    }

    fn num_valid_documents(&self) -> usize {
        (**self).num_valid_documents()
    }

    fn clock(&self) -> Timestamp {
        (**self).clock()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn batched_max_event_time(&self) -> Option<std::time::Duration> {
        (**self).batched_max_event_time()
    }

    fn inject_fault(&mut self, shard: usize) -> bool {
        (**self).inject_fault(shard)
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        (**self).fault_stats()
    }

    fn check_invariants(&self) {
        (**self).check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_outcome_default_is_zeroed() {
        let o = EventOutcome::default();
        assert_eq!(o.expired, 0);
        assert_eq!(o.queries_touched_by_arrival, 0);
        assert_eq!(o.queries_touched_by_expiration, 0);
        assert_eq!(o.results_changed, 0);
        assert_eq!(o.arrived, DocId(0));
    }

    #[test]
    fn ingest_event_deadlines_are_stream_time() {
        use cts_text::WeightedVector;
        let doc = Document::new(
            DocId(1),
            Timestamp::from_millis(100),
            WeightedVector::from_weights([]),
        );
        let no_deadline = IngestEvent::new(doc.clone());
        assert!(!no_deadline.is_expired(Timestamp::from_millis(u64::MAX / 1_000_000)));
        let ev = IngestEvent::deadline_in(doc.clone(), std::time::Duration::from_millis(50));
        assert_eq!(ev.deadline, Some(Timestamp::from_millis(150)));
        // Processable at exactly the deadline, expired strictly past it.
        assert!(!ev.is_expired(Timestamp::from_millis(150)));
        assert!(ev.is_expired(Timestamp::from_millis(151)));
        let pinned = IngestEvent::with_deadline(doc, Timestamp::from_millis(90));
        assert!(pinned.is_expired(Timestamp::from_millis(100)));
    }

    #[test]
    fn merge_shard_sums_partitioned_counters_only() {
        let mut merged = EventOutcome {
            arrived: DocId(7),
            expired: 2,
            queries_touched_by_arrival: 3,
            queries_touched_by_expiration: 1,
            results_changed: 1,
        };
        let other = EventOutcome {
            arrived: DocId(7),
            expired: 2,
            queries_touched_by_arrival: 5,
            queries_touched_by_expiration: 4,
            results_changed: 2,
        };
        merged.merge_shard(&other);
        assert_eq!(merged.arrived, DocId(7));
        assert_eq!(merged.expired, 2); // global fact, not summed
        assert_eq!(merged.queries_touched_by_arrival, 8);
        assert_eq!(merged.queries_touched_by_expiration, 5);
        assert_eq!(merged.results_changed, 3);
    }
}
