//! The Incremental Threshold Algorithm (paper §III).
//!
//! [`ItaEngine`] maintains, for every registered query `Q`:
//!
//! * a result set `R` ([`crate::ResultSet`]) holding the verified top-k
//!   **and** every other valid document lying above the query's search
//!   frontier (the paper's *unverified* documents);
//! * one *local threshold* `θ_{Q,t}` per query term, the impact weight down
//!   to which the threshold search has examined the inverted list `L_t`; and
//! * the *influence threshold* `τ = Σ_t w_{Q,t}·θ_{Q,t}`, an upper bound on
//!   the score of any document outside `R`.
//!
//! The local thresholds are mirrored into per-list [`ThresholdTree`]s so that
//! a stream event touches only the queries whose frontier it crosses:
//!
//! * **Registration** runs a threshold (TA-style) search down the query's
//!   inverted lists, stopping as soon as `S_k ≥ τ` — usually after reading a
//!   small prefix of each list.
//! * **Arrival** of document `d` probes, for every term `t` of `d`, the
//!   threshold tree of `L_t` for queries with `θ_{Q,t} ≤ w_{d,t}`. Only those
//!   queries score `d`; all others provably cannot have `d` in their top-k.
//!   When `d` enters a top-k, the freed slack (`S_k` grew, `τ` did not) is
//!   reclaimed by *rolling up* local thresholds to the preceding list entries
//!   and evicting unverified documents that lose all support — this is what
//!   keeps `R` small.
//! * **Expiration** probes the same trees; affected queries drop the expired
//!   document from `R`, and if it was in the top-k the threshold search
//!   *resumes* below the recorded thresholds (an incremental *refill*)
//!   instead of restarting from the top of the lists.
//!
//! The engine's per-query invariant, checked by the test suite, is exactly
//! the paper's: every valid document outside `R` scores at most
//! `τ ≤ S_k`, so the top-k inside `R` is the true top-k.
//!
//! Every list access above goes through the impact-list API of `cts_index`
//! (`iter_at_or_below`, `iter_weight_range`, `lowest_above`, …), which since
//! PR 3 is backed by *segmented* impact lists: descent cursors and range
//! probes transparently cross segment boundaries — including equal-weight
//! tie runs that a segment split leaves straddling two segments — while a
//! head-term arrival/expiration shifts at most one segment instead of a
//! window-length `Vec` tail. The engine code is layout-agnostic; the
//! `ita_brute_force_agreement_beyond_segment_capacity` test pins the
//! boundary behaviour at engine level.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use cts_index::{
    DocId, Document, InvertedIndex, QueryId, SlidingWindow, TermArena, ThresholdTree, Timestamp,
};
use cts_text::{TermId, Weight};

use crate::engine::{Engine, EventOutcome};
use crate::query::ContinuousQuery;
use crate::result::{RankedDocument, ResultSet};
use crate::slab::QuerySlab;

/// Tuning knobs of the [`ItaEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItaConfig {
    /// Whether local thresholds are rolled up (and unverified documents
    /// evicted) when an arrival improves a query's top-k. Disabling roll-up
    /// leaves the algorithm correct but lets result sets grow monotonically
    /// between expirations — the ablation measured by `ablation_rollup`.
    pub enable_rollup: bool,
    /// Whether a term-filtered engine admits newly-live terms **lazily**:
    /// registration and migration mark them cold in the shadow index and the
    /// full-window backfill runs only when a threshold search or roll-up
    /// first probes the list (DESIGN.md §9). Disabling restores the eager
    /// backfill-on-register path — the `ablation_register` foil. Unfiltered
    /// engines ignore the knob (their lists are always maintained).
    pub lazy_registration: bool,
}

impl Default for ItaConfig {
    fn default() -> Self {
        Self {
            enable_rollup: true,
            lazy_registration: true,
        }
    }
}

/// A point-in-time snapshot of one query's ITA bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ItaQueryStats {
    /// Current size of the result set `R` (top-k plus unverified documents).
    pub result_set_size: usize,
    /// The current `k`-th best score `S_k` (0 when fewer than `k` results).
    pub kth_score: f64,
    /// The current influence threshold `τ = Σ_t w_{Q,t}·θ_{Q,t}`.
    pub influence_threshold: f64,
    /// Stream arrivals that crossed this query's frontier and were scored.
    pub arrivals_examined: u64,
    /// Expirations that crossed this query's frontier and were processed.
    pub expirations_examined: u64,
    /// Incremental refills performed after top-k expirations.
    pub refills: u64,
    /// Committed threshold roll-up steps.
    pub rollups: u64,
    /// Inverted-list postings scored by this query's threshold searches.
    pub postings_examined: u64,
}

/// Reference counts over the terms the engine's registered queries use, kept
/// dense by term id (interned small integers). Present only on term-filtered
/// engines — the shards of `ShardedItaEngine` — where it decides which
/// composition entries are filed into the (shadow) inverted index.
#[derive(Debug, Clone, Default)]
struct TermRefCounts {
    counts: Vec<u32>,
}

impl TermRefCounts {
    /// Whether any registered query references `term`.
    #[inline]
    fn contains(&self, term: TermId) -> bool {
        self.counts
            .get(term.0 as usize)
            .is_some_and(|count| *count > 0)
    }

    /// Takes one reference on `term`; `true` when this is the first (the
    /// term just became live and its list must be backfilled).
    fn acquire(&mut self, term: TermId) -> bool {
        let slot = term.0 as usize;
        if slot >= self.counts.len() {
            self.counts.resize(slot + 1, 0);
        }
        self.counts[slot] += 1;
        self.counts[slot] == 1
    }

    /// Drops one reference on `term`; `true` when it was the last (the term
    /// just died and its list can be retired).
    fn release(&mut self, term: TermId) -> bool {
        let count = &mut self.counts[term.0 as usize];
        debug_assert!(*count > 0, "release of unreferenced term {term}");
        *count -= 1;
        *count == 0
    }
}

/// A query's complete ITA state, packaged for migration between engines —
/// the payload of the sharded engine's skew rebalancer. Produced by
/// [`ItaEngine::extract_query`] and consumed by [`ItaEngine::install_query`];
/// it carries the query itself, its result set `R`, its local thresholds
/// `θ_{Q,t}` and its bookkeeping counters, so the receiving engine resumes
/// maintenance **exactly** where the sender stopped — no threshold search is
/// re-run, no result is recomputed, and every future event is processed
/// byte-identically to an engine that had hosted the query all along.
#[derive(Debug, Clone)]
pub struct QueryMigration {
    state: QueryState,
}

impl QueryMigration {
    /// The terms (with local thresholds) the migrated query watches —
    /// what the receiving shard must cover in its shadow index.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.state.thresholds.iter().map(|(term, _)| *term)
    }
}

/// Per-query mutable state.
#[derive(Debug, Clone)]
struct QueryState {
    query: ContinuousQuery,
    results: ResultSet,
    /// `⟨t, θ_{Q,t}⟩`, aligned with the query's term order.
    thresholds: Vec<(TermId, Weight)>,
    arrivals_examined: u64,
    expirations_examined: u64,
    refills: u64,
    rollups: u64,
    postings_examined: u64,
}

impl QueryState {
    fn tau(&self) -> f64 {
        self.thresholds
            .iter()
            .map(|(t, theta)| self.query.weight(*t).get() * theta.get())
            .sum()
    }
}

/// The paper's monitoring algorithm.
#[derive(Debug, Clone)]
pub struct ItaEngine {
    window: SlidingWindow,
    config: ItaConfig,
    index: InvertedIndex,
    /// One threshold tree per term that occurs in at least one query,
    /// in a dense term-id-indexed arena (terms are interned small integers).
    trees: TermArena<ThresholdTree>,
    queries: QuerySlab<QueryState>,
    /// Reused per-event buffer for the affected-query probe; kept on the
    /// engine so steady-state event processing allocates nothing.
    scratch: Vec<QueryId>,
    /// `Some` on term-filtered engines (shards): the index files postings
    /// only for terms referenced by at least one registered query.
    term_filter: Option<TermRefCounts>,
    next_query: u32,
    clock: Timestamp,
}

impl ItaEngine {
    /// Creates an engine with the given sliding-window policy.
    pub fn new(window: SlidingWindow, config: ItaConfig) -> Self {
        Self {
            window,
            config,
            index: InvertedIndex::new(),
            trees: TermArena::new(),
            queries: QuerySlab::new(),
            scratch: Vec::new(),
            term_filter: None,
            next_query: 0,
            clock: Timestamp::ZERO,
        }
    }

    /// Creates a **term-filtered** engine: the inverted index files postings
    /// only for terms referenced by at least one registered query
    /// (registration backfills a new term's list from the stored window;
    /// deregistration retires lists whose last referencing query left). For
    /// its registered queries it is exactly equivalent to an unfiltered
    /// engine — every list a query's threshold search, roll-up or probe can
    /// touch is complete — while skipping index maintenance for the (large)
    /// majority of composition terms no query watches. This is the shard
    /// configuration of [`crate::ShardedItaEngine`].
    pub fn term_filtered(window: SlidingWindow, config: ItaConfig) -> Self {
        Self {
            term_filter: Some(TermRefCounts::default()),
            ..Self::new(window, config)
        }
    }

    /// Whether this engine maintains a term-filtered (shadow) index.
    pub fn is_term_filtered(&self) -> bool {
        self.term_filter.is_some()
    }

    /// The engine's configuration.
    pub fn config(&self) -> ItaConfig {
        self.config
    }

    /// The sliding-window policy in force.
    pub fn window(&self) -> SlidingWindow {
        self.window
    }

    /// A snapshot of `query`'s bookkeeping, if it is registered.
    pub fn query_stats(&self, query: QueryId) -> Option<ItaQueryStats> {
        let state = self.queries.get(query)?;
        Some(ItaQueryStats {
            result_set_size: state.results.len(),
            kth_score: state.results.kth_score(state.query.k()),
            influence_threshold: state.tau(),
            arrivals_examined: state.arrivals_examined,
            expirations_examined: state.expirations_examined,
            refills: state.refills,
            rollups: state.rollups,
            postings_examined: state.postings_examined,
        })
    }

    /// A point-in-time summary of the inverted index (documents, lists,
    /// postings). Exposed for the sweep harness and soak tests.
    pub fn index_stats(&self) -> cts_index::IndexStats {
        self.index.stats()
    }

    /// Impact entries filed by the registration-path backfills of this
    /// engine's index so far — the registration-cost regression counter (see
    /// [`cts_index::InvertedIndex::register_postings_touched`]). Always 0 on
    /// unfiltered engines.
    pub fn register_postings_touched(&self) -> u64 {
        self.index.register_postings_touched()
    }

    /// Number of shadow-index terms currently cold (live in the term filter
    /// but not yet materialised). Always 0 on unfiltered engines and under
    /// eager registration.
    pub fn num_cold_terms(&self) -> usize {
        self.index.num_cold()
    }

    /// Iterates over the currently valid documents in arrival order.
    /// Exposed so validation harnesses (e.g. the paper-scale soak) can
    /// re-evaluate queries against the engine's own window without keeping a
    /// second copy of it.
    pub fn store_documents(&self) -> impl Iterator<Item = &Document> {
        self.index.store().iter()
    }

    /// The local threshold `θ_{Q,t}`, if `query` is registered and contains
    /// `term`. Exposed for tests and benchmarks.
    pub fn local_threshold(&self, query: QueryId, term: TermId) -> Option<Weight> {
        self.queries
            .get(query)?
            .thresholds
            .iter()
            .find(|(t, _)| *t == term)
            .map(|(_, theta)| *theta)
    }

    /// Materialises any still-cold terms of `qid` before its lists are
    /// probed — the whole batch of cold terms in one store pass. The
    /// `num_cold` fast path keeps this a single branch on engines with no
    /// cold terms (unfiltered engines, and filtered ones in steady state).
    fn ensure_query_terms_warm(&mut self, qid: QueryId) {
        if self.index.num_cold() == 0 {
            return;
        }
        // cts-lint: allow(panic-in-hot-path, callers pass ids taken from the live query slab)
        let state = self.queries.get(qid).expect("query exists");
        let cold: Vec<TermId> = state
            .thresholds
            .iter()
            .map(|(term, _)| *term)
            .filter(|term| self.index.is_cold(*term))
            .collect();
        if !cold.is_empty() {
            self.index.materialise_terms(&cold);
        }
    }

    /// Runs (or resumes) the threshold search for `qid` until `S_k ≥ τ`,
    /// then reconciles the per-list threshold trees with the new frontier.
    fn run_threshold_search(&mut self, qid: QueryId, register: bool) {
        self.ensure_query_terms_warm(qid);
        // cts-lint: allow(panic-in-hot-path, callers pass ids taken from the live query slab)
        let state = self.queries.get_mut(qid).expect("query exists");
        let before: Vec<Weight> = state.thresholds.iter().map(|(_, theta)| *theta).collect();
        threshold_descent(&self.index, state);
        for ((term, after), before) in state.thresholds.iter().zip(before) {
            let tree = self.trees.get_or_default(*term);
            if register {
                tree.insert(qid, *after);
            } else if before != *after {
                tree.update(qid, before, *after);
            }
        }
    }

    /// Fills `self.scratch` with the queries whose frontier `composition`
    /// crosses — every `Q` with `θ_{Q,t} ≤ w_{d,t}` for at least one term `t`
    /// of the document — sorted by query id and deduplicated. Probing is one
    /// arena index plus one `partition_point` per term; the buffer is reused
    /// across events so the hot path performs no allocation.
    fn collect_affected_queries(&mut self, composition: &cts_text::WeightedVector) {
        self.scratch.clear();
        for entry in composition.as_slice() {
            if let Some(tree) = self.trees.get(entry.term) {
                self.scratch
                    .extend(tree.affected_by(entry.weight).map(|hit| hit.query));
            }
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
    }

    /// Handles the arrival side of one stream event. The document is already
    /// in the index. Returns `(queries_touched, results_changed)`.
    fn handle_arrival(&mut self, doc: &Document) -> (usize, usize) {
        self.collect_affected_queries(&doc.composition);
        let affected = std::mem::take(&mut self.scratch);
        let touched = affected.len();
        let mut changed = 0;
        for &qid in &affected {
            // cts-lint: allow(panic-in-hot-path, deregistration removes tree entries, so probes only yield live queries)
            let state = self.queries.get_mut(qid).expect("tree entries are live");
            state.arrivals_examined += 1;
            state.postings_examined += 1;
            let score = state.query.score(&doc.composition);
            state.results.insert(doc.id, score);
            if state.results.is_in_top_k(doc.id, state.query.k()) {
                changed += 1;
                if self.config.enable_rollup {
                    self.roll_up(qid);
                }
            }
        }
        self.scratch = affected;
        (touched, changed)
    }

    /// Handles one expiration. The document has already been removed from
    /// the index. Returns `(queries_touched, results_changed)`.
    fn handle_expiration(&mut self, doc: &Document) -> (usize, usize) {
        self.collect_affected_queries(&doc.composition);
        let affected = std::mem::take(&mut self.scratch);
        let touched = affected.len();
        let mut changed = 0;
        for &qid in &affected {
            // cts-lint: allow(panic-in-hot-path, deregistration removes tree entries, so probes only yield live queries)
            let state = self.queries.get_mut(qid).expect("tree entries are live");
            state.expirations_examined += 1;
            if !state.results.contains(doc.id) {
                // The document sat exactly on the frontier without having
                // been examined; nothing to repair.
                continue;
            }
            let was_top_k = state.results.is_in_top_k(doc.id, state.query.k());
            state.results.remove(doc.id);
            if was_top_k {
                changed += 1;
                state.refills += 1;
                self.run_threshold_search(qid, false);
            }
        }
        self.scratch = affected;
        (touched, changed)
    }

    /// Rolls `qid`'s local thresholds up the lists while the resulting
    /// influence threshold stays at or below `S_k`, evicting unverified
    /// documents whose only support was the reclaimed band (paper §III-C).
    fn roll_up(&mut self, qid: QueryId) {
        self.ensure_query_terms_warm(qid);
        // cts-lint: allow(panic-in-hot-path, the only caller just looked the query up in the slab)
        let state = self.queries.get_mut(qid).expect("query exists");
        let k = state.query.k();
        loop {
            let s_k = state.results.kth_score(k);
            let tau = state.tau();
            // Pick the roll-up step with the largest slack reclaim that keeps
            // τ' ≤ S_k. `lowest_above` yields the preceding list entry c_t.
            let mut best: Option<(usize, Weight, f64)> = None;
            for (i, (term, theta)) in state.thresholds.iter().enumerate() {
                let Some(list) = self.index.list(*term) else {
                    continue;
                };
                let Some(above) = list.lowest_above(*theta) else {
                    continue;
                };
                let gain = state.query.weight(*term).get() * (above.weight - *theta).get();
                if tau + gain <= s_k && best.as_ref().is_none_or(|(_, _, g)| gain > *g) {
                    best = Some((i, above.weight, gain));
                }
            }
            let Some((slot, new_theta, _)) = best else {
                break;
            };
            let (term, old_theta) = state.thresholds[slot];
            // Documents whose weight falls in [θ, c_t) lose this list's
            // support; evict them unless another list still covers them.
            let band: Vec<DocId> = self
                .index
                .list(term)
                .map(|list| {
                    list.iter_weight_range(old_theta, new_theta)
                        .map(|p| p.doc)
                        .collect()
                })
                .unwrap_or_default();
            state.thresholds[slot].1 = new_theta;
            for doc in band {
                if !state.results.contains(doc) {
                    continue;
                }
                let composition = &self
                    .index
                    .store()
                    .get(doc)
                    // cts-lint: allow(panic-in-hot-path, the band came from the index's own lists, which only reference stored documents)
                    .expect("banded documents are valid")
                    .composition;
                let supported = state
                    .thresholds
                    .iter()
                    .any(|(t, theta)| composition.impact(*t) >= *theta && composition.contains(*t));
                if !supported {
                    debug_assert!(
                        !state.results.is_in_top_k(doc, k),
                        "roll-up must never evict a top-k document"
                    );
                    state.results.remove(doc);
                }
            }
            state.rollups += 1;
            self.trees
                .get_mut(term)
                // cts-lint: allow(panic-in-hot-path, registration filed a tree entry for every query term)
                .expect("tree exists for query term")
                .update(qid, old_theta, new_theta);
        }
    }
}

/// Runs the (initial or resumed) threshold search: repeatedly examines the
/// highest-impact unexamined posting among the query's lists, maintaining
/// `R` and the frontier, until `S_k ≥ τ` or the lists are exhausted.
fn threshold_descent(index: &InvertedIndex, state: &mut QueryState) {
    let k = state.query.k();
    loop {
        // Peek the best unexamined posting of each list (at or below the
        // current frontier, skipping documents already in R — ties at the
        // frontier may or may not have been examined).
        let mut peeks: Vec<Option<cts_index::Posting>> = Vec::with_capacity(state.thresholds.len());
        let mut tau_next = 0.0;
        for (term, theta) in &state.thresholds {
            let peek = index.list(*term).and_then(|list| {
                list.iter_at_or_below(*theta)
                    .find(|p| !state.results.contains(p.doc))
            });
            if let Some(p) = peek {
                tau_next += state.query.weight(*term).get() * p.weight.get();
            }
            peeks.push(peek);
        }

        // Stop only when `S_k` STRICTLY exceeds the bound (or nothing is
        // left to examine): synthetic integer term frequencies make exact
        // score ties common, and a document tied with `S_k` at the frontier
        // may out-rank an in-R document under the doc-id tie-break, so the
        // search must keep going until ties are provably impossible.
        let exhausted = peeks.iter().all(Option::is_none);
        if exhausted || state.results.kth_score(k) > tau_next {
            // Done: snap every local threshold to its peek frontier (every
            // posting strictly above it is in R).
            for ((_, theta), peek) in state.thresholds.iter_mut().zip(&peeks) {
                *theta = peek.map(|p| p.weight).unwrap_or(Weight::ZERO);
            }
            return;
        }

        // Examine the whole tie group of the most promising list.
        let (slot, posting) = peeks
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, *p)))
            .max_by(|(i, a), (j, b)| {
                let (ta, _) = state.thresholds[*i];
                let (tb, _) = state.thresholds[*j];
                let ca = state.query.weight(ta).get() * a.weight.get();
                let cb = state.query.weight(tb).get() * b.weight.get();
                // cts-lint: allow(panic-in-hot-path, Weight::new rejects NaN, so products of weights compare totally)
                ca.partial_cmp(&cb).expect("weights are not NaN")
            })
            // cts-lint: allow(panic-in-hot-path, the stop test above returned unless some peek is Some)
            .expect("kth_score < tau_next implies an unexamined posting");
        // Examine the full tie group at that weight so the frontier is exact:
        // afterwards, every posting strictly above θ is guaranteed to be in R.
        let (term, _) = state.thresholds[slot];
        let group_weight = posting.weight;
        let members: Vec<DocId> = index
            .list(term)
            // cts-lint: allow(panic-in-hot-path, the chosen slot's peek came from this exact list)
            .expect("peeked list exists")
            .iter_at_or_below(group_weight)
            .take_while(|p| p.weight == group_weight)
            .map(|p| p.doc)
            .collect();
        for doc in members {
            if state.results.contains(doc) {
                continue;
            }
            let composition = &index
                .store()
                .get(doc)
                // cts-lint: allow(panic-in-hot-path, postings only reference documents held by the store)
                .expect("indexed documents are valid")
                .composition;
            let score = state.query.score(composition);
            state.results.insert(doc, score);
            state.postings_examined += 1;
        }
        state.thresholds[slot].1 = group_weight;
    }
}

impl ItaEngine {
    /// Registers `query` under a caller-chosen id — the sharded engine
    /// assigns ids globally and routes each query to one shard, so the shard
    /// must not mint its own. Ids handed out by a later [`Engine::register`]
    /// never collide with ids registered this way.
    ///
    /// # Panics
    ///
    /// Panics if `qid` is already registered.
    pub fn register_with_id(&mut self, qid: QueryId, query: ContinuousQuery) {
        if let Some(filter) = &mut self.term_filter {
            let newly_live: Vec<TermId> = query
                .terms()
                .filter(|(term, _)| filter.acquire(*term))
                .map(|(term, _)| term)
                .collect();
            self.admit_newly_live(newly_live);
        }
        self.finish_register(qid, query);
    }

    /// Registers a whole batch of queries under caller-chosen ids — the
    /// shard-side half of [`Engine::register_batch`]. All of the batch's
    /// newly-live terms are brought up in **one sorted merge over the stored
    /// window** (one [`InvertedIndex::backfill_terms`] pass), and only then
    /// do the per-query threshold searches run — each is byte-identical to
    /// the one a lone [`ItaEngine::register_with_id`] call would have run,
    /// because registration reads the index and writes only the registering
    /// query's own state. The old path paid that window scan once *per
    /// query*; this is the registration cliff fix of DESIGN.md §9.
    ///
    /// # Panics
    ///
    /// Panics if any id is already registered.
    pub fn register_batch_with_ids(&mut self, batch: Vec<(QueryId, ContinuousQuery)>) {
        if let Some(filter) = &mut self.term_filter {
            // `acquire` returns true exactly once per distinct term across
            // the whole batch, so `newly_live` is duplicate-free.
            let mut newly_live: Vec<TermId> = Vec::new();
            for (_, query) in &batch {
                newly_live.extend(
                    query
                        .terms()
                        .filter(|(term, _)| filter.acquire(*term))
                        .map(|(term, _)| term),
                );
            }
            // Eager on purpose, even under lazy registration: the threshold
            // searches below probe every one of these lists immediately, so
            // cold marks would only re-discover them one query at a time.
            if !newly_live.is_empty() {
                self.index.backfill_terms(&newly_live);
            }
        }
        for (qid, query) in batch {
            self.finish_register(qid, query);
        }
    }

    /// Brings newly-live shadow terms in: cold marks under lazy registration
    /// (the backfill runs at first probe), an immediate one-pass backfill
    /// otherwise.
    fn admit_newly_live(&mut self, newly_live: Vec<TermId>) {
        if newly_live.is_empty() {
            return;
        }
        if self.config.lazy_registration {
            for term in newly_live {
                self.index.mark_cold(term);
            }
        } else {
            self.index.backfill_terms(&newly_live);
        }
    }

    /// The filter-independent tail of registration: record the query state
    /// and run its initial threshold search.
    fn finish_register(&mut self, qid: QueryId, query: ContinuousQuery) {
        self.next_query = self.next_query.max(qid.0.saturating_add(1));
        let thresholds = query
            .terms()
            .map(|(t, _)| (t, Weight::new(f64::INFINITY)))
            .collect();
        let previous = self.queries.insert(
            qid,
            QueryState {
                query,
                results: ResultSet::new(),
                thresholds,
                arrivals_examined: 0,
                expirations_examined: 0,
                refills: 0,
                rollups: 0,
                postings_examined: 0,
            },
        );
        assert!(previous.is_none(), "query id {qid} is already registered");
        self.run_threshold_search(qid, true);
    }

    /// Removes `query` from this engine **without discarding its state**,
    /// returning the [`QueryMigration`] package an [`ItaEngine::install_query`]
    /// call on another engine (over the same window contents) consumes. The
    /// engine-side teardown is exactly [`Engine::deregister`]'s: threshold-tree
    /// entries are removed (empty trees retired) and, on a term-filtered
    /// engine, term references are released (last-reference lists dropped).
    /// Returns `None` if the query is not registered.
    pub fn extract_query(&mut self, query: QueryId) -> Option<QueryMigration> {
        let state = self.queries.remove(query)?;
        for (term, theta) in &state.thresholds {
            if let Some(tree) = self.trees.get_mut(*term) {
                tree.remove(query, *theta);
                if tree.is_empty() {
                    self.trees.remove(*term);
                }
            }
            if let Some(filter) = &mut self.term_filter {
                if filter.release(*term) {
                    self.index.drop_list(*term);
                }
            }
        }
        Some(QueryMigration { state })
    }

    /// Installs a query previously [`ItaEngine::extract_query`]ed from an
    /// engine whose valid-document window matches this one's (the sharded
    /// engine's shards all mirror the same window, so any shard pair
    /// qualifies). The migrated thresholds are filed into the threshold trees
    /// verbatim and, on a term-filtered engine, newly-live terms are admitted
    /// to the shadow index (cold under lazy registration, backfilled eagerly
    /// otherwise) — after which this engine maintains the query
    /// byte-identically to the one it left.
    ///
    /// # Panics
    ///
    /// Panics if `qid` is already registered here.
    pub fn install_query(&mut self, qid: QueryId, migration: QueryMigration) {
        self.next_query = self.next_query.max(qid.0.saturating_add(1));
        let QueryMigration { state } = migration;
        if let Some(filter) = &mut self.term_filter {
            // Under lazy registration the newly-live terms only go cold here:
            // installation runs no threshold search, so a migration costs no
            // window scan at all until (unless) the query is next probed.
            let newly_live: Vec<TermId> = state
                .thresholds
                .iter()
                .filter(|(term, _)| filter.acquire(*term))
                .map(|(term, _)| *term)
                .collect();
            self.admit_newly_live(newly_live);
        }
        for (term, theta) in &state.thresholds {
            self.trees.get_or_default(*term).insert(qid, *theta);
        }
        let previous = self.queries.insert(qid, state);
        assert!(previous.is_none(), "query id {qid} is already registered");
    }

    /// Processes one already-shared stream event — the fan-out path of the
    /// sharded engine, where every shard receives the same `Arc`'d document
    /// and the window's composition lists exist once in memory no matter how
    /// many shards mirror them. [`Engine::process_document`] wraps and
    /// delegates here.
    pub fn process_shared(&mut self, doc: Arc<Document>) -> EventOutcome {
        self.clock = doc.arrival;
        let mut outcome = EventOutcome {
            arrived: doc.id,
            ..EventOutcome::default()
        };

        match &self.term_filter {
            Some(filter) => self
                .index
                .insert_shared_filtered(Arc::clone(&doc), |term| filter.contains(term)),
            None => self.index.insert_shared(Arc::clone(&doc)),
        }
        let (touched, changed) = self.handle_arrival(&doc);
        outcome.queries_touched_by_arrival = touched;
        outcome.results_changed += changed;

        let expired = self.window.expired(self.index.store(), self.clock);
        outcome.expired = expired.len();
        for id in expired {
            let doc = self
                .index
                .remove_document(id)
                // cts-lint: allow(panic-in-hot-path, the expiration set was computed from the same store one line up)
                .expect("window reported a valid document");
            let (touched, changed) = self.handle_expiration(&doc);
            outcome.queries_touched_by_expiration += touched;
            outcome.results_changed += changed;
        }
        outcome
    }

    /// Audits the engine's deep structural invariants, panicking with a
    /// description on violation (DESIGN.md §11): the inverted index's own
    /// invariants, every threshold tree's strict ordering, two-way agreement
    /// between tree entries and the live queries' recorded local thresholds,
    /// result sets referencing only valid (windowed) documents, and — on
    /// term-filtered engines — term refcounts equal to the number of live
    /// referencing queries, with every cold term still referenced. Driven by
    /// the testkit lockstep runner when the `invariant-checks` feature (or a
    /// unit-test build) is active; far too expensive for production paths.
    pub fn check_invariants(&self) {
        self.index.check_invariants();
        for (term, tree) in self.trees.iter() {
            assert!(
                !tree.is_empty(),
                "empty threshold tree for {term} was not retired"
            );
            tree.check_invariants();
            for entry in tree.iter() {
                let Some(state) = self.queries.get(entry.query) else {
                    // cts-lint: allow(panic-in-hot-path, audit-only diagnostics, never on a hot path)
                    panic!(
                        "threshold tree for {term} references dead query {}",
                        entry.query
                    );
                };
                assert!(
                    state
                        .thresholds
                        .iter()
                        .any(|(t, theta)| *t == term && *theta == entry.threshold),
                    "tree entry θ={} for {} in {term} disagrees with the query's recorded thresholds",
                    entry.threshold,
                    entry.query
                );
            }
        }
        let mut live_refs: Vec<u32> = Vec::new();
        for (qid, state) in self.queries.iter() {
            for (term, theta) in &state.thresholds {
                let Some(tree) = self.trees.get(*term) else {
                    // cts-lint: allow(panic-in-hot-path, audit-only diagnostics, never on a hot path)
                    panic!("no threshold tree covers {qid}'s term {term}");
                };
                assert!(
                    tree.iter().any(|e| e.query == qid && e.threshold == *theta),
                    "{qid}'s recorded threshold θ={theta} for {term} is missing from the tree"
                );
                let slot = term.0 as usize;
                if slot >= live_refs.len() {
                    live_refs.resize(slot + 1, 0);
                }
                live_refs[slot] += 1;
            }
            for ranked in state.results.iter() {
                assert!(
                    self.index.store().get(ranked.doc).is_some(),
                    "{qid}'s result set holds expired document {}",
                    ranked.doc
                );
            }
        }
        if let Some(filter) = &self.term_filter {
            for slot in 0..live_refs.len().max(filter.counts.len()) {
                let counted = filter.counts.get(slot).copied().unwrap_or(0);
                let live = live_refs.get(slot).copied().unwrap_or(0);
                assert_eq!(
                    counted,
                    live,
                    "term {} refcount {counted} disagrees with {live} live referencing queries",
                    TermId(slot as u32)
                );
            }
            for term in self.index.cold_terms() {
                assert!(
                    filter.contains(term),
                    "{term} is cold in the shadow index but no live query references it"
                );
            }
        }
    }
}

impl Engine for ItaEngine {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        let qid = QueryId(self.next_query);
        self.register_with_id(qid, query);
        qid
    }

    fn register_batch(&mut self, queries: Vec<ContinuousQuery>) -> Vec<QueryId> {
        let batch: Vec<(QueryId, ContinuousQuery)> = queries
            .into_iter()
            .map(|query| {
                let qid = QueryId(self.next_query);
                self.next_query += 1;
                (qid, query)
            })
            .collect();
        let ids: Vec<QueryId> = batch.iter().map(|(qid, _)| *qid).collect();
        self.register_batch_with_ids(batch);
        ids
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        // Deregistration is extraction with the migrated state discarded.
        self.extract_query(query).is_some()
    }

    fn process_document(&mut self, doc: Document) -> EventOutcome {
        self.process_shared(Arc::new(doc))
    }

    fn current_results(&self, query: QueryId) -> Vec<RankedDocument> {
        self.queries
            .get(query)
            .map(|state| state.results.top(state.query.k()))
            .unwrap_or_default()
    }

    fn num_queries(&self) -> usize {
        self.queries.len()
    }

    fn num_valid_documents(&self) -> usize {
        self.index.num_documents()
    }

    fn clock(&self) -> Timestamp {
        self.clock
    }

    fn name(&self) -> &'static str {
        "ita"
    }

    fn check_invariants(&self) {
        ItaEngine::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_text::WeightedVector;

    fn doc(id: u64, terms: &[(u32, f64)]) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w))),
        )
    }

    fn engine(window: usize) -> ItaEngine {
        ItaEngine::new(SlidingWindow::count_based(window), ItaConfig::default())
    }

    /// The worked example of the paper's §III (Figure 2): query {white,
    /// tower} with k = 2 over documents d1..d8.
    fn paper_lists_engine() -> (ItaEngine, QueryId) {
        let mut e = engine(100);
        // L_white (term 20) and L_tower (term 11) impact entries.
        let docs = [
            (1, vec![(11, 0.08), (20, 0.06)]),
            (2, vec![(11, 0.05), (20, 0.09)]),
            (3, vec![(20, 0.04)]),
            (5, vec![(11, 0.07)]),
            (6, vec![(11, 0.16), (20, 0.03)]),
            (7, vec![(11, 0.10)]),
            (8, vec![(11, 0.05)]),
            (9, vec![(20, 0.16)]),
        ];
        for (id, terms) in docs {
            e.process_document(doc(id, &terms));
        }
        let q = e.register(ContinuousQuery::from_weights(
            [(TermId(11), 0.447), (TermId(20), 0.894)],
            2,
        ));
        (e, q)
    }

    fn top_ids(e: &ItaEngine, q: QueryId) -> Vec<u64> {
        e.current_results(q).iter().map(|r| r.doc.0).collect()
    }

    fn brute_force_top(e: &ItaEngine, query: &ContinuousQuery) -> Vec<u64> {
        let mut rs = ResultSet::new();
        for d in e.index.store().iter() {
            let s = query.score(&d.composition);
            if s > 0.0 {
                rs.insert(d.id, s);
            }
        }
        rs.top(query.k()).iter().map(|r| r.doc.0).collect()
    }

    #[test]
    fn initial_search_finds_the_true_top_k() {
        let (e, q) = paper_lists_engine();
        let top = e.current_results(q);
        assert_eq!(top.len(), 2);
        // d9 scores 0.894·0.16 ≈ 0.143; d2 scores 0.447·0.05 + 0.894·0.09 ≈ 0.103.
        assert_eq!(top[0].doc, DocId(9));
        assert_eq!(top[1].doc, DocId(2));
        assert!(top[0].score > top[1].score);
    }

    #[test]
    fn initial_search_reads_only_a_prefix() {
        let (e, q) = paper_lists_engine();
        let stats = e.query_stats(q).unwrap();
        // 8 documents are valid; the threshold search must not score all of
        // them (the paper's Figure 2 stops after 5 examinations).
        assert!(
            stats.postings_examined < 8,
            "examined {}",
            stats.postings_examined
        );
        assert!(stats.influence_threshold <= stats.kth_score + 1e-12);
    }

    #[test]
    fn arrival_crossing_the_frontier_updates_the_top_k() {
        let (mut e, q) = paper_lists_engine();
        let out = e.process_document(doc(20, &[(20, 0.17)]));
        assert_eq!(out.queries_touched_by_arrival, 1);
        assert_eq!(out.results_changed, 1);
        assert_eq!(top_ids(&e, q), vec![20, 9]);
    }

    #[test]
    fn arrival_below_the_frontier_is_ignored() {
        let (mut e, q) = paper_lists_engine();
        let before = top_ids(&e, q);
        let out = e.process_document(doc(21, &[(11, 0.001), (20, 0.001)]));
        assert_eq!(out.queries_touched_by_arrival, 0);
        assert_eq!(out.results_changed, 0);
        assert_eq!(top_ids(&e, q), before);
    }

    #[test]
    fn arrival_without_query_terms_is_ignored() {
        let (mut e, q) = paper_lists_engine();
        let out = e.process_document(doc(22, &[(99, 0.9)]));
        assert_eq!(out.queries_touched_by_arrival, 0);
        assert_eq!(top_ids(&e, q), vec![9, 2]);
    }

    #[test]
    fn expiration_of_top_k_document_triggers_refill() {
        let mut e = engine(3);
        let q = e.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        e.process_document(doc(0, &[(1, 0.9)]));
        e.process_document(doc(1, &[(1, 0.5)]));
        e.process_document(doc(2, &[(1, 0.7)]));
        assert_eq!(top_ids(&e, q), vec![0, 2]);
        // Window size 3: arrival of d3 expires d0 (the best document).
        let out = e.process_document(doc(3, &[(1, 0.1)]));
        assert_eq!(out.expired, 1);
        assert!(out.queries_touched_by_expiration >= 1);
        assert_eq!(top_ids(&e, q), vec![2, 1]);
        assert!(e.query_stats(q).unwrap().refills >= 1);
    }

    #[test]
    fn results_track_brute_force_over_a_churning_window() {
        let mut e = engine(10);
        let query = ContinuousQuery::from_weights([(TermId(2), 0.6), (TermId(5), 0.8)], 3);
        let q = e.register(query.clone());
        for i in 0..200u64 {
            let t1 = (i % 7) as u32;
            let t2 = ((i * 3 + 1) % 7) as u32;
            let w1 = 0.05 + (i % 13) as f64 * 0.03;
            let w2 = 0.05 + (i % 5) as f64 * 0.11;
            e.process_document(doc(i, &[(t1, w1), (t2, w2)]));
            assert_eq!(
                top_ids(&e, q),
                brute_force_top(&e, &query),
                "diverged at event {i}"
            );
        }
    }

    #[test]
    fn ita_brute_force_agreement_beyond_segment_capacity() {
        // A 400-document window over a 3-term vocabulary: each inverted list
        // grows far past the default segment capacity (128), and the discrete
        // weight palette produces tie runs much longer than one segment, so
        // the initial descent, the refill resume after a top-k expiration,
        // and the roll-up range probe all cross segment boundaries —
        // including boundaries that cut straight through a tie run.
        let mut e = engine(400);
        let query = ContinuousQuery::from_weights([(TermId(0), 0.7), (TermId(1), 0.3)], 5);
        let q = e.register(query.clone());
        for i in 0..1_200u64 {
            let w0 = 0.1 + (i % 4) as f64 * 0.2; // 4 distinct weights → long ties
            let w1 = 0.15 + (i % 3) as f64 * 0.25;
            e.process_document(doc(i, &[((i % 3) as u32, w0), (1, w1)]));
            if i % 50 == 0 || i > 1_100 {
                assert_eq!(
                    top_ids(&e, q),
                    brute_force_top(&e, &query),
                    "diverged at event {i}"
                );
            }
        }
        // The window really did force multi-segment lists. Tied to the real
        // capacity constant so this test fails loudly (instead of silently
        // losing its purpose) if the default segment size is ever raised
        // past what this window produces.
        let stats = e.index_stats();
        assert!(
            stats.longest_list > cts_index::segmented::DEFAULT_SEGMENT_CAPACITY,
            "longest list {} never crossed a segment boundary",
            stats.longest_list
        );
        let s = e.query_stats(q).unwrap();
        assert!(s.refills > 0, "no refill crossed a boundary");
        assert!(s.rollups > 0, "no roll-up crossed a boundary");
    }

    #[test]
    fn rollup_keeps_result_sets_smaller() {
        let mut with = ItaEngine::new(SlidingWindow::count_based(64), ItaConfig::default());
        let mut without = ItaEngine::new(
            SlidingWindow::count_based(64),
            ItaConfig {
                enable_rollup: false,
                ..ItaConfig::default()
            },
        );
        let query = ContinuousQuery::from_weights([(TermId(0), 1.0)], 2);
        let qa = with.register(query.clone());
        let qb = without.register(query);
        for i in 0..300u64 {
            // Steadily improving scores force frequent top-k turnover.
            let d = doc(i, &[(0, 0.1 + (i % 50) as f64 * 0.01)]);
            with.process_document(d.clone());
            without.process_document(d);
            assert_eq!(top_ids(&with, qa), top_ids(&without, qb));
        }
        let s_with = with.query_stats(qa).unwrap();
        let s_without = without.query_stats(qb).unwrap();
        assert!(s_with.rollups > 0);
        assert_eq!(s_without.rollups, 0);
        assert!(
            s_with.result_set_size <= s_without.result_set_size,
            "rollup {} vs plain {}",
            s_with.result_set_size,
            s_without.result_set_size
        );
    }

    #[test]
    fn invariant_every_document_above_a_threshold_is_in_r() {
        let mut e = engine(20);
        let q = e.register(ContinuousQuery::from_weights(
            [(TermId(1), 0.5), (TermId(2), 0.5)],
            2,
        ));
        for i in 0..100u64 {
            e.process_document(doc(
                i,
                &[
                    ((i % 3) as u32, 0.1 + (i % 11) as f64 * 0.05),
                    (3 + (i % 2) as u32, 0.2),
                ],
            ));
            let state = e.queries.get(q).unwrap();
            for (term, theta) in &state.thresholds {
                if let Some(list) = e.index.list(*term) {
                    for p in list.iter() {
                        if p.weight > *theta {
                            assert!(
                                state.results.contains(p.doc),
                                "event {i}: {} above θ={} in {} missing from R",
                                p.doc,
                                theta,
                                term
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn term_filtered_engine_matches_unfiltered_through_churn() {
        let mut full = engine(12);
        let mut filtered =
            ItaEngine::term_filtered(SlidingWindow::count_based(12), ItaConfig::default());
        assert!(filtered.is_term_filtered() && !full.is_term_filtered());
        let q1 = ContinuousQuery::from_weights([(TermId(0), 0.7), (TermId(1), 0.3)], 3);
        let q2 = ContinuousQuery::from_weights([(TermId(2), 1.0)], 2);
        let feed = |full: &mut ItaEngine, filtered: &mut ItaEngine, lo: u64, hi: u64| {
            for i in lo..hi {
                let d = doc(
                    i,
                    &[
                        ((i % 5) as u32, 0.1 + (i % 7) as f64 * 0.07),
                        (5 + (i % 3) as u32, 0.2 + (i % 4) as f64 * 0.05),
                    ],
                );
                let a = full.process_document(d.clone());
                let b = filtered.process_document(d);
                assert_eq!(a, b, "outcomes diverged at event {i}");
            }
        };
        // Pre-registration traffic: the filtered index files nothing.
        feed(&mut full, &mut filtered, 0, 30);
        assert_eq!(filtered.index_stats().postings, 0);
        assert!(full.index_stats().postings > 0);
        // Late registration must backfill the window it never indexed.
        let a1 = full.register(q1.clone());
        let b1 = filtered.register(q1);
        assert_eq!(a1, b1);
        assert_eq!(full.query_stats(a1), filtered.query_stats(b1));
        feed(&mut full, &mut filtered, 30, 60);
        assert_eq!(full.current_results(a1), filtered.current_results(b1));
        // A second query brings a new term live mid-stream...
        let a2 = full.register(q2.clone());
        let b2 = filtered.register(q2);
        feed(&mut full, &mut filtered, 60, 90);
        assert_eq!(full.current_results(a2), filtered.current_results(b2));
        // ...and deregistering the first retires its last-reference lists.
        assert!(full.deregister(a1) && filtered.deregister(b1));
        feed(&mut full, &mut filtered, 90, 120);
        assert_eq!(full.current_results(a2), filtered.current_results(b2));
        assert_eq!(full.query_stats(a2), filtered.query_stats(b2));
        // The shadow maintains strictly fewer postings than the full index.
        assert!(filtered.index_stats().postings < full.index_stats().postings);
        assert_eq!(
            filtered.index_stats().documents,
            full.index_stats().documents
        );
    }

    #[test]
    fn extract_install_migration_is_behaviour_preserving() {
        // Two term-filtered engines over the same stream (the shard
        // configuration): migrating a query from one to the other
        // mid-stream must leave every observable — results, bookkeeping
        // counters, thresholds, event outcomes — exactly as if the query had
        // lived on the destination all along (modelled by `stayed`).
        let window = SlidingWindow::count_based(15);
        let mut source = ItaEngine::term_filtered(window, ItaConfig::default());
        let mut destination = ItaEngine::term_filtered(window, ItaConfig::default());
        let mut stayed = ItaEngine::term_filtered(window, ItaConfig::default());
        let q = ContinuousQuery::from_weights([(TermId(1), 0.7), (TermId(2), 0.3)], 3);
        let qid = source.register(q.clone());
        assert_eq!(stayed.register(q), qid);
        let feed = |engines: &mut [&mut ItaEngine], lo: u64, hi: u64| {
            for i in lo..hi {
                let d = doc(
                    i,
                    &[
                        ((i % 4) as u32, 0.1 + (i % 7) as f64 * 0.09),
                        (2, 0.05 + (i % 3) as f64 * 0.2),
                    ],
                );
                for engine in engines.iter_mut() {
                    engine.process_document(d.clone());
                }
            }
        };
        feed(&mut [&mut source, &mut destination, &mut stayed], 0, 40);
        let migration = source.extract_query(qid).expect("query is registered");
        assert!(source.extract_query(qid).is_none(), "extract removes");
        assert_eq!(source.num_queries(), 0);
        // The extracted package names the terms the destination must cover.
        let terms: Vec<u32> = migration.terms().map(|t| t.0).collect();
        assert_eq!(terms, vec![1, 2]);
        // The source dropped its now-unreferenced shadow lists.
        assert_eq!(source.index_stats().postings, 0);
        destination.install_query(qid, migration);
        assert_eq!(destination.num_queries(), 1);
        assert_eq!(
            destination.current_results(qid),
            stayed.current_results(qid)
        );
        assert_eq!(destination.query_stats(qid), stayed.query_stats(qid));
        assert_eq!(
            destination.local_threshold(qid, TermId(1)),
            stayed.local_threshold(qid, TermId(1))
        );
        // Post-migration traffic (arrivals, expirations, refills, roll-ups)
        // stays in lockstep with the engine that never migrated.
        for i in 40..120u64 {
            let d = doc(
                i,
                &[
                    ((i % 4) as u32, 0.1 + (i % 7) as f64 * 0.09),
                    (2, 0.05 + (i % 3) as f64 * 0.2),
                ],
            );
            let a = destination.process_document(d.clone());
            let b = stayed.process_document(d);
            assert_eq!(a, b, "outcomes diverged at event {i}");
            assert_eq!(
                destination.current_results(qid),
                stayed.current_results(qid)
            );
        }
        assert_eq!(destination.query_stats(qid), stayed.query_stats(qid));
    }

    #[test]
    fn default_process_batch_is_the_per_event_loop() {
        let mut batched = engine(6);
        let mut singles = engine(6);
        let qa = batched.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        let qb = singles.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        let docs: Vec<Document> = (0..10u64)
            .map(|i| doc(i, &[(1, 0.1 + (i % 4) as f64 * 0.2)]))
            .collect();
        let expected: Vec<EventOutcome> = docs
            .clone()
            .into_iter()
            .map(|d| singles.process_document(d))
            .collect();
        assert_eq!(batched.process_batch(docs), expected);
        assert_eq!(batched.current_results(qa), singles.current_results(qb));
        assert!(batched.process_batch(Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn install_over_a_live_id_panics() {
        let mut a = engine(4);
        let mut b = engine(4);
        let qid = a.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        assert_eq!(
            b.register(ContinuousQuery::from_weights([(TermId(2), 1.0)], 1)),
            qid
        );
        let migration = a.extract_query(qid).unwrap();
        b.install_query(qid, migration);
    }

    #[test]
    fn register_with_id_controls_the_id_space() {
        let mut e = engine(4);
        e.register_with_id(
            QueryId(7),
            ContinuousQuery::from_weights([(TermId(1), 1.0)], 1),
        );
        // Fresh ids never collide with externally assigned ones.
        let next = e.register(ContinuousQuery::from_weights([(TermId(2), 1.0)], 1));
        assert_eq!(next, QueryId(8));
        assert_eq!(e.num_queries(), 2);
        assert!(e.deregister(QueryId(7)));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_register_with_id_panics() {
        let mut e = engine(4);
        e.register_with_id(
            QueryId(3),
            ContinuousQuery::from_weights([(TermId(1), 1.0)], 1),
        );
        e.register_with_id(
            QueryId(3),
            ContinuousQuery::from_weights([(TermId(2), 1.0)], 1),
        );
    }

    #[test]
    fn deregister_removes_tree_entries() {
        let (mut e, q) = paper_lists_engine();
        assert!(!e.trees.is_empty());
        assert!(e.deregister(q));
        assert!(!e.deregister(q));
        assert!(e.trees.is_empty());
        assert!(e.current_results(q).is_empty());
        assert_eq!(e.num_queries(), 0);
        // The stream keeps flowing without touching the removed query.
        let out = e.process_document(doc(30, &[(20, 0.5)]));
        assert_eq!(out.queries_touched_by_arrival, 0);
    }

    #[test]
    fn queries_registered_on_empty_window_pick_up_arrivals() {
        let mut e = engine(5);
        let q = e.register(ContinuousQuery::from_weights([(TermId(7), 1.0)], 2));
        assert!(e.current_results(q).is_empty());
        e.process_document(doc(0, &[(7, 0.4)]));
        e.process_document(doc(1, &[(8, 0.9)]));
        e.process_document(doc(2, &[(7, 0.6)]));
        assert_eq!(top_ids(&e, q), vec![2, 0]);
    }

    #[test]
    fn fewer_than_k_matches_returns_fewer_results() {
        let mut e = engine(5);
        let q = e.register(ContinuousQuery::from_weights([(TermId(7), 1.0)], 3));
        e.process_document(doc(0, &[(7, 0.4)]));
        e.process_document(doc(1, &[(9, 0.4)]));
        let top = e.current_results(q);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].doc, DocId(0));
    }

    #[test]
    fn clock_and_counts_are_reported() {
        let mut e = engine(2);
        assert_eq!(e.clock(), Timestamp::ZERO);
        assert_eq!(e.name(), "ita");
        e.process_document(doc(5, &[(0, 0.5)]));
        assert_eq!(e.clock(), Timestamp::from_millis(5));
        assert_eq!(e.num_valid_documents(), 1);
    }

    /// A term-filtered engine whose window holds `hits` documents carrying
    /// `term` among `filler` documents that do not.
    fn filtered_window(term: u32, hits: u64, filler: u64) -> ItaEngine {
        let total = hits + filler;
        let mut e = ItaEngine::term_filtered(
            SlidingWindow::count_based(total as usize + 1),
            ItaConfig::default(),
        );
        for i in 0..total {
            // Spread the hits across the window; fillers use a disjoint,
            // rotating vocabulary so the window is never degenerate.
            if i % (total / hits.max(1)).max(1) == 0 && i / (total / hits.max(1)).max(1) < hits {
                e.process_document(doc(i, &[(term, 0.2 + (i % 5) as f64 * 0.1)]));
            } else {
                e.process_document(doc(i, &[(1000 + (i % 7) as u32, 0.5)]));
            }
        }
        e
    }

    /// The satellite regression this PR's counter exists for: registration
    /// cost must scale with the postings of the lists the query actually
    /// probes, never with the window size the old eager scan paid.
    #[test]
    fn registration_cost_scales_with_probed_postings_not_window_size() {
        let hits = 8u64;
        let mut small = filtered_window(7, hits, 100);
        let mut large = filtered_window(7, hits, 400);
        assert_eq!(small.register_postings_touched(), 0);
        small.register(ContinuousQuery::from_weights([(TermId(7), 1.0)], 2));
        large.register(ContinuousQuery::from_weights([(TermId(7), 1.0)], 2));
        assert_eq!(
            small.register_postings_touched(),
            hits,
            "registration filed more postings than the term occurs"
        );
        assert_eq!(
            small.register_postings_touched(),
            large.register_postings_touched(),
            "registration cost moved with window size"
        );
    }

    #[test]
    fn a_burst_of_same_term_queries_backfills_the_list_once() {
        let hits = 8u64;
        let mut e = filtered_window(7, hits, 100);
        let queries: Vec<ContinuousQuery> = (1..=20)
            .map(|k| ContinuousQuery::from_weights([(TermId(7), 1.0)], (k % 3) + 1))
            .collect();
        let ids = e.register_batch(queries);
        assert_eq!(ids.len(), 20);
        // One sorted merge serves the whole burst: the cost is one list's
        // postings, not 20 of them.
        assert_eq!(e.register_postings_touched(), hits);
        // And the loop path agrees — the second and later registrations find
        // the term already live and file nothing.
        let mut looped = filtered_window(7, hits, 100);
        for k in 1..=20u32 {
            looped.register(ContinuousQuery::from_weights(
                [(TermId(7), 1.0)],
                ((k % 3) + 1) as usize,
            ));
        }
        assert_eq!(looped.register_postings_touched(), hits);
    }

    /// Lazy registration makes migration free of window scans: terms go cold
    /// on install and are only backfilled when a probe actually needs them —
    /// and a same-term registration elsewhere counts as such a probe.
    #[test]
    fn lazy_migration_defers_the_backfill_until_first_probe() {
        let hits = 6u64;
        let mut source = filtered_window(7, hits, 60);
        let q = source.register(ContinuousQuery::from_weights([(TermId(7), 1.0)], 2));
        let expected = source.current_results(q);
        let migration = source.extract_query(q).expect("query is live");

        // Same stream, so the target mirrors the source window (the
        // precondition `install_query` documents) — but no query ever made
        // term 7 live here.
        let mut target = filtered_window(7, hits, 60);
        let before = target.register_postings_touched();
        target.install_query(q, migration);
        assert!(target.num_cold_terms() > 0, "install should go cold");
        assert_eq!(
            target.register_postings_touched(),
            before,
            "install must not scan the window"
        );
        // The migrated query answers from its carried result set even while
        // its terms are cold…
        assert_eq!(target.current_results(q), expected);
        // …and the first probe (here: another registration sharing the term)
        // warms the list, exactly.
        target.register(ContinuousQuery::from_weights([(TermId(7), 1.0)], 1));
        assert_eq!(target.num_cold_terms(), 0);
        assert_eq!(target.register_postings_touched(), before + hits);
        assert_eq!(target.current_results(q), expected);
    }

    /// The eager foil: with `lazy_registration` off, install pays its window
    /// scan immediately (the pre-§9 behaviour the ablation bench prices).
    #[test]
    fn eager_migration_backfills_on_install() {
        let hits = 6u64;
        let eager = ItaConfig {
            lazy_registration: false,
            ..ItaConfig::default()
        };
        let mut source = ItaEngine::term_filtered(SlidingWindow::count_based(100), eager);
        for i in 0..40u64 {
            if i % 7 == 0 {
                source.process_document(doc(i, &[(7, 0.3)]));
            } else {
                source.process_document(doc(i, &[(1000 + (i % 5) as u32, 0.5)]));
            }
        }
        let q = source.register(ContinuousQuery::from_weights([(TermId(7), 1.0)], 2));
        let migration = source.extract_query(q).expect("query is live");
        let mut target = ItaEngine::term_filtered(SlidingWindow::count_based(100), eager);
        for i in 0..40u64 {
            if i % 7 == 0 {
                target.process_document(doc(i, &[(7, 0.3)]));
            } else {
                target.process_document(doc(i, &[(1000 + (i % 5) as u32, 0.5)]));
            }
        }
        target.install_query(q, migration);
        assert_eq!(target.num_cold_terms(), 0);
        assert_eq!(target.register_postings_touched(), hits);
    }
}
