//! Query-sharded parallel execution of the Incremental Threshold Algorithm.
//!
//! [`ShardedItaEngine`] partitions the registered queries across `N` worker
//! shards by a deterministic hash of the query id. Each shard owns, for its
//! query subset, **everything** the single-shard [`ItaEngine`] owns for the
//! full set: the per-query result sets and local thresholds, the per-term
//! threshold trees, and a *term-filtered shadow* inverted index — segmented
//! impact lists for only the terms its queries reference, mirrored over the
//! shared window (the document store holds `Arc`s, so the window's
//! composition lists exist once in memory no matter how many shards mirror
//! them).
//!
//! A stream event is fanned out **once**: the coordinator wraps the document
//! in an `Arc`, pushes it down each shard's SPSC request channel, and every
//! worker probes its own trees, repairs its own result sets and slides its
//! own window mirror with **zero cross-shard locking on the hot path** — the
//! only synchronisation is the channel handoff at the event boundary. The
//! per-shard [`crate::EventOutcome`]s are folded back with
//! [`crate::EventOutcome::merge_shard`] into exactly what a single-shard
//! engine would have reported, and per-worker [`ProcessingStats`] merge
//! through [`ProcessingStats::absorb`], so monitors and the sweep harness
//! see exact aggregate numbers.
//!
//! A stream **burst** is fanned out even more cheaply:
//! [`crate::Engine::process_batch`] ships the whole batch of `Arc`'d
//! documents to every shard in **one request/reply round-trip per shard**,
//! amortising the channel handoff and worker wake-up across the burst while
//! each worker still processes (and times) the events one by one, in order —
//! so the outcomes are byte-identical to the per-event loop, which the
//! batch-vs-singles differential tests enforce.
//!
//! ## Skew-aware rebalancing
//!
//! Static hash partitioning can be defeated by churn: if the surviving query
//! population happens to concentrate on one shard, that worker carries the
//! whole load while the rest idle. The coordinator therefore tracks the
//! per-shard query count and, at load-change and batch boundaries (never
//! mid-event), **migrates** queries from the heaviest to the lightest shard
//! while the heaviest exceeds [`RebalanceConfig::max_over_ideal`] times the
//! uniform share. A migration moves the query's complete ITA state —
//! result set, local thresholds, counters — via
//! [`ItaEngine::extract_query`]/[`ItaEngine::install_query`]; the receiving
//! shard backfills shadow-index lists for terms that just became live and
//! files the migrated thresholds verbatim, so processing resumes
//! byte-identically on the new shard (no threshold search is re-run). The
//! routing table ([`ShardedItaEngine::assigned_shard`]) supersedes the
//! initial hash placement ([`ShardedItaEngine::shard_of`]) once a query has
//! moved.
//!
//! Workers are **persistent**: they are spawned once inside a
//! [`std::thread::scope`] held by a supervisor thread and live until the
//! engine is dropped, so steady-state event processing pays a channel
//! send/recv, never a thread spawn. The scope guarantees every worker is
//! joined (even when one panics) before the supervisor exits; the
//! coordinator surfaces a worker panic as its own panic the moment a channel
//! closes under it.
//!
//! ## Why this is exact
//!
//! Every structure the ITA maintenance paths read is *per query term*:
//! registration and refill descend the query's own inverted lists, roll-up
//! probes them, and arrivals/expirations consult the threshold trees of the
//! arriving document's terms. A shard that keeps complete lists for the
//! union of its queries' terms therefore reproduces, query for query, the
//! exact reads the single-shard engine performs — the shadow index is
//! complete for that term set by construction (filtered inserts for live
//! terms, [`cts_index::InvertedIndex::backfill_term`] when a registration
//! brings a term live mid-stream). The randomized differential test in
//! `tests/sharded_equivalence.rs` enforces byte-identical results and event
//! outcomes against [`ItaEngine`] across shard counts, deregistration and
//! window expiry.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cts_index::{Document, IndexStats, QueryId, SlidingWindow, Timestamp};

use crate::engine::{Engine, EventOutcome};
use crate::ita::{ItaConfig, ItaEngine, ItaQueryStats, QueryMigration};
use crate::monitor::ProcessingStats;
use crate::query::ContinuousQuery;
use crate::result::RankedDocument;

/// A request travelling coordinator → shard on the shard's SPSC channel.
enum ShardRequest {
    /// Register `query` under the globally assigned id (synchronous).
    Register(QueryId, ContinuousQuery),
    /// Register a whole burst of queries, each under its globally assigned
    /// id, in one round-trip (synchronous). The shard brings all of the
    /// burst's newly-live shadow terms up in a single window merge
    /// ([`ItaEngine::register_batch_with_ids`]) instead of one backfill scan
    /// per query.
    RegisterBatch(Vec<(QueryId, ContinuousQuery)>),
    /// Remove a query (synchronous; replies whether it existed).
    Deregister(QueryId),
    /// Process one fanned-out stream event (synchronous; replies with the
    /// shard's [`EventOutcome`]).
    Process(Arc<Document>),
    /// Process a whole fanned-out burst in one round-trip (synchronous;
    /// replies with one [`EventOutcome`] per document, in order). The burst
    /// itself is shared: sending it to `N` shards bumps one refcount per
    /// shard, not one per document per shard.
    ProcessBatch(Arc<[Arc<Document>]>),
    /// Extract a query's complete ITA state for migration (synchronous).
    Extract(QueryId),
    /// Install a migrated query under its existing id (synchronous).
    Install(QueryId, Box<QueryMigration>),
    /// Read a query's current top-k.
    Results(QueryId),
    /// Read a query's ITA bookkeeping snapshot.
    QueryStats(QueryId),
    /// Read the shard's shadow-index statistics.
    IndexStats,
    /// Read the shard's accumulated per-worker processing statistics.
    Stats,
    /// Zero the shard's processing statistics (e.g. after an untimed
    /// fill/register phase, so later readings cover only measured events).
    ResetStats,
    /// Read the shard's valid-document count (identical across shards).
    NumValidDocuments,
}

/// A reply travelling shard → coordinator, always in request order (each
/// channel pair carries at most one outstanding request per shard).
enum ShardReply {
    Registered,
    Deregistered(bool),
    Processed(EventOutcome),
    /// The per-document outcomes plus the most expensive single event of the
    /// batch as timed by this worker — the coordinator folds the maxima so
    /// batch-fed monitors still learn a true per-event maximum.
    ProcessedBatch(Vec<EventOutcome>, Duration),
    Extracted(Option<Box<QueryMigration>>),
    Installed,
    Results(Vec<RankedDocument>),
    QueryStats(Option<ItaQueryStats>),
    IndexStats(IndexStats),
    Stats(ProcessingStats),
    StatsReset,
    NumValidDocuments(usize),
}

/// The persistent worker loop: one term-filtered [`ItaEngine`] driven by the
/// shard's request channel until the coordinator hangs up. Event processing
/// is timed per shard into a local [`ProcessingStats`], which the
/// coordinator merges with [`ProcessingStats::absorb`] on demand.
fn worker_loop(
    mut shard: ItaEngine,
    requests: Receiver<ShardRequest>,
    replies: Sender<ShardReply>,
) {
    let mut stats = ProcessingStats::default();
    while let Ok(request) = requests.recv() {
        let reply = match request {
            ShardRequest::Register(qid, query) => {
                shard.register_with_id(qid, query);
                ShardReply::Registered
            }
            ShardRequest::RegisterBatch(batch) => {
                shard.register_batch_with_ids(batch);
                ShardReply::Registered
            }
            ShardRequest::Deregister(qid) => ShardReply::Deregistered(shard.deregister(qid)),
            ShardRequest::Process(doc) => {
                let start = Instant::now();
                let outcome = shard.process_shared(doc);
                stats.record(&outcome, start.elapsed());
                ShardReply::Processed(outcome)
            }
            ShardRequest::ProcessBatch(docs) => {
                // One channel round-trip covers the whole burst; the worker
                // still processes and times each event individually, so the
                // outcomes and the per-worker stats are exactly the
                // per-event loop's.
                let mut max_event = Duration::ZERO;
                let outcomes = docs
                    .iter()
                    .map(|doc| {
                        let start = Instant::now();
                        let outcome = shard.process_shared(Arc::clone(doc));
                        let elapsed = start.elapsed();
                        max_event = max_event.max(elapsed);
                        stats.record(&outcome, elapsed);
                        outcome
                    })
                    .collect();
                ShardReply::ProcessedBatch(outcomes, max_event)
            }
            ShardRequest::Extract(qid) => {
                ShardReply::Extracted(shard.extract_query(qid).map(Box::new))
            }
            ShardRequest::Install(qid, migration) => {
                shard.install_query(qid, *migration);
                ShardReply::Installed
            }
            ShardRequest::Results(qid) => ShardReply::Results(shard.current_results(qid)),
            ShardRequest::QueryStats(qid) => ShardReply::QueryStats(shard.query_stats(qid)),
            ShardRequest::IndexStats => ShardReply::IndexStats(shard.index_stats()),
            ShardRequest::Stats => ShardReply::Stats(stats),
            ShardRequest::ResetStats => {
                stats = ProcessingStats::default();
                ShardReply::StatsReset
            }
            ShardRequest::NumValidDocuments => {
                ShardReply::NumValidDocuments(shard.num_valid_documents())
            }
        };
        if replies.send(reply).is_err() {
            // The coordinator is gone; nothing left to serve.
            break;
        }
    }
}

/// Policy of the coordinator's skew-aware query rebalancer.
///
/// The coordinator evaluates balance whenever the load distribution can have
/// changed and a migration is safe — after a registration, after a
/// deregistration and after each processed batch, never inside an event —
/// and migrates queries from the heaviest to the lightest shard while
/// **both** hold:
///
/// * the heaviest shard's query count exceeds
///   `max_over_ideal × (num_queries / shards)` (the uniform share), and
/// * moving one query actually reduces imbalance
///   (`heaviest − lightest ≥ 2`).
///
/// Each migration strictly decreases the load distribution's sum of squares,
/// so a rebalance pass always terminates; `max_migrations_per_check` is a
/// safety valve bounding how much migration cost (state transfer plus
/// shadow-list backfill over the window) a single boundary may absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Whether the rebalancer runs at all. Disabled, placement is the
    /// static hash of [`ShardedItaEngine::shard_of`] forever.
    pub enabled: bool,
    /// Trigger ratio over the uniform per-shard query count. Must be at
    /// least 1; values close to 1 level aggressively, larger values tolerate
    /// more skew before paying migration cost.
    pub max_over_ideal: f64,
    /// Upper bound on migrations performed per balance check.
    pub max_migrations_per_check: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_over_ideal: 1.25,
            max_migrations_per_check: usize::MAX,
        }
    }
}

impl RebalanceConfig {
    /// A configuration with rebalancing switched off (static hash
    /// placement).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// The paper's ITA, executed across `N` query-partitioned worker shards.
///
/// Implements [`Engine`] with results and event outcomes byte-identical to
/// the single-shard [`ItaEngine`] over any stream. See the module docs for
/// the partitioning rule, the fan-out and batch protocols, the skew-aware
/// rebalancer and the exactness argument.
#[derive(Debug)]
pub struct ShardedItaEngine {
    /// Coordinator → shard request channels (SPSC: this engine is the only
    /// producer, the shard's worker the only consumer).
    requests: Vec<Sender<ShardRequest>>,
    /// Shard → coordinator reply channels, index-aligned with `requests`.
    replies: Vec<Receiver<ShardReply>>,
    /// The supervisor thread whose [`std::thread::scope`] owns the workers.
    supervisor: Option<JoinHandle<()>>,
    window: SlidingWindow,
    config: ItaConfig,
    rebalance: RebalanceConfig,
    /// The routing table: which shard currently hosts each registered query.
    /// Starts as the hash placement of [`ShardedItaEngine::shard_of`];
    /// migrations move entries.
    assignment: HashMap<QueryId, usize>,
    /// Per-shard resident query ids (registration order). `placement[s].len()`
    /// is shard `s`'s query load.
    placement: Vec<Vec<QueryId>>,
    /// Total queries migrated by the rebalancer since construction.
    migrations: u64,
    /// Most expensive single event seen inside any processed batch, as timed
    /// by the workers (max over shards and batches). This is what
    /// [`Engine::batched_max_event_time`] reports; cleared by
    /// [`ShardedItaEngine::reset_shard_stats`].
    batched_max_event: Duration,
    num_queries: usize,
    next_query: u32,
    clock: Timestamp,
}

impl ShardedItaEngine {
    /// Creates an engine with `shards` persistent worker shards, each
    /// running a term-filtered [`ItaEngine`] under the given window policy
    /// and configuration, with the default [`RebalanceConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(window: SlidingWindow, config: ItaConfig, shards: usize) -> Self {
        Self::with_rebalance(window, config, shards, RebalanceConfig::default())
    }

    /// Creates an engine with an explicit rebalancing policy.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `rebalance.max_over_ideal < 1`.
    pub fn with_rebalance(
        window: SlidingWindow,
        config: ItaConfig,
        shards: usize,
        rebalance: RebalanceConfig,
    ) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        assert!(
            rebalance.max_over_ideal >= 1.0,
            "a rebalance trigger below the uniform share would thrash"
        );
        let mut requests = Vec::with_capacity(shards);
        let mut replies = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (request_tx, request_rx) = std::sync::mpsc::channel();
            let (reply_tx, reply_rx) = std::sync::mpsc::channel();
            requests.push(request_tx);
            replies.push(reply_rx);
            workers.push((
                ItaEngine::term_filtered(window, config),
                request_rx,
                reply_tx,
            ));
        }
        // The supervisor's scope keeps the workers joined-on-exit even if one
        // panics; the workers themselves exit when the coordinator drops its
        // request senders.
        let supervisor = std::thread::Builder::new()
            .name("cts-shard-supervisor".to_string())
            .spawn(move || {
                std::thread::scope(|scope| {
                    for (i, (shard, request_rx, reply_tx)) in workers.into_iter().enumerate() {
                        std::thread::Builder::new()
                            .name(format!("cts-shard-{i}"))
                            .spawn_scoped(scope, move || worker_loop(shard, request_rx, reply_tx))
                            .expect("spawn shard worker");
                    }
                });
            })
            .expect("spawn shard supervisor");
        Self {
            requests,
            replies,
            supervisor: Some(supervisor),
            window,
            config,
            rebalance,
            assignment: HashMap::new(),
            placement: vec![Vec::new(); shards],
            migrations: 0,
            batched_max_event: Duration::ZERO,
            num_queries: 0,
            next_query: 0,
            clock: Timestamp::ZERO,
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.requests.len()
    }

    /// The sliding-window policy in force.
    pub fn window(&self) -> SlidingWindow {
        self.window
    }

    /// The per-shard ITA configuration.
    pub fn config(&self) -> ItaConfig {
        self.config
    }

    /// The configured rebalancing policy.
    pub fn rebalance_config(&self) -> RebalanceConfig {
        self.rebalance
    }

    /// Replaces the rebalancing policy at runtime. Takes effect at the next
    /// balance check (the next registration, deregistration or batch
    /// boundary) — an already-skewed placement is repaired then, not
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if `rebalance.max_over_ideal < 1`.
    pub fn set_rebalance_config(&mut self, rebalance: RebalanceConfig) {
        assert!(
            rebalance.max_over_ideal >= 1.0,
            "a rebalance trigger below the uniform share would thrash"
        );
        self.rebalance = rebalance;
    }

    /// Total queries the rebalancer has migrated between shards.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Per-shard resident query counts, in shard order — the load measure
    /// the rebalancer levels.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.placement.iter().map(Vec::len).collect()
    }

    /// The shard currently hosting `query`, if it is registered. This is the
    /// routing table every query-addressed request consults; it starts at
    /// the hash placement of [`ShardedItaEngine::shard_of`] and diverges
    /// from it once the rebalancer migrates the query.
    pub fn assigned_shard(&self, query: QueryId) -> Option<usize> {
        self.assignment.get(&query).copied()
    }

    /// The **initial placement** rule: which shard a freshly registered
    /// `query` is routed to (the rebalancer may move it later —
    /// [`ShardedItaEngine::assigned_shard`] is the live routing table).
    /// Fibonacci-hashing the id spreads both sequential registration order
    /// and arbitrary (churned) id sets evenly across shards, and stays
    /// stable for a given id across deregistrations. The shard is taken from
    /// the hash's **high** bits via a multiply-shift — `hash % N` would keep
    /// only the low bits, which for power-of-two `N` degenerate to a
    /// permutation of the id's own low bits (an all-even surviving id set
    /// would then occupy only half the shards).
    pub fn shard_of(&self, query: QueryId) -> usize {
        let hashed = (u64::from(query.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((u128::from(hashed) * self.requests.len() as u128) >> 64) as usize
    }

    fn shard_died(&self, shard: usize) -> ! {
        panic!("shard {shard} worker disconnected — it panicked (see stderr for the root cause)");
    }

    /// Sends one request to `shard` and blocks for its reply.
    fn call(&self, shard: usize, request: ShardRequest) -> ShardReply {
        if self.requests[shard].send(request).is_err() {
            self.shard_died(shard);
        }
        match self.replies[shard].recv() {
            Ok(reply) => reply,
            Err(_) => self.shard_died(shard),
        }
    }

    /// A query's ITA bookkeeping snapshot, if it is registered (served by
    /// the shard currently hosting it).
    pub fn query_stats(&self, query: QueryId) -> Option<ItaQueryStats> {
        let shard = self.assigned_shard(query)?;
        match self.call(shard, ShardRequest::QueryStats(query)) {
            ShardReply::QueryStats(stats) => stats,
            _ => unreachable!("shard replied out of order"),
        }
    }

    /// Per-shard shadow-index statistics, in shard order. Postings sum to
    /// the sharded system's total index footprint (terms referenced by
    /// queries in two shards are mirrored in both); every shard reports the
    /// same document count.
    pub fn shard_index_stats(&self) -> Vec<IndexStats> {
        self.broadcast_collect(
            || ShardRequest::IndexStats,
            |reply| match reply {
                ShardReply::IndexStats(stats) => stats,
                _ => unreachable!("shard replied out of order"),
            },
        )
    }

    /// Per-shard processing statistics (each worker times its own event
    /// handling), in shard order.
    pub fn shard_stats(&self) -> Vec<ProcessingStats> {
        self.broadcast_collect(
            || ShardRequest::Stats,
            |reply| match reply {
                ShardReply::Stats(stats) => stats,
                _ => unreachable!("shard replied out of order"),
            },
        )
    }

    /// Zeroes every worker's processing statistics. Call after an untimed
    /// setup phase (window fill, workload registration) so
    /// [`ShardedItaEngine::shard_stats`] and
    /// [`ShardedItaEngine::aggregate_shard_stats`] cover only the events
    /// processed afterwards.
    pub fn reset_shard_stats(&mut self) {
        let acks = self.broadcast_collect(
            || ShardRequest::ResetStats,
            |reply| matches!(reply, ShardReply::StatsReset),
        );
        assert!(acks.iter().all(|ok| *ok), "shard replied out of order");
        self.batched_max_event = Duration::ZERO;
    }

    /// The exact aggregate of every worker's processing statistics, merged
    /// with [`ProcessingStats::absorb`]. `events` counts each stream event
    /// once per shard (every shard handles every event); `total_time` is the
    /// summed busy time across workers — divide by the wall-clock event time
    /// of an enclosing [`crate::Monitor`] to read parallel utilisation.
    pub fn aggregate_shard_stats(&self) -> ProcessingStats {
        let mut merged = ProcessingStats::default();
        for stats in self.shard_stats() {
            merged.absorb(&stats);
        }
        merged
    }

    /// Fans one request to every shard, then collects the replies in shard
    /// order (the fan-out/fan-in used for stream events and statistics).
    fn broadcast_collect<T>(
        &self,
        mut request: impl FnMut() -> ShardRequest,
        mut unwrap: impl FnMut(ShardReply) -> T,
    ) -> Vec<T> {
        for (shard, sender) in self.requests.iter().enumerate() {
            if sender.send(request()).is_err() {
                self.shard_died(shard);
            }
        }
        self.replies
            .iter()
            .enumerate()
            .map(|(shard, receiver)| match receiver.recv() {
                Ok(reply) => unwrap(reply),
                Err(_) => self.shard_died(shard),
            })
            .collect()
    }

    /// Runs one balance check (see [`RebalanceConfig`]): while the heaviest
    /// shard exceeds the trigger ratio over the uniform share **and** a
    /// migration reduces imbalance, move the heaviest shard's most recently
    /// placed query to the lightest shard. Called at load-change and batch
    /// boundaries only — never between an arrival and its expirations — so
    /// migration can never split an event.
    fn maybe_rebalance(&mut self) {
        if !self.rebalance.enabled || self.requests.len() < 2 {
            return;
        }
        let ideal = self.num_queries as f64 / self.requests.len() as f64;
        let trigger = self.rebalance.max_over_ideal * ideal;
        for _ in 0..self.rebalance.max_migrations_per_check {
            let (heavy, _) = self
                .placement
                .iter()
                .enumerate()
                .max_by_key(|(_, resident)| resident.len())
                .expect("at least one shard");
            let (light, _) = self
                .placement
                .iter()
                .enumerate()
                .min_by_key(|(_, resident)| resident.len())
                .expect("at least one shard");
            let (high, low) = (self.placement[heavy].len(), self.placement[light].len());
            if (high as f64) <= trigger || high - low < 2 {
                break;
            }
            let slot = self.placement[heavy].len() - 1;
            self.migrate(heavy, slot, light);
        }
    }

    /// Moves the complete ITA state of the query at `placement[from][slot]`
    /// to shard `to` (extract, install, reroute). Outcome-neutral by
    /// construction: the migrated thresholds and result set are installed
    /// verbatim and the receiving shadow index backfills any term that just
    /// became live, so every subsequent event is processed exactly as it
    /// would have been on the old shard.
    fn migrate(&mut self, from: usize, slot: usize, to: usize) {
        let qid = self.placement[from][slot];
        let migration = match self.call(from, ShardRequest::Extract(qid)) {
            ShardReply::Extracted(Some(migration)) => migration,
            ShardReply::Extracted(None) => {
                panic!("rebalance: shard {from} does not host {qid} (routing table corrupt)")
            }
            _ => unreachable!("shard replied out of order"),
        };
        match self.call(to, ShardRequest::Install(qid, migration)) {
            ShardReply::Installed => {}
            _ => unreachable!("shard replied out of order"),
        }
        self.placement[from].swap_remove(slot);
        self.placement[to].push(qid);
        self.assignment.insert(qid, to);
        self.migrations += 1;
    }
}

impl Engine for ShardedItaEngine {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        let qid = QueryId(self.next_query);
        self.next_query += 1;
        let shard = self.shard_of(qid);
        match self.call(shard, ShardRequest::Register(qid, query)) {
            ShardReply::Registered => {}
            _ => unreachable!("shard replied out of order"),
        }
        self.assignment.insert(qid, shard);
        self.placement[shard].push(qid);
        self.num_queries += 1;
        self.maybe_rebalance();
        qid
    }

    fn register_batch(&mut self, queries: Vec<ContinuousQuery>) -> Vec<QueryId> {
        if queries.is_empty() {
            return Vec::new();
        }
        // Mint ids exactly as the per-query loop would, group by initial
        // placement, then register each shard's whole group in ONE
        // round-trip. The requests are sent before any reply is awaited, so
        // the shards run their (window-sized) registration merges in
        // parallel.
        let shards = self.requests.len();
        let mut per_shard: Vec<Vec<(QueryId, ContinuousQuery)>> = vec![Vec::new(); shards];
        let mut ids = Vec::with_capacity(queries.len());
        for query in queries {
            let qid = QueryId(self.next_query);
            self.next_query += 1;
            per_shard[self.shard_of(qid)].push((qid, query));
            ids.push(qid);
        }
        let mut pending = Vec::new();
        for (shard, group) in per_shard.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            for (qid, _) in group.iter() {
                self.assignment.insert(*qid, shard);
                self.placement[shard].push(*qid);
                self.num_queries += 1;
            }
            let group = std::mem::take(group);
            if self.requests[shard]
                .send(ShardRequest::RegisterBatch(group))
                .is_err()
            {
                self.shard_died(shard);
            }
            pending.push(shard);
        }
        for shard in pending {
            match self.replies[shard].recv() {
                Ok(ShardReply::Registered) => {}
                Ok(_) => unreachable!("shard replied out of order"),
                Err(_) => self.shard_died(shard),
            }
        }
        // One balance check for the whole burst: rebalancing is
        // outcome-invisible (migration is behaviour-preserving), so checking
        // once here instead of after every query changes placement only.
        self.maybe_rebalance();
        ids
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        let Some(shard) = self.assigned_shard(query) else {
            return false;
        };
        let removed = match self.call(shard, ShardRequest::Deregister(query)) {
            ShardReply::Deregistered(removed) => removed,
            _ => unreachable!("shard replied out of order"),
        };
        assert!(
            removed,
            "routing table said shard {shard} hosts {query}, shard disagreed"
        );
        self.assignment.remove(&query);
        let at = self.placement[shard]
            .iter()
            .position(|&resident| resident == query)
            .expect("routing table lists the query on its shard");
        self.placement[shard].swap_remove(at);
        self.num_queries -= 1;
        self.maybe_rebalance();
        true
    }

    fn process_document(&mut self, doc: Document) -> EventOutcome {
        self.clock = doc.arrival;
        let doc = Arc::new(doc);
        let outcomes = self.broadcast_collect(
            || ShardRequest::Process(Arc::clone(&doc)),
            |reply| match reply {
                ShardReply::Processed(outcome) => outcome,
                _ => unreachable!("shard replied out of order"),
            },
        );
        let mut merged = outcomes[0];
        for outcome in &outcomes[1..] {
            merged.merge_shard(outcome);
        }
        merged
    }

    fn process_batch(&mut self, docs: Vec<Document>) -> Vec<EventOutcome> {
        if docs.is_empty() {
            return Vec::new();
        }
        self.clock = docs.last().expect("batch is non-empty").arrival;
        let docs: Arc<[Arc<Document>]> = docs.into_iter().map(Arc::new).collect();
        let mut batch_max = Duration::ZERO;
        let per_shard = self.broadcast_collect(
            || ShardRequest::ProcessBatch(Arc::clone(&docs)),
            |reply| match reply {
                ShardReply::ProcessedBatch(outcomes, max_event) => {
                    batch_max = batch_max.max(max_event);
                    outcomes
                }
                _ => unreachable!("shard replied out of order"),
            },
        );
        self.batched_max_event = self.batched_max_event.max(batch_max);
        let mut per_shard = per_shard.into_iter();
        let mut merged = per_shard.next().expect("at least one shard");
        for outcomes in per_shard {
            debug_assert_eq!(outcomes.len(), merged.len(), "shards saw different batches");
            for (into, outcome) in merged.iter_mut().zip(&outcomes) {
                into.merge_shard(outcome);
            }
        }
        // The batch boundary is a safe point to repair skew: no event is in
        // flight, so a migration cannot split an arrival from its
        // expirations.
        self.maybe_rebalance();
        merged
    }

    fn current_results(&self, query: QueryId) -> Vec<RankedDocument> {
        let Some(shard) = self.assigned_shard(query) else {
            return Vec::new();
        };
        match self.call(shard, ShardRequest::Results(query)) {
            ShardReply::Results(results) => results,
            _ => unreachable!("shard replied out of order"),
        }
    }

    fn num_queries(&self) -> usize {
        self.num_queries
    }

    fn num_valid_documents(&self) -> usize {
        match self.call(0, ShardRequest::NumValidDocuments) {
            ShardReply::NumValidDocuments(count) => count,
            _ => unreachable!("shard replied out of order"),
        }
    }

    fn clock(&self) -> Timestamp {
        self.clock
    }

    fn name(&self) -> &'static str {
        "sharded-ita"
    }

    fn batched_max_event_time(&self) -> Option<Duration> {
        Some(self.batched_max_event)
    }
}

impl Drop for ShardedItaEngine {
    fn drop(&mut self) {
        // Closing the request channels is the shutdown signal; the
        // supervisor's scope then joins every worker.
        self.requests.clear();
        if let Some(supervisor) = self.supervisor.take() {
            if supervisor.join().is_err() && !std::thread::panicking() {
                panic!("a shard worker panicked; see stderr for the root cause");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::assert_lockstep_event;
    use cts_index::DocId;
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, terms: &[(u32, f64)]) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w))),
        )
    }

    fn query(terms: &[(u32, f64)], k: usize) -> ContinuousQuery {
        ContinuousQuery::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w)), k)
    }

    #[test]
    fn single_shard_locksteps_with_the_plain_engine() {
        let window = SlidingWindow::count_based(8);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), 1);
        let qa = reference.register(query(&[(1, 0.6), (2, 0.8)], 2));
        let qb = sharded.register(query(&[(1, 0.6), (2, 0.8)], 2));
        assert_eq!(qa, qb);
        for i in 0..40u64 {
            let d = doc(i, &[((i % 4) as u32, 0.1 + (i % 6) as f64 * 0.1)]);
            assert_lockstep_event(&mut reference, &mut sharded, &d, &[qa]);
        }
        assert_eq!(sharded.name(), "sharded-ita");
        assert_eq!(sharded.num_shards(), 1);
        assert_eq!(sharded.clock(), reference.clock());
        assert_eq!(sharded.num_valid_documents(), 8);
    }

    #[test]
    fn queries_are_spread_across_shards_and_results_survive_routing() {
        let window = SlidingWindow::count_based(16);
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), 4);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut qids = Vec::new();
        for t in 0..8u32 {
            let q = query(&[(t % 5, 0.5), (5 + t % 3, 0.5)], 3);
            let qs = sharded.register(q.clone());
            let qr = reference.register(q);
            assert_eq!(qs, qr);
            qids.push(qs);
        }
        // The hash really does use more than one shard for 8 sequential ids.
        let used: std::collections::HashSet<usize> =
            qids.iter().map(|&q| sharded.shard_of(q)).collect();
        assert!(used.len() > 1, "all queries landed on one shard");
        for i in 0..60u64 {
            let d = doc(
                i,
                &[
                    ((i % 7) as u32, 0.1 + (i % 9) as f64 * 0.08),
                    ((3 + i % 4) as u32, 0.3),
                ],
            );
            assert_lockstep_event(&mut reference, &mut sharded, &d, &qids);
        }
        assert_eq!(sharded.num_queries(), 8);
        assert!(sharded.deregister(qids[3]));
        assert!(!sharded.deregister(qids[3]));
        assert_eq!(sharded.num_queries(), 7);
        assert!(reference.deregister(qids[3]));
        for i in 60..90u64 {
            let d = doc(i, &[((i % 7) as u32, 0.2), (8, 0.4)]);
            let live: Vec<QueryId> = qids.iter().copied().filter(|&q| q != qids[3]).collect();
            assert_lockstep_event(&mut reference, &mut sharded, &d, &live);
        }
        assert!(sharded.current_results(qids[3]).is_empty());
    }

    #[test]
    fn shard_statistics_aggregate_exactly() {
        let mut sharded =
            ShardedItaEngine::new(SlidingWindow::count_based(6), ItaConfig::default(), 3);
        for t in 0..6u32 {
            sharded.register(query(&[(t, 1.0)], 2));
        }
        let mut events = 0u64;
        for i in 0..25u64 {
            sharded.process_document(doc(i, &[((i % 6) as u32, 0.1 + (i % 5) as f64 * 0.1)]));
            events += 1;
        }
        let per_shard = sharded.shard_stats();
        assert_eq!(per_shard.len(), 3);
        // Every shard sees every event.
        for stats in &per_shard {
            assert_eq!(stats.events, events);
        }
        let merged = sharded.aggregate_shard_stats();
        assert_eq!(merged.events, events * 3);
        assert_eq!(
            merged.total_time,
            per_shard.iter().map(|s| s.total_time).sum()
        );
        // Shadow indexes: same window everywhere, query terms partitioned.
        let index = sharded.shard_index_stats();
        assert!(index.iter().all(|s| s.documents == 6));
        assert!(index.iter().map(|s| s.postings).sum::<usize>() > 0);
        // The queries' stats are served by the owning shard.
        let q0 = QueryId(0);
        assert!(sharded.query_stats(q0).is_some());
        assert!(sharded.query_stats(QueryId(99)).is_none());
        // Resetting zeroes every worker's accumulator; later events are
        // counted from the reset point only.
        sharded.reset_shard_stats();
        assert_eq!(sharded.aggregate_shard_stats(), ProcessingStats::default());
        sharded.process_document(doc(25, &[(0, 0.5)]));
        let after = sharded.shard_stats();
        assert!(after.iter().all(|s| s.events == 1));
    }

    #[test]
    fn hash_partition_spreads_stride_patterned_id_sets() {
        // The failure mode of a low-bits partition: a churned workload whose
        // surviving ids share low bits (all even, or one residue mod 8)
        // collapses onto a fraction of the shards. The multiply-shift over
        // the Fibonacci hash keys on the high bits instead, so such sets
        // still spread.
        let sharded = ShardedItaEngine::new(SlidingWindow::count_based(4), ItaConfig::default(), 8);
        for stride in [2u32, 4, 8] {
            let used: std::collections::HashSet<usize> = (0..64u32)
                .map(|i| sharded.shard_of(QueryId(i * stride)))
                .collect();
            assert!(
                used.len() >= 6,
                "stride-{stride} ids reached only {} of 8 shards",
                used.len()
            );
        }
    }

    #[test]
    fn process_batch_matches_the_per_event_loop() {
        let window = SlidingWindow::count_based(10);
        let mut singles = ShardedItaEngine::new(window, ItaConfig::default(), 3);
        let mut batched = ShardedItaEngine::new(window, ItaConfig::default(), 3);
        let mut qids = Vec::new();
        for t in 0..6u32 {
            let q = query(&[(t, 0.5), (6 + t % 2, 0.5)], 2);
            let qa = singles.register(q.clone());
            let qb = batched.register(q);
            assert_eq!(qa, qb);
            qids.push(qa);
        }
        let make = |lo: u64, hi: u64| -> Vec<Document> {
            (lo..hi)
                .map(|i| doc(i, &[((i % 8) as u32, 0.1 + (i % 5) as f64 * 0.15)]))
                .collect()
        };
        for chunk in [(0u64, 7u64), (7, 8), (8, 20), (20, 33)] {
            let batch = make(chunk.0, chunk.1);
            let expected: Vec<EventOutcome> = batch
                .clone()
                .into_iter()
                .map(|d| singles.process_document(d))
                .collect();
            let actual = batched.process_batch(batch);
            assert_eq!(expected, actual, "chunk {chunk:?} diverged");
            for &q in &qids {
                assert_eq!(singles.current_results(q), batched.current_results(q));
            }
        }
        assert_eq!(batched.clock(), singles.clock());
        assert!(batched.process_batch(Vec::new()).is_empty());
    }

    #[test]
    fn rebalancer_levels_an_engineered_skew() {
        let window = SlidingWindow::count_based(12);
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), 4);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut qids = Vec::new();
        for t in 0..24u32 {
            let q = query(&[(t % 7, 0.6), (7 + t % 5, 0.4)], 2);
            qids.push(sharded.register(q.clone()));
            reference.register(q);
        }
        for i in 0..30u64 {
            let d = doc(i, &[((i % 12) as u32, 0.1 + (i % 6) as f64 * 0.12)]);
            assert_lockstep_event(&mut reference, &mut sharded, &d, &qids);
        }
        // Concentrate the surviving population on the initial-hash shard 0,
        // then make sure the rebalancer spread it back out.
        let survivors: Vec<QueryId> = qids
            .iter()
            .copied()
            .filter(|&q| sharded.shard_of(q) == 0)
            .collect();
        assert!(survivors.len() >= 2, "need at least two survivors");
        for &q in &qids {
            if !survivors.contains(&q) {
                assert!(sharded.deregister(q));
                assert!(reference.deregister(q));
            }
        }
        assert!(sharded.migrations() > 0, "no migration happened");
        let loads = sharded.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), survivors.len());
        let uniform = survivors.len() as f64 / 4.0;
        assert!(
            *loads.iter().max().unwrap() as f64 <= (2.0 * uniform).max(1.0),
            "loads {loads:?} not within 2x of uniform {uniform}"
        );
        // Routing follows the migrations: some survivor no longer lives on
        // its hash shard, yet every survivor is still routable.
        assert!(survivors
            .iter()
            .any(|&q| sharded.assigned_shard(q) != Some(0)));
        assert!(survivors
            .iter()
            .all(|&q| sharded.assigned_shard(q).is_some()));
        for i in 30..60u64 {
            let d = doc(i, &[((i % 12) as u32, 0.2 + (i % 4) as f64 * 0.2)]);
            assert_lockstep_event(&mut reference, &mut sharded, &d, &survivors);
        }
    }

    #[test]
    fn disabled_rebalancer_keeps_the_static_hash_placement() {
        let window = SlidingWindow::count_based(8);
        let mut sharded = ShardedItaEngine::with_rebalance(
            window,
            ItaConfig::default(),
            4,
            RebalanceConfig::disabled(),
        );
        assert!(!sharded.rebalance_config().enabled);
        let qids: Vec<QueryId> = (0..16u32)
            .map(|t| sharded.register(query(&[(t % 5, 1.0)], 1)))
            .collect();
        let survivors: Vec<QueryId> = qids
            .iter()
            .copied()
            .filter(|&q| sharded.shard_of(q) == 0)
            .collect();
        for &q in &qids {
            if !survivors.contains(&q) {
                assert!(sharded.deregister(q));
            }
        }
        assert_eq!(sharded.migrations(), 0);
        for &q in &survivors {
            assert_eq!(sharded.assigned_shard(q), Some(0));
        }
        assert_eq!(sharded.shard_loads()[0], survivors.len());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedItaEngine::new(SlidingWindow::count_based(4), ItaConfig::default(), 0);
    }

    #[test]
    #[should_panic(expected = "would thrash")]
    fn sub_uniform_rebalance_trigger_is_rejected() {
        let _ = ShardedItaEngine::with_rebalance(
            SlidingWindow::count_based(4),
            ItaConfig::default(),
            2,
            RebalanceConfig {
                max_over_ideal: 0.5,
                ..RebalanceConfig::default()
            },
        );
    }

    #[test]
    fn dropping_the_engine_joins_its_workers() {
        let handle = {
            let sharded =
                ShardedItaEngine::new(SlidingWindow::count_based(4), ItaConfig::default(), 2);
            sharded.num_shards()
        };
        // Reaching here without hanging means the workers exited and the
        // supervisor joined them.
        assert_eq!(handle, 2);
    }
}
