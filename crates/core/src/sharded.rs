//! Query-sharded parallel execution of the Incremental Threshold Algorithm.
//!
//! [`ShardedItaEngine`] partitions the registered queries across `N` worker
//! shards by a deterministic hash of the query id. Each shard owns, for its
//! query subset, **everything** the single-shard [`ItaEngine`] owns for the
//! full set: the per-query result sets and local thresholds, the per-term
//! threshold trees, and a *term-filtered shadow* inverted index — segmented
//! impact lists for only the terms its queries reference, mirrored over the
//! shared window (the document store holds `Arc`s, so the window's
//! composition lists exist once in memory no matter how many shards mirror
//! them).
//!
//! A stream event is fanned out **once**: the coordinator wraps the document
//! in an `Arc`, pushes it down each shard's SPSC request channel, and every
//! worker probes its own trees, repairs its own result sets and slides its
//! own window mirror with **zero cross-shard locking on the hot path** — the
//! only synchronisation is the channel handoff at the event boundary. The
//! per-shard [`crate::EventOutcome`]s are folded back with
//! [`crate::EventOutcome::merge_shard`] into exactly what a single-shard
//! engine would have reported, and per-worker [`ProcessingStats`] merge
//! through [`ProcessingStats::absorb`], so monitors and the sweep harness
//! see exact aggregate numbers.
//!
//! A stream **burst** is fanned out even more cheaply:
//! [`crate::Engine::process_batch`] ships the whole batch of `Arc`'d
//! documents to every shard in **one request/reply round-trip per shard**,
//! amortising the channel handoff and worker wake-up across the burst while
//! each worker still processes (and times) the events one by one, in order —
//! so the outcomes are byte-identical to the per-event loop, which the
//! batch-vs-singles differential tests enforce.
//!
//! ## Skew-aware rebalancing
//!
//! Static hash partitioning can be defeated by churn: if the surviving query
//! population happens to concentrate on one shard, that worker carries the
//! whole load while the rest idle. The coordinator therefore tracks the
//! per-shard query count and, at load-change and batch boundaries (never
//! mid-event), **migrates** queries from the heaviest to the lightest shard
//! while the heaviest exceeds [`RebalanceConfig::max_over_ideal`] times the
//! uniform share. A migration moves the query's complete ITA state —
//! result set, local thresholds, counters — via
//! [`ItaEngine::extract_query`]/[`ItaEngine::install_query`]; the receiving
//! shard backfills shadow-index lists for terms that just became live and
//! files the migrated thresholds verbatim, so processing resumes
//! byte-identically on the new shard (no threshold search is re-run). The
//! routing table ([`ShardedItaEngine::assigned_shard`]) supersedes the
//! initial hash placement ([`ShardedItaEngine::shard_of`]) once a query has
//! moved.
//!
//! ## Fault tolerance
//!
//! A production service cannot let one poisoned event take every registered
//! query down, so a worker panic is **data, not death** (DESIGN.md §10):
//!
//! * **Panic isolation** — every request a worker handles runs under
//!   [`std::panic::catch_unwind`]. A panic never unwinds the worker thread;
//!   at worst it costs the shard its in-memory engine state.
//! * **Warm recovery (checkpoint + op log)** — each worker keeps a clone of
//!   its engine refreshed every [`FaultConfig::checkpoint_interval`] state
//!   mutations plus a log of the deterministic mutations since. A caught
//!   panic restores the clone, replays the log, and **retries the request
//!   once** — byte-identical to never having faulted, because ITA thresholds
//!   are history-dependent and the replayed history is exactly the original
//!   one. Stats record only successful attempts, so the counters also match
//!   a fault-free run.
//! * **Cold resurrection** — if warm recovery is impossible (checkpointing
//!   disabled, a second panic, or the thread is gone) the worker reports a
//!   typed [`ShardFault`] and the shard is *degraded*. The coordinator keeps
//!   durable state updated **before** any fan-out — a query registry
//!   (id → [`ContinuousQuery`]), the placement table and a window mirror of
//!   `Arc`'d documents — so it can rebuild the shard from scratch: respawn
//!   the thread if needed, re-register the shard's queries and replay the
//!   window. Rebuilt top-k results are exact (ITA's reported top-k is a
//!   function of the window contents); the re-derived *thresholds* are not
//!   guaranteed identical, so post-resurrection work counters may differ
//!   from a fault-free history (measured in `tests/chaos_recovery.rs`).
//! * **Degraded-mode policy** — [`FaultPolicy`] decides what happens between
//!   a cold fault and its resurrection: block and rebuild synchronously
//!   (default), serve the healthy shards and mark the affected queries
//!   stale, or fail fast with a typed [`EngineError`] from the `try_*`
//!   paths.
//!
//! Workers are **persistent**: one spawned thread per shard, living until
//! the engine shuts down. Construction retries a failed spawn once and then
//! degrades to fewer shards (counted in [`FaultStats::spawn_retries`] /
//! [`FaultStats::spawn_fallbacks`]) instead of aborting. Shutdown drains
//! each worker's final [`ProcessingStats`] through a handshake before
//! joining, so no timing data is lost on drop.
//!
//! ## Why this is exact
//!
//! Every structure the ITA maintenance paths read is *per query term*:
//! registration and refill descend the query's own inverted lists, roll-up
//! probes them, and arrivals/expirations consult the threshold trees of the
//! arriving document's terms. A shard that keeps complete lists for the
//! union of its queries' terms therefore reproduces, query for query, the
//! exact reads the single-shard engine performs — the shadow index is
//! complete for that term set by construction (filtered inserts for live
//! terms, [`cts_index::InvertedIndex::backfill_term`] when a registration
//! brings a term live mid-stream). The randomized differential test in
//! `tests/sharded_equivalence.rs` enforces byte-identical results and event
//! outcomes against [`ItaEngine`] across shard counts, deregistration and
//! window expiry; `tests/chaos_recovery.rs` enforces the same with faults
//! injected and recovered mid-stream.

use std::cell::RefCell;
// cts-lint: allow(nondet-iteration, every map below is point-lookup only; nothing iterates their order)
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cts_index::{Document, IndexStats, QueryId, SlidingWindow, Timestamp, WindowKind};

use crate::engine::{Engine, EventOutcome};
use crate::fault::{
    is_poison_document, EngineError, FaultConfig, FaultPolicy, FaultStats, ShardFault,
};
use crate::ita::{ItaConfig, ItaEngine, ItaQueryStats, QueryMigration};
use crate::monitor::ProcessingStats;
use crate::query::ContinuousQuery;
use crate::result::RankedDocument;

/// A request travelling coordinator → shard on the shard's SPSC channel.
enum ShardRequest {
    /// Register a burst of queries, each under its globally assigned id, in
    /// one round-trip (synchronous). The shard brings all of the burst's
    /// newly-live shadow terms up in a single window merge
    /// ([`ItaEngine::register_batch_with_ids`]) instead of one backfill scan
    /// per query. Single registrations are a one-element burst (the
    /// [`Engine::register_batch`] contract makes that byte-identical).
    RegisterBatch(Vec<(QueryId, ContinuousQuery)>),
    /// Remove a query (synchronous; replies whether it existed).
    Deregister(QueryId),
    /// Process one fanned-out stream event (synchronous; replies with the
    /// shard's [`EventOutcome`]).
    Process(Arc<Document>),
    /// Process a whole fanned-out burst in one round-trip (synchronous;
    /// replies with one [`EventOutcome`] per document, in order). The burst
    /// itself is shared: sending it to `N` shards bumps one refcount per
    /// shard, not one per document per shard.
    ProcessBatch(Arc<[Arc<Document>]>),
    /// Extract a query's complete ITA state for migration (synchronous).
    Extract(QueryId),
    /// Install a migrated query under its existing id (synchronous).
    Install(QueryId, Box<QueryMigration>),
    /// Read a query's current top-k.
    Results(QueryId),
    /// Read a query's ITA bookkeeping snapshot.
    QueryStats(QueryId),
    /// Read the shard's shadow-index statistics.
    IndexStats,
    /// Read the shard's accumulated per-worker processing statistics.
    Stats,
    /// Zero the shard's processing statistics (e.g. after an untimed
    /// fill/register phase, so later readings cover only measured events).
    ResetStats,
    /// Read the shard's valid-document count (identical across shards).
    NumValidDocuments,
    /// Arm one injected fault: the next stream event is applied for real and
    /// the worker then panics mid-request, exercising warm recovery (or
    /// poisoning the shard when checkpointing is off).
    ArmFault,
    /// Rebuild the shard from the coordinator's durable state: a fresh
    /// term-filtered engine, the given queries registered, the given window
    /// replayed. Clears any poisoning.
    Rebuild(Vec<Arc<Document>>, Vec<(QueryId, ContinuousQuery)>),
    /// Audit the shard engine's deep structural invariants (synchronous;
    /// replies [`ShardReply::InvariantsChecked`]). A violation panics inside
    /// the worker's guard and surfaces as a [`ShardReply::Fault`] carrying
    /// the assertion message. Driven by the testkit lockstep runner under
    /// the `invariant-checks` feature; never sent on production paths.
    CheckInvariants,
    /// Drain the worker's final stats and exit the thread (the shutdown
    /// handshake that keeps stats from being lost on drop).
    Shutdown,
    /// Test hook: exit the worker thread *without* replying, exactly as a
    /// killed thread would look from the coordinator's side.
    Crash,
}

/// A reply travelling shard → coordinator, always in request order (each
/// channel pair carries at most one outstanding request per shard). Every
/// reply piggybacks a [`FaultNotice`] so warm recoveries performed inside
/// the worker reach the coordinator's [`FaultStats`].
enum ShardReply {
    Registered,
    Deregistered(bool),
    Processed(EventOutcome),
    /// The per-document outcomes plus the most expensive single event of the
    /// batch as timed by this worker — the coordinator folds the maxima so
    /// batch-fed monitors still learn a true per-event maximum.
    ProcessedBatch(Vec<EventOutcome>, Duration),
    Extracted(Option<Box<QueryMigration>>),
    Installed,
    Results(Vec<RankedDocument>),
    QueryStats(Option<ItaQueryStats>),
    IndexStats(IndexStats),
    Stats(ProcessingStats),
    StatsReset,
    NumValidDocuments(usize),
    Armed,
    Rebuilt,
    /// The shard's engine passed its structural audit.
    InvariantsChecked,
    /// The worker's final stats, sent once in response to
    /// [`ShardRequest::Shutdown`] just before the thread exits.
    ShuttingDown(ProcessingStats),
    /// The request could not be served: the worker caught a panic it could
    /// not recover from in place (or its state is already gone). The shard
    /// is degraded until the coordinator rebuilds it.
    Fault(ShardFault),
}

/// Fault bookkeeping piggybacked on every reply: panics the worker caught
/// and warm recoveries it performed since the previous reply.
#[derive(Debug, Clone, Copy, Default)]
struct FaultNotice {
    faults: u64,
    recoveries: u64,
    recovery: Duration,
}

/// One logged state mutation — the unit of the worker's warm-recovery op
/// log. Every variant is deterministic: applying the same op to the same
/// engine state always produces the same next state, which is what makes
/// checkpoint + replay byte-identical to never having faulted.
#[derive(Clone)]
enum LogOp {
    RegisterBatch(Vec<(QueryId, ContinuousQuery)>),
    Deregister(QueryId),
    Process(Arc<Document>),
    Extract(QueryId),
    Install(QueryId, Box<QueryMigration>),
}

/// The value a [`LogOp`] application produces (discarded during replay).
enum LogValue {
    Unit,
    Deregistered(bool),
    Processed(EventOutcome),
    Extracted(Option<Box<QueryMigration>>),
}

impl LogOp {
    /// Applies the op to `engine`. Payloads are cloned per application so
    /// the op stays replayable.
    fn apply(&self, engine: &mut ItaEngine) -> LogValue {
        match self {
            LogOp::RegisterBatch(batch) => {
                engine.register_batch_with_ids(batch.clone());
                LogValue::Unit
            }
            LogOp::Deregister(qid) => LogValue::Deregistered(engine.deregister(*qid)),
            LogOp::Process(doc) => LogValue::Processed(engine.process_shared(Arc::clone(doc))),
            LogOp::Extract(qid) => LogValue::Extracted(engine.extract_query(*qid).map(Box::new)),
            LogOp::Install(qid, migration) => {
                engine.install_query(*qid, (**migration).clone());
                LogValue::Unit
            }
        }
    }
}

/// Renders a caught panic payload as the fault context string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-thread state of one shard worker: the engine (absent while the
/// shard is poisoned), the warm-recovery checkpoint + op log, local
/// processing stats, and the fault-injection hooks.
struct ShardWorker {
    shard: usize,
    window: SlidingWindow,
    config: ItaConfig,
    /// Mutations between checkpoints; `0` disables warm recovery.
    checkpoint_interval: usize,
    /// `None` while poisoned (a panic warm recovery could not undo).
    engine: Option<ItaEngine>,
    /// Clone of the engine as of the last checkpoint; `None` only when
    /// checkpointing is disabled or the shard is poisoned.
    checkpoint: Option<Box<ItaEngine>>,
    /// Mutations applied since the checkpoint, replayed on restore.
    log: Vec<LogOp>,
    stats: ProcessingStats,
    /// Fault bookkeeping since the last reply (drained onto each reply).
    notice: FaultNotice,
    /// Injected faults armed via [`ShardRequest::ArmFault`]; each is
    /// consumed by one stream event.
    armed_faults: u32,
    /// Poison documents already detonated once — consumed pre-attempt so
    /// the post-recovery retry (and any rebuild replay) runs clean.
    seen_poison: HashSet<u64>, // cts-lint: allow(nondet-iteration, membership probes only; never iterated)
    /// The fault that poisoned the shard, replayed to callers until rebuilt.
    pending_fault: Option<ShardFault>,
}

impl ShardWorker {
    fn new(
        shard: usize,
        window: SlidingWindow,
        config: ItaConfig,
        checkpoint_interval: usize,
    ) -> Self {
        let engine = ItaEngine::term_filtered(window, config);
        // Checkpointing the empty engine up front means warm recovery is
        // available from the very first mutation.
        let checkpoint = (checkpoint_interval > 0).then(|| Box::new(engine.clone()));
        Self {
            shard,
            window,
            config,
            checkpoint_interval,
            engine: Some(engine),
            checkpoint,
            log: Vec::new(),
            stats: ProcessingStats::default(),
            notice: FaultNotice::default(),
            armed_faults: 0,
            seen_poison: HashSet::new(), // cts-lint: allow(nondet-iteration, membership probes only; never iterated)
            pending_fault: None,
        }
    }

    /// The fault to report while the shard's engine state is gone.
    fn pending(&self) -> ShardFault {
        self.pending_fault.clone().unwrap_or_else(|| ShardFault {
            shard: self.shard,
            context: "shard state is gone (awaiting rebuild)".to_string(),
        })
    }

    /// Drops all recoverable state after a panic that warm recovery could
    /// not undo; every engine-touching request now replies `fault` until the
    /// coordinator rebuilds the shard.
    fn poison(&mut self, fault: ShardFault) {
        self.engine = None;
        self.checkpoint = None;
        self.log.clear();
        self.pending_fault = Some(fault);
    }

    /// Appends a successful mutation to the op log, refreshing the
    /// checkpoint when the log reaches the configured interval.
    fn log_mutation(&mut self, op: LogOp) {
        if self.checkpoint_interval == 0 {
            return;
        }
        self.log.push(op);
        if self.log.len() >= self.checkpoint_interval {
            self.take_checkpoint();
        }
    }

    fn take_checkpoint(&mut self) {
        if let Some(engine) = self.engine.as_ref() {
            self.checkpoint = Some(Box::new(engine.clone()));
            self.log.clear();
        }
    }

    /// Warm recovery: rebuilds the engine as checkpoint + replayed op log —
    /// byte-identical to the pre-fault state, because every logged op is
    /// deterministic and the replayed history is the original one. Replay
    /// does **not** touch `stats` (those mutations were already recorded
    /// when they first succeeded). Returns `false` when checkpointing is
    /// off.
    fn try_restore(&mut self) -> bool {
        let Some(checkpoint) = self.checkpoint.as_deref() else {
            return false;
        };
        let start = Instant::now(); // cts-lint: allow(clock-in-apply, measures recovery cost only; never read by engine state)
        let mut engine = checkpoint.clone();
        for op in &self.log {
            op.apply(&mut engine);
        }
        self.engine = Some(engine);
        self.notice.recoveries += 1;
        self.notice.recovery += start.elapsed();
        true
    }

    /// Whether this event should detonate: an armed injected fault, or the
    /// first sighting of a poison document. Consumed **before** the attempt
    /// so the post-recovery retry runs clean — which also means the
    /// injection models a *partial* failure (the event is applied for real,
    /// then the panic fires), forcing a genuine state restore rather than a
    /// no-op retry.
    fn take_injection(&mut self, doc: &Document) -> bool {
        if self.armed_faults > 0 {
            self.armed_faults -= 1;
            return true;
        }
        is_poison_document(doc) && self.seen_poison.insert(doc.id.0)
    }

    /// Applies one guarded, logged mutation with a single warm-recovery
    /// retry: panic → restore checkpoint + log → retry once → second panic
    /// poisons the shard.
    fn mutate(&mut self, op: LogOp) -> Result<LogValue, ShardFault> {
        for attempt in 0..2u8 {
            let Some(engine) = self.engine.as_mut() else {
                return Err(self.pending());
            };
            match catch_unwind(AssertUnwindSafe(|| op.apply(engine))) {
                Ok(value) => {
                    self.log_mutation(op);
                    return Ok(value);
                }
                Err(payload) => {
                    let context = panic_message(payload.as_ref());
                    self.notice.faults += 1;
                    if attempt == 0 && self.try_restore() {
                        continue;
                    }
                    let fault = ShardFault {
                        shard: self.shard,
                        context,
                    };
                    self.poison(fault.clone());
                    return Err(fault);
                }
            }
        }
        unreachable!("both attempts return") // cts-lint: allow(panic-in-hot-path, the two-attempt loop returns on every arm)
    }

    /// Processes one stream event under the guard, recording stats for the
    /// successful attempt only (so a recovered run's counters match a
    /// fault-free run exactly). Fault injection detonates *after* the event
    /// is applied.
    fn process_one(&mut self, doc: Arc<Document>) -> Result<(EventOutcome, Duration), ShardFault> {
        let mut inject = self.take_injection(&doc);
        let doc_id = doc.id;
        let op = LogOp::Process(doc);
        for attempt in 0..2u8 {
            let Some(engine) = self.engine.as_mut() else {
                return Err(self.pending());
            };
            let injected = std::mem::take(&mut inject);
            let start = Instant::now(); // cts-lint: allow(clock-in-apply, times the event for stats; never read by engine state)
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let value = op.apply(engine);
                if injected {
                    // cts-lint: allow(panic-in-hot-path, deliberate injected fault; the recovery machinery under test)
                    panic!("injected fault while processing document {}", doc_id.0);
                }
                value
            }));
            match outcome {
                Ok(LogValue::Processed(outcome)) => {
                    let elapsed = start.elapsed();
                    self.stats.record(&outcome, elapsed);
                    self.log_mutation(op);
                    return Ok((outcome, elapsed));
                }
                Ok(_) => unreachable!("a Process op yields Processed"), // cts-lint: allow(panic-in-hot-path, LogOp::apply maps Process to Processed)
                Err(payload) => {
                    let context = panic_message(payload.as_ref());
                    self.notice.faults += 1;
                    if attempt == 0 && self.try_restore() {
                        continue;
                    }
                    let fault = ShardFault {
                        shard: self.shard,
                        context,
                    };
                    self.poison(fault.clone());
                    return Err(fault);
                }
            }
        }
        unreachable!("both attempts return") // cts-lint: allow(panic-in-hot-path, the two-attempt loop returns on every arm)
    }

    /// Serves one request with the outer panic guard: anything that escapes
    /// the per-op guards (e.g. a panic during restore replay) poisons the
    /// shard instead of unwinding the thread.
    fn guarded(&mut self, request: ShardRequest) -> ShardReply {
        match catch_unwind(AssertUnwindSafe(|| self.handle(request))) {
            Ok(reply) => reply,
            Err(payload) => {
                self.notice.faults += 1;
                let fault = ShardFault {
                    shard: self.shard,
                    context: panic_message(payload.as_ref()),
                };
                self.poison(fault.clone());
                ShardReply::Fault(fault)
            }
        }
    }

    fn handle(&mut self, request: ShardRequest) -> ShardReply {
        match request {
            ShardRequest::RegisterBatch(batch) => match self.mutate(LogOp::RegisterBatch(batch)) {
                Ok(_) => ShardReply::Registered,
                Err(fault) => ShardReply::Fault(fault),
            },
            ShardRequest::Deregister(qid) => match self.mutate(LogOp::Deregister(qid)) {
                Ok(LogValue::Deregistered(removed)) => ShardReply::Deregistered(removed),
                Ok(_) => unreachable!("a Deregister op yields Deregistered"), // cts-lint: allow(panic-in-hot-path, LogOp::apply maps Deregister to Deregistered)
                Err(fault) => ShardReply::Fault(fault),
            },
            ShardRequest::Process(doc) => match self.process_one(doc) {
                Ok((outcome, _)) => ShardReply::Processed(outcome),
                Err(fault) => ShardReply::Fault(fault),
            },
            ShardRequest::ProcessBatch(docs) => {
                // One channel round-trip covers the whole burst; the worker
                // still processes and times each event individually, so the
                // outcomes and the per-worker stats are exactly the
                // per-event loop's. A mid-batch unrecoverable fault fails
                // the whole batch reply (the shard is degraded anyway).
                let mut max_event = Duration::ZERO;
                let mut outcomes = Vec::with_capacity(docs.len());
                for doc in docs.iter() {
                    match self.process_one(Arc::clone(doc)) {
                        Ok((outcome, elapsed)) => {
                            max_event = max_event.max(elapsed);
                            outcomes.push(outcome);
                        }
                        Err(fault) => return ShardReply::Fault(fault),
                    }
                }
                ShardReply::ProcessedBatch(outcomes, max_event)
            }
            ShardRequest::Extract(qid) => match self.mutate(LogOp::Extract(qid)) {
                Ok(LogValue::Extracted(migration)) => ShardReply::Extracted(migration),
                Ok(_) => unreachable!("an Extract op yields Extracted"), // cts-lint: allow(panic-in-hot-path, LogOp::apply maps Extract to Extracted)
                Err(fault) => ShardReply::Fault(fault),
            },
            ShardRequest::Install(qid, migration) => {
                match self.mutate(LogOp::Install(qid, migration)) {
                    Ok(_) => ShardReply::Installed,
                    Err(fault) => ShardReply::Fault(fault),
                }
            }
            ShardRequest::Results(qid) => match self.engine.as_ref() {
                Some(engine) => ShardReply::Results(engine.current_results(qid)),
                None => ShardReply::Fault(self.pending()),
            },
            ShardRequest::QueryStats(qid) => match self.engine.as_ref() {
                Some(engine) => ShardReply::QueryStats(engine.query_stats(qid)),
                None => ShardReply::Fault(self.pending()),
            },
            ShardRequest::IndexStats => match self.engine.as_ref() {
                Some(engine) => ShardReply::IndexStats(engine.index_stats()),
                None => ShardReply::Fault(self.pending()),
            },
            ShardRequest::Stats => ShardReply::Stats(self.stats),
            ShardRequest::ResetStats => {
                self.stats = ProcessingStats::default();
                ShardReply::StatsReset
            }
            ShardRequest::NumValidDocuments => match self.engine.as_ref() {
                Some(engine) => ShardReply::NumValidDocuments(engine.num_valid_documents()),
                None => ShardReply::Fault(self.pending()),
            },
            ShardRequest::ArmFault => {
                self.armed_faults += 1;
                ShardReply::Armed
            }
            ShardRequest::CheckInvariants => match self.engine.as_ref() {
                Some(engine) => {
                    // A violation panics right here; `guarded` converts it
                    // into a `Fault` reply carrying the assertion message.
                    engine.check_invariants();
                    ShardReply::InvariantsChecked
                }
                None => ShardReply::Fault(self.pending()),
            },
            ShardRequest::Rebuild(window_docs, queries) => {
                // Cold resurrection from the coordinator's durable state:
                // register the queries, then replay the window as arrivals.
                // The mirror holds only currently-valid documents, so the
                // replay triggers no expirations; no injection check and no
                // stats recording — recovery work is not stream work.
                let mut engine = ItaEngine::term_filtered(self.window, self.config);
                engine.register_batch_with_ids(queries);
                for doc in window_docs {
                    engine.process_shared(doc);
                }
                self.engine = Some(engine);
                self.log.clear();
                self.checkpoint = None;
                if self.checkpoint_interval > 0 {
                    self.take_checkpoint();
                }
                self.pending_fault = None;
                self.armed_faults = 0;
                ShardReply::Rebuilt
            }
            ShardRequest::Shutdown | ShardRequest::Crash => {
                // cts-lint: allow(panic-in-hot-path, the worker loop intercepts lifecycle requests before handle)
                unreachable!("lifecycle requests are handled by the worker loop")
            }
        }
    }
}

/// The persistent worker loop: one guarded [`ShardWorker`] driven by the
/// shard's request channel until the coordinator hangs up or sends the
/// shutdown handshake. A panic while serving a request is caught and
/// reported as [`ShardReply::Fault`]; it never unwinds the thread.
fn worker_loop(
    shard: usize,
    window: SlidingWindow,
    config: ItaConfig,
    checkpoint_interval: usize,
    requests: Receiver<ShardRequest>,
    replies: Sender<(ShardReply, FaultNotice)>,
) {
    let mut worker = ShardWorker::new(shard, window, config, checkpoint_interval);
    while let Ok(request) = requests.recv() {
        let reply = match request {
            ShardRequest::Shutdown => {
                // Final-stats handshake: surrendering the accumulated stats
                // in the reply is what keeps them from dying with the
                // thread.
                let _ = replies.send((
                    ShardReply::ShuttingDown(worker.stats),
                    FaultNotice::default(),
                ));
                return;
            }
            ShardRequest::Crash => return,
            request => worker.guarded(request),
        };
        let notice = std::mem::take(&mut worker.notice);
        if replies.send((reply, notice)).is_err() {
            // The coordinator is gone; nothing left to serve.
            break;
        }
    }
}

/// Spawns `requested` workers through `spawn`, assigning contiguous slot
/// indices. A failed spawn is retried once; a slot that fails twice is
/// dropped (the engine degrades to fewer shards) instead of aborting
/// construction. Returns the spawned handles plus the retry and fallback
/// counts for [`FaultStats::spawn_retries`] / [`FaultStats::spawn_fallbacks`].
fn spawn_with_retry<T, E>(
    requested: usize,
    spawn: &mut dyn FnMut(usize) -> Result<T, E>,
) -> (Vec<T>, u64, u64) {
    let mut spawned = Vec::with_capacity(requested);
    let mut retries = 0u64;
    let mut fallbacks = 0u64;
    for _ in 0..requested {
        // Slots stay contiguous: a dropped slot's index is reused by the
        // next attempt, so shard indices always equal 0..spawned.len().
        let slot = spawned.len();
        match spawn(slot) {
            Ok(handle) => spawned.push(handle),
            Err(_) => {
                retries += 1;
                match spawn(slot) {
                    Ok(handle) => spawned.push(handle),
                    Err(_) => fallbacks += 1,
                }
            }
        }
    }
    (spawned, retries, fallbacks)
}

/// Policy of the coordinator's skew-aware query rebalancer.
///
/// The coordinator evaluates balance whenever the load distribution can have
/// changed and a migration is safe — after a registration, after a
/// deregistration and after each processed batch, never inside an event —
/// and migrates queries from the heaviest to the lightest shard while
/// **both** hold:
///
/// * the heaviest shard's query count exceeds
///   `max_over_ideal × (num_queries / shards)` (the uniform share), and
/// * moving one query actually reduces imbalance
///   (`heaviest − lightest ≥ 2`).
///
/// Each migration strictly decreases the load distribution's sum of squares,
/// so a rebalance pass always terminates; `max_migrations_per_check` is a
/// safety valve bounding how much migration cost (state transfer plus
/// shadow-list backfill over the window) a single boundary may absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Whether the rebalancer runs at all. Disabled, placement is the
    /// static hash of [`ShardedItaEngine::shard_of`] forever.
    pub enabled: bool,
    /// Trigger ratio over the uniform per-shard query count. Must be at
    /// least 1; values close to 1 level aggressively, larger values tolerate
    /// more skew before paying migration cost.
    pub max_over_ideal: f64,
    /// Upper bound on migrations performed per balance check.
    pub max_migrations_per_check: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_over_ideal: 1.25,
            max_migrations_per_check: usize::MAX,
        }
    }
}

impl RebalanceConfig {
    /// A configuration with rebalancing switched off (static hash
    /// placement).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// One shard's channels and thread handle, as owned by the coordinator.
#[derive(Debug)]
struct ShardHandle {
    sender: Sender<ShardRequest>,
    receiver: Receiver<(ShardReply, FaultNotice)>,
    thread: Option<JoinHandle<()>>,
}

/// Fault counters and per-shard degradation flags, behind a [`RefCell`] so
/// the `&self` read paths (which may *observe* a fault but cannot repair
/// it) can still account for what they saw. The engine is not `Sync` (its
/// channel `Sender`s already are not), so the single-threaded `RefCell`
/// discipline costs nothing.
#[derive(Debug)]
struct FaultState {
    stats: FaultStats,
    degraded: Vec<bool>,
}

/// The paper's ITA, executed across `N` query-partitioned worker shards
/// with panic isolation and supervised recovery.
///
/// Implements [`Engine`] with results and event outcomes byte-identical to
/// the single-shard [`ItaEngine`] over any stream — including streams with
/// worker faults, as long as warm recovery is enabled (the default). See
/// the module docs for the partitioning rule, the fan-out and batch
/// protocols, the skew-aware rebalancer, the fault model and the exactness
/// argument.
#[derive(Debug)]
pub struct ShardedItaEngine {
    /// Per-shard channels + thread handles. Workers are respawned in place
    /// on cold resurrection, so the vector length is the shard count.
    workers: Vec<ShardHandle>,
    window: SlidingWindow,
    config: ItaConfig,
    rebalance: RebalanceConfig,
    faults: FaultConfig,
    /// The routing table: which shard currently hosts each registered query.
    /// Starts as the hash placement of [`ShardedItaEngine::shard_of`];
    /// migrations move entries.
    assignment: HashMap<QueryId, usize>, // cts-lint: allow(nondet-iteration, point lookups only; never iterated)
    /// Per-shard resident query ids (registration order). `placement[s].len()`
    /// is shard `s`'s query load.
    placement: Vec<Vec<QueryId>>,
    /// Durable copy of every registered query — with `placement` and
    /// `mirror`, everything cold resurrection needs. Updated **before** any
    /// fan-out, so a request lost to a crashed worker is still
    /// reconstructible.
    registry: HashMap<QueryId, ContinuousQuery>, // cts-lint: allow(nondet-iteration, indexed in placement order; never iterated)
    /// Durable mirror of the sliding window (oldest first), pruned with the
    /// exact policy the workers apply. The `Arc`s are shared with the
    /// workers' stores, so the mirror costs pointers, not documents.
    mirror: VecDeque<Arc<Document>>,
    fault_state: RefCell<FaultState>,
    /// Total queries migrated by the rebalancer since construction.
    migrations: u64,
    /// Most expensive single event seen inside any processed batch, as timed
    /// by the workers (max over shards and batches). This is what
    /// [`Engine::batched_max_event_time`] reports; cleared by
    /// [`ShardedItaEngine::reset_shard_stats`].
    batched_max_event: Duration,
    num_queries: usize,
    next_query: u32,
    clock: Timestamp,
}

impl ShardedItaEngine {
    /// Creates an engine with `shards` persistent worker shards, each
    /// running a term-filtered [`ItaEngine`] under the given window policy
    /// and configuration, with the default [`RebalanceConfig`] and
    /// [`FaultConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(window: SlidingWindow, config: ItaConfig, shards: usize) -> Self {
        Self::with_rebalance(window, config, shards, RebalanceConfig::default())
    }

    /// Creates an engine with an explicit rebalancing policy.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `rebalance.max_over_ideal < 1`.
    pub fn with_rebalance(
        window: SlidingWindow,
        config: ItaConfig,
        shards: usize,
        rebalance: RebalanceConfig,
    ) -> Self {
        Self::with_faults(window, config, shards, rebalance, FaultConfig::default())
    }

    /// Creates an engine with explicit rebalancing and fault-tolerance
    /// policies. A worker spawn that fails is retried once and then its
    /// shard is dropped — the engine degrades to fewer shards (counted in
    /// [`FaultStats::spawn_fallbacks`]) rather than aborting.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, if `rebalance.max_over_ideal < 1`, or if
    /// not a single worker could be spawned.
    pub fn with_faults(
        window: SlidingWindow,
        config: ItaConfig,
        shards: usize,
        rebalance: RebalanceConfig,
        faults: FaultConfig,
    ) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        assert!(
            rebalance.max_over_ideal >= 1.0,
            "a rebalance trigger below the uniform share would thrash"
        );
        let interval = faults.checkpoint_interval;
        let mut spawn = |slot: usize| Self::spawn_worker(slot, window, config, interval);
        let (workers, spawn_retries, spawn_fallbacks) = spawn_with_retry(shards, &mut spawn);
        assert!(
            !workers.is_empty(),
            "could not spawn any shard worker (all {shards} spawn attempts failed twice)"
        );
        if spawn_fallbacks > 0 {
            eprintln!(
                "cts-shard: degraded to {} of {} requested shards ({} spawn attempts failed twice)",
                workers.len(),
                shards,
                spawn_fallbacks
            );
        }
        let spawned = workers.len();
        Self {
            workers,
            window,
            config,
            rebalance,
            faults,
            assignment: HashMap::new(), // cts-lint: allow(nondet-iteration, point lookups only; never iterated)
            placement: vec![Vec::new(); spawned],
            registry: HashMap::new(), // cts-lint: allow(nondet-iteration, indexed in placement order; never iterated)
            mirror: VecDeque::new(),
            fault_state: RefCell::new(FaultState {
                stats: FaultStats {
                    spawn_retries,
                    spawn_fallbacks,
                    ..FaultStats::default()
                },
                degraded: vec![false; spawned],
            }),
            migrations: 0,
            batched_max_event: Duration::ZERO,
            num_queries: 0,
            next_query: 0,
            clock: Timestamp::ZERO,
        }
    }

    fn spawn_worker(
        shard: usize,
        window: SlidingWindow,
        config: ItaConfig,
        checkpoint_interval: usize,
    ) -> std::io::Result<ShardHandle> {
        let (request_tx, request_rx) = std::sync::mpsc::channel();
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let thread = std::thread::Builder::new()
            .name(format!("cts-shard-{shard}"))
            .spawn(move || {
                worker_loop(
                    shard,
                    window,
                    config,
                    checkpoint_interval,
                    request_rx,
                    reply_tx,
                )
            })?;
        Ok(ShardHandle {
            sender: request_tx,
            receiver: reply_rx,
            thread: Some(thread),
        })
    }

    /// Number of worker shards (after any construction-time spawn
    /// fallbacks).
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The sliding-window policy in force.
    pub fn window(&self) -> SlidingWindow {
        self.window
    }

    /// The per-shard ITA configuration.
    pub fn config(&self) -> ItaConfig {
        self.config
    }

    /// The configured rebalancing policy.
    pub fn rebalance_config(&self) -> RebalanceConfig {
        self.rebalance
    }

    /// The configured fault-tolerance policy.
    pub fn fault_config(&self) -> FaultConfig {
        self.faults
    }

    /// Replaces the rebalancing policy at runtime. Takes effect at the next
    /// balance check (the next registration, deregistration or batch
    /// boundary) — an already-skewed placement is repaired then, not
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if `rebalance.max_over_ideal < 1`.
    pub fn set_rebalance_config(&mut self, rebalance: RebalanceConfig) {
        assert!(
            rebalance.max_over_ideal >= 1.0,
            "a rebalance trigger below the uniform share would thrash"
        );
        self.rebalance = rebalance;
    }

    /// Total queries the rebalancer has migrated between shards.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Per-shard resident query counts, in shard order — the load measure
    /// the rebalancer levels.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.placement.iter().map(Vec::len).collect()
    }

    /// The shard currently hosting `query`, if it is registered. This is the
    /// routing table every query-addressed request consults; it starts at
    /// the hash placement of [`ShardedItaEngine::shard_of`] and diverges
    /// from it once the rebalancer migrates the query.
    pub fn assigned_shard(&self, query: QueryId) -> Option<usize> {
        self.assignment.get(&query).copied()
    }

    /// The **initial placement** rule: which shard a freshly registered
    /// `query` is routed to (the rebalancer may move it later —
    /// [`ShardedItaEngine::assigned_shard`] is the live routing table).
    /// Fibonacci-hashing the id spreads both sequential registration order
    /// and arbitrary (churned) id sets evenly across shards, and stays
    /// stable for a given id across deregistrations. The shard is taken from
    /// the hash's **high** bits via a multiply-shift — `hash % N` would keep
    /// only the low bits, which for power-of-two `N` degenerate to a
    /// permutation of the id's own low bits (an all-even surviving id set
    /// would then occupy only half the shards).
    pub fn shard_of(&self, query: QueryId) -> usize {
        let hashed = (u64::from(query.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((u128::from(hashed) * self.workers.len() as u128) >> 64) as usize
    }

    /// Whether `query` is registered but hosted on a degraded shard — its
    /// reported results are stale (empty) until
    /// [`ShardedItaEngine::recover_degraded`] resurrects the shard. Only
    /// observable under [`FaultPolicy::ServeDegraded`] (or
    /// [`FaultPolicy::FailFast`] before an explicit recovery).
    pub fn query_is_stale(&self, query: QueryId) -> bool {
        self.assigned_shard(query)
            .is_some_and(|shard| self.is_degraded(shard))
    }

    fn is_degraded(&self, shard: usize) -> bool {
        self.fault_state.borrow().degraded[shard]
    }

    fn any_degraded(&self) -> bool {
        self.fault_state.borrow().degraded.iter().any(|d| *d)
    }

    /// Marks a disconnect-discovered fault (the worker thread is gone, so
    /// no [`FaultNotice`] counted it).
    fn note_disconnect(&self, shard: usize) {
        let mut state = self.fault_state.borrow_mut();
        if !state.degraded[shard] {
            state.stats.faults += 1;
            state.degraded[shard] = true;
        }
    }

    /// Folds a worker-side fault notice into the coordinator's counters.
    fn absorb_notice(&self, notice: FaultNotice) {
        if notice.faults == 0 && notice.recoveries == 0 {
            return;
        }
        let mut state = self.fault_state.borrow_mut();
        state.stats.faults += notice.faults;
        state.stats.recoveries += notice.recoveries;
        state.stats.recovery_micros += notice.recovery.as_micros() as u64;
    }

    /// Sends one request to `shard`, marking it degraded on disconnect.
    fn send(&self, shard: usize, request: ShardRequest) -> Result<(), EngineError> {
        if self.workers[shard].sender.send(request).is_err() {
            self.note_disconnect(shard);
            return Err(EngineError::ShardUnavailable { shard });
        }
        Ok(())
    }

    /// Receives one reply from `shard`, absorbing its fault notice and
    /// converting faults/disconnects into typed errors (marking the shard
    /// degraded).
    fn recv_reply(&self, shard: usize) -> Result<ShardReply, EngineError> {
        match self.workers[shard].receiver.recv() {
            Ok((reply, notice)) => {
                self.absorb_notice(notice);
                match reply {
                    ShardReply::Fault(fault) => {
                        self.fault_state.borrow_mut().degraded[shard] = true;
                        Err(EngineError::ShardFault(fault))
                    }
                    reply => Ok(reply),
                }
            }
            Err(_) => {
                self.note_disconnect(shard);
                Err(EngineError::ShardUnavailable { shard })
            }
        }
    }

    /// Sends one request to `shard` and blocks for its reply.
    fn call_shard(&self, shard: usize, request: ShardRequest) -> Result<ShardReply, EngineError> {
        self.send(shard, request)?;
        self.recv_reply(shard)
    }

    /// Applies the degraded-mode policy to shards degraded by *previous*
    /// operations, at the start of every mutating operation.
    fn ensure_serviceable(&mut self) -> Result<(), EngineError> {
        if !self.any_degraded() {
            return Ok(());
        }
        match self.faults.policy {
            FaultPolicy::BlockUntilRecovered => self.recover_degraded().map(|_| ()),
            FaultPolicy::ServeDegraded => Ok(()),
            FaultPolicy::FailFast => {
                let state = self.fault_state.borrow();
                match state.degraded.iter().position(|d| *d) {
                    Some(shard) => Err(EngineError::ShardUnavailable { shard }),
                    None => Ok(()),
                }
            }
        }
    }

    /// Applies the degraded-mode policy to a fault observed *during* the
    /// current operation (the shard is already marked degraded).
    fn handle_shard_failure(&mut self, error: EngineError) -> Result<(), EngineError> {
        match self.faults.policy {
            FaultPolicy::FailFast => Err(error),
            FaultPolicy::BlockUntilRecovered => self.recover_degraded().map(|_| ()),
            FaultPolicy::ServeDegraded => Ok(()),
        }
    }

    /// Resurrects every degraded shard from the durable registry + window
    /// mirror, returning how many shards were rebuilt. Under
    /// [`FaultPolicy::BlockUntilRecovered`] this happens automatically; the
    /// other policies require this explicit call.
    pub fn recover_degraded(&mut self) -> Result<usize, EngineError> {
        let degraded: Vec<usize> = {
            let state = self.fault_state.borrow();
            state
                .degraded
                .iter()
                .enumerate()
                .filter(|(_, d)| **d)
                .map(|(shard, _)| shard)
                .collect()
        };
        let mut recovered = 0;
        for shard in degraded {
            self.resurrect(shard)?;
            recovered += 1;
        }
        Ok(recovered)
    }

    /// Cold resurrection of one shard: respawn the worker thread if it is
    /// gone, then rebuild its engine from the durable registry and window
    /// mirror. Rebuilt results are exact; re-derived thresholds (and hence
    /// future work counters) are not guaranteed to match a fault-free
    /// history — see DESIGN.md §10.
    fn resurrect(&mut self, shard: usize) -> Result<(), EngineError> {
        let start = Instant::now(); // cts-lint: allow(clock-in-apply, measures recovery cost only; never read by engine state)
        let queries: Vec<(QueryId, ContinuousQuery)> = self.placement[shard]
            .iter()
            .map(|qid| (*qid, self.registry[qid].clone()))
            .collect();
        let window_docs: Vec<Arc<Document>> = self.mirror.iter().cloned().collect();
        let request = ShardRequest::Rebuild(window_docs, queries);
        if let Err(failed_send) = self.workers[shard].sender.send(request) {
            // The thread is gone, not just poisoned: respawn, then resend.
            let request = failed_send.0;
            self.respawn(shard)?;
            self.workers[shard].sender.send(request).map_err(|_| {
                self.note_disconnect(shard);
                EngineError::ShardUnavailable { shard }
            })?;
        }
        match self.recv_reply(shard)? {
            ShardReply::Rebuilt => {
                let mut state = self.fault_state.borrow_mut();
                state.degraded[shard] = false;
                state.stats.recoveries += 1;
                state.stats.recovery_micros += start.elapsed().as_micros() as u64;
                Ok(())
            }
            _ => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
        }
    }

    /// Replaces a dead worker thread with a fresh one (empty engine, same
    /// shard index), retrying the spawn once. The caller follows up with a
    /// [`ShardRequest::Rebuild`].
    fn respawn(&mut self, shard: usize) -> Result<(), EngineError> {
        if let Some(thread) = self.workers[shard].thread.take() {
            // The thread already exited (its channel disconnected); reap it.
            let _ = thread.join();
        }
        let interval = self.faults.checkpoint_interval;
        let handle = Self::spawn_worker(shard, self.window, self.config, interval).or_else(|_| {
            self.fault_state.borrow_mut().stats.spawn_retries += 1;
            Self::spawn_worker(shard, self.window, self.config, interval)
        });
        match handle {
            Ok(handle) => {
                self.workers[shard] = handle;
                Ok(())
            }
            Err(_) => Err(EngineError::ShardUnavailable { shard }),
        }
    }

    /// Appends `doc` to the durable window mirror and prunes it with the
    /// exact policy the workers apply, returning how many documents expired
    /// (cross-checked against the shards' outcomes in debug builds).
    fn push_mirror(&mut self, doc: Arc<Document>) -> usize {
        let now = doc.arrival;
        self.mirror.push_back(doc);
        let before = self.mirror.len();
        match self.window.kind() {
            WindowKind::CountBased { size } => {
                while self.mirror.len() > size {
                    self.mirror.pop_front();
                }
            }
            WindowKind::TimeBased { duration_micros } => {
                let cutoff = now.as_micros().saturating_sub(duration_micros);
                while self
                    .mirror
                    .front()
                    .is_some_and(|doc| doc.arrival.as_micros() < cutoff)
                {
                    self.mirror.pop_front();
                }
            }
        }
        before - self.mirror.len()
    }

    /// The healthy shard with the fewest resident queries (registration
    /// reroute target while another shard is degraded).
    fn lightest_healthy_shard(&self) -> Option<usize> {
        let state = self.fault_state.borrow();
        (0..self.workers.len())
            .filter(|&shard| !state.degraded[shard])
            .min_by_key(|&shard| self.placement[shard].len())
    }

    /// Fallible single-event processing: the `try_*` twin of
    /// [`Engine::process_document`]. Under
    /// [`FaultPolicy::BlockUntilRecovered`] (the default) a mid-event fault
    /// is repaired before returning and the merged outcome is preserved
    /// whenever the faulted shard could be restored warm or resent the
    /// event; under [`FaultPolicy::ServeDegraded`] the healthy shards'
    /// partial outcome is returned; under [`FaultPolicy::FailFast`] the
    /// first fault surfaces as a typed error.
    pub fn try_process(&mut self, doc: Document) -> Result<EventOutcome, EngineError> {
        self.ensure_serviceable()?;
        self.clock = doc.arrival;
        let doc = Arc::new(doc);
        let shards = self.workers.len();
        let mut sent = vec![false; shards];
        let mut first_error: Option<EngineError> = None;
        for (shard, sent) in sent.iter_mut().enumerate() {
            if self.is_degraded(shard) {
                continue;
            }
            match self.send(shard, ShardRequest::Process(Arc::clone(&doc))) {
                Ok(()) => *sent = true,
                Err(err) => {
                    let mut unresolved = Some(err);
                    // The worker died before seeing the event. The mirror
                    // does not contain it yet, so a rebuild here restores
                    // the exact pre-event state, and resending makes the
                    // restored shard process the event like every other
                    // shard — the outcome is fully preserved.
                    if self.faults.policy == FaultPolicy::BlockUntilRecovered
                        && self.resurrect(shard).is_ok()
                        && self
                            .send(shard, ShardRequest::Process(Arc::clone(&doc)))
                            .is_ok()
                    {
                        *sent = true;
                        unresolved = None;
                    }
                    if let Some(err) = unresolved {
                        first_error.get_or_insert(err);
                    }
                }
            }
        }
        // The event becomes durable before outcomes are read: any recovery
        // from here on replays it from the mirror.
        let expired = self.push_mirror(Arc::clone(&doc));
        let mut merged: Option<EventOutcome> = None;
        for (shard, &sent) in sent.iter().enumerate() {
            if !sent {
                continue;
            }
            match self.recv_reply(shard) {
                Ok(ShardReply::Processed(outcome)) => {
                    debug_assert_eq!(
                        outcome.expired, expired,
                        "mirror disagreed with a shard's expirations"
                    );
                    match merged.as_mut() {
                        Some(into) => into.merge_shard(&outcome),
                        None => merged = Some(outcome),
                    }
                }
                Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
                Err(err) => {
                    first_error.get_or_insert(err);
                }
            }
        }
        if let Some(err) = first_error {
            self.handle_shard_failure(err)?;
        }
        if self.faults.policy == FaultPolicy::ServeDegraded && self.any_degraded() {
            self.fault_state.borrow_mut().stats.events_during_degraded += 1;
        }
        Ok(merged.unwrap_or(EventOutcome {
            arrived: doc.id,
            expired,
            ..EventOutcome::default()
        }))
    }

    /// Fallible burst processing: the `try_*` twin of
    /// [`Engine::process_batch`], with the same policy semantics as
    /// [`ShardedItaEngine::try_process`]. An unrecoverable mid-batch fault
    /// loses the faulted shard's outcome contributions for the whole batch
    /// (its state is rebuilt post-batch from the mirror) — reachable only
    /// with checkpointing disabled.
    pub fn try_process_batch(
        &mut self,
        docs: Vec<Document>,
    ) -> Result<Vec<EventOutcome>, EngineError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        self.ensure_serviceable()?;
        if let Some(last) = docs.last() {
            self.clock = last.arrival;
        }
        let docs: Arc<[Arc<Document>]> = docs.into_iter().map(Arc::new).collect();
        let shards = self.workers.len();
        let mut sent = vec![false; shards];
        let mut first_error: Option<EngineError> = None;
        for (shard, sent) in sent.iter_mut().enumerate() {
            if self.is_degraded(shard) {
                continue;
            }
            match self.send(shard, ShardRequest::ProcessBatch(Arc::clone(&docs))) {
                Ok(()) => *sent = true,
                Err(err) => {
                    let mut unresolved = Some(err);
                    if self.faults.policy == FaultPolicy::BlockUntilRecovered
                        && self.resurrect(shard).is_ok()
                        && self
                            .send(shard, ShardRequest::ProcessBatch(Arc::clone(&docs)))
                            .is_ok()
                    {
                        *sent = true;
                        unresolved = None;
                    }
                    if let Some(err) = unresolved {
                        first_error.get_or_insert(err);
                    }
                }
            }
        }
        let expired: Vec<usize> = docs
            .iter()
            .map(|doc| self.push_mirror(Arc::clone(doc)))
            .collect();
        let mut merged: Option<Vec<EventOutcome>> = None;
        let mut batch_max = Duration::ZERO;
        for (shard, &sent) in sent.iter().enumerate() {
            if !sent {
                continue;
            }
            match self.recv_reply(shard) {
                Ok(ShardReply::ProcessedBatch(outcomes, max_event)) => {
                    batch_max = batch_max.max(max_event);
                    match merged.as_mut() {
                        Some(into) => {
                            debug_assert_eq!(
                                outcomes.len(),
                                into.len(),
                                "shards saw different batches"
                            );
                            for (into, outcome) in into.iter_mut().zip(&outcomes) {
                                into.merge_shard(outcome);
                            }
                        }
                        None => merged = Some(outcomes),
                    }
                }
                Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
                Err(err) => {
                    first_error.get_or_insert(err);
                }
            }
        }
        self.batched_max_event = self.batched_max_event.max(batch_max);
        if let Some(err) = first_error {
            self.handle_shard_failure(err)?;
        }
        if self.faults.policy == FaultPolicy::ServeDegraded && self.any_degraded() {
            self.fault_state.borrow_mut().stats.events_during_degraded += docs.len() as u64;
        }
        // The batch boundary is a safe point to repair skew: no event is in
        // flight, so a migration cannot split an arrival from its
        // expirations.
        self.maybe_rebalance();
        Ok(merged.unwrap_or_else(|| {
            docs.iter()
                .zip(&expired)
                .map(|(doc, &expired)| EventOutcome {
                    arrived: doc.id,
                    expired,
                    ..EventOutcome::default()
                })
                .collect()
        }))
    }

    /// Fallible registration burst: the `try_*` twin of
    /// [`Engine::register_batch`]. Durable state (registry, placement,
    /// routing) is updated **before** the fan-out, so a worker fault during
    /// registration is recoverable: the rebuild re-registers the batch from
    /// the registry. Under [`FaultPolicy::ServeDegraded`], queries whose
    /// hash shard is degraded are rerouted to the lightest healthy shard.
    /// On error the durable state keeps the minted registrations; a later
    /// [`ShardedItaEngine::recover_degraded`] makes the workers agree.
    pub fn try_register_batch(
        &mut self,
        queries: Vec<ContinuousQuery>,
    ) -> Result<Vec<QueryId>, EngineError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        self.ensure_serviceable()?;
        let shards = self.workers.len();
        if !(0..shards).any(|shard| !self.is_degraded(shard)) {
            return Err(EngineError::ShardUnavailable { shard: 0 });
        }
        let mut per_shard: Vec<Vec<(QueryId, ContinuousQuery)>> = vec![Vec::new(); shards];
        let mut ids = Vec::with_capacity(queries.len());
        for query in queries {
            let qid = QueryId(self.next_query);
            self.next_query += 1;
            let mut shard = self.shard_of(qid);
            if self.is_degraded(shard) {
                shard = self
                    .lightest_healthy_shard()
                    // cts-lint: allow(panic-in-hot-path, guarded by the all-degraded early return above)
                    .expect("a healthy shard exists (checked above)"); // cts-lint: allow(unwrap-in-service, guarded by the all-degraded early return above)
            }
            per_shard[shard].push((qid, query.clone()));
            self.registry.insert(qid, query);
            ids.push(qid);
        }
        // Durable state first: a fault from here on resurrects with the new
        // queries included.
        for (shard, group) in per_shard.iter().enumerate() {
            for (qid, _) in group {
                self.assignment.insert(*qid, shard);
                self.placement[shard].push(*qid);
                self.num_queries += 1;
            }
        }
        // Send every shard's group before awaiting any reply, so the shards
        // run their (window-sized) registration merges in parallel.
        let mut pending = Vec::new();
        let mut first_error: Option<EngineError> = None;
        for (shard, group) in per_shard.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            let group = std::mem::take(group);
            match self.send(shard, ShardRequest::RegisterBatch(group)) {
                Ok(()) => pending.push(shard),
                Err(err) => {
                    // No resend needed: the rebuild registers the group
                    // straight from the registry.
                    let mut unresolved = Some(err);
                    if self.faults.policy == FaultPolicy::BlockUntilRecovered
                        && self.resurrect(shard).is_ok()
                    {
                        unresolved = None;
                    }
                    if let Some(err) = unresolved {
                        first_error.get_or_insert(err);
                    }
                }
            }
        }
        for shard in pending {
            match self.recv_reply(shard) {
                Ok(ShardReply::Registered) => {}
                Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
                Err(err) => {
                    first_error.get_or_insert(err);
                }
            }
        }
        if let Some(err) = first_error {
            self.handle_shard_failure(err)?;
        }
        // One balance check for the whole burst: rebalancing is
        // outcome-invisible (migration is behaviour-preserving), so checking
        // once here instead of after every query changes placement only.
        self.maybe_rebalance();
        Ok(ids)
    }

    /// Fallible deregistration: the `try_*` twin of [`Engine::deregister`],
    /// surfacing [`EngineError::UnknownQuery`] instead of `false`. Durable
    /// state is updated first, so a worker fault during removal is
    /// recoverable (the rebuild simply omits the query); removing a query
    /// hosted on a degraded shard under [`FaultPolicy::ServeDegraded`] is
    /// registry-only — the worker's copy dies with the eventual rebuild.
    pub fn try_deregister(&mut self, query: QueryId) -> Result<bool, EngineError> {
        self.ensure_serviceable()?;
        let Some(shard) = self.assigned_shard(query) else {
            return Err(EngineError::UnknownQuery(query));
        };
        self.assignment.remove(&query);
        self.registry.remove(&query);
        let at = self.placement[shard]
            .iter()
            .position(|&resident| resident == query)
            // cts-lint: allow(panic-in-hot-path, assignment and placement move together; check_invariants audits the agreement)
            .expect("routing table lists the query on its shard"); // cts-lint: allow(unwrap-in-service, a missing placement entry is routing corruption; panicking beats serving wrong shards)
        self.placement[shard].swap_remove(at);
        self.num_queries -= 1;
        if !self.is_degraded(shard) {
            match self.call_shard(shard, ShardRequest::Deregister(query)) {
                Ok(ShardReply::Deregistered(removed)) => {
                    assert!(
                        removed,
                        "routing table said shard {shard} hosts {query}, shard disagreed"
                    );
                }
                Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
                Err(err) => {
                    // Durable state already dropped the query; recovery
                    // rebuilds the shard without it.
                    self.handle_shard_failure(err)?;
                }
            }
        }
        self.maybe_rebalance();
        Ok(true)
    }

    /// A query's ITA bookkeeping snapshot, if it is registered and its shard
    /// is healthy (served by the shard currently hosting it; `None` while
    /// the shard is degraded).
    pub fn query_stats(&self, query: QueryId) -> Option<ItaQueryStats> {
        let shard = self.assigned_shard(query)?;
        if self.is_degraded(shard) {
            return None;
        }
        match self.call_shard(shard, ShardRequest::QueryStats(query)) {
            Ok(ShardReply::QueryStats(stats)) => stats,
            Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
            Err(_) => None,
        }
    }

    /// Per-shard shadow-index statistics, in shard order. Postings sum to
    /// the sharded system's total index footprint (terms referenced by
    /// queries in two shards are mirrored in both); every healthy shard
    /// reports the same document count. Degraded shards report zeroed
    /// stats.
    pub fn shard_index_stats(&self) -> Vec<IndexStats> {
        self.broadcast_collect(
            || ShardRequest::IndexStats,
            |reply| match reply {
                ShardReply::IndexStats(stats) => stats,
                _ => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
            },
            |_| IndexStats::default(),
        )
    }

    /// Per-shard processing statistics (each worker times its own event
    /// handling), in shard order. Degraded shards report zeroed stats.
    pub fn shard_stats(&self) -> Vec<ProcessingStats> {
        self.broadcast_collect(
            || ShardRequest::Stats,
            |reply| match reply {
                ShardReply::Stats(stats) => stats,
                _ => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
            },
            |_| ProcessingStats::default(),
        )
    }

    /// Zeroes every worker's processing statistics. Call after an untimed
    /// setup phase (window fill, workload registration) so
    /// [`ShardedItaEngine::shard_stats`] and
    /// [`ShardedItaEngine::aggregate_shard_stats`] cover only the events
    /// processed afterwards.
    pub fn reset_shard_stats(&mut self) {
        let acks = self.broadcast_collect(
            || ShardRequest::ResetStats,
            |reply| matches!(reply, ShardReply::StatsReset),
            // A degraded shard's eventual rebuild starts from zeroed stats
            // anyway.
            |_| true,
        );
        assert!(acks.iter().all(|ok| *ok), "shard replied out of order");
        self.batched_max_event = Duration::ZERO;
    }

    /// The exact aggregate of every worker's processing statistics, merged
    /// with [`ProcessingStats::absorb`]. `events` counts each stream event
    /// once per shard (every shard handles every event); `total_time` is the
    /// summed busy time across workers — divide by the wall-clock event time
    /// of an enclosing [`crate::Monitor`] to read parallel utilisation.
    pub fn aggregate_shard_stats(&self) -> ProcessingStats {
        let mut merged = ProcessingStats::default();
        for stats in self.shard_stats() {
            merged.absorb(&stats);
        }
        merged
    }

    /// Consumes the engine, draining and returning the exact aggregate of
    /// the workers' final [`ProcessingStats`] through the shutdown
    /// handshake (what a plain drop would discard).
    pub fn shutdown(mut self) -> ProcessingStats {
        self.drain()
    }

    /// The shutdown path shared by [`ShardedItaEngine::shutdown`] and
    /// `Drop`: handshake each worker's final stats out, close the channels,
    /// join the threads. Idempotent — the second call sees no workers.
    fn drain(&mut self) -> ProcessingStats {
        let mut merged = ProcessingStats::default();
        for mut handle in self.workers.drain(..) {
            if handle.sender.send(ShardRequest::Shutdown).is_ok() {
                while let Ok((reply, _)) = handle.receiver.recv() {
                    if let ShardReply::ShuttingDown(stats) = reply {
                        merged.absorb(&stats);
                        break;
                    }
                }
            }
            if let Some(thread) = handle.thread.take() {
                if thread.join().is_err() && !std::thread::panicking() {
                    // cts-lint: allow(panic-in-hot-path, shutdown path surfacing a worker panic that escaped the guards)
                    panic!("a shard worker panicked; see stderr for the root cause");
                }
            }
        }
        merged
    }

    /// Fans one request to every healthy shard, then collects the replies
    /// in shard order, substituting `fallback` for degraded or faulting
    /// shards (the fan-out/fan-in used for stream events and statistics).
    fn broadcast_collect<T>(
        &self,
        mut request: impl FnMut() -> ShardRequest,
        mut unwrap: impl FnMut(ShardReply) -> T,
        mut fallback: impl FnMut(usize) -> T,
    ) -> Vec<T> {
        let shards = self.workers.len();
        let mut sent = vec![false; shards];
        for (shard, sent) in sent.iter_mut().enumerate() {
            if self.is_degraded(shard) {
                continue;
            }
            *sent = self.send(shard, request()).is_ok();
        }
        (0..shards)
            .map(|shard| {
                if !sent[shard] {
                    return fallback(shard);
                }
                match self.recv_reply(shard) {
                    Ok(reply) => unwrap(reply),
                    Err(_) => fallback(shard),
                }
            })
            .collect()
    }

    /// Runs one balance check (see [`RebalanceConfig`]): while the heaviest
    /// shard exceeds the trigger ratio over the uniform share **and** a
    /// migration reduces imbalance, move the heaviest shard's most recently
    /// placed query to the lightest shard. Called at load-change and batch
    /// boundaries only — never between an arrival and its expirations — so
    /// migration can never split an event. Skipped entirely while any shard
    /// is degraded (migration would touch unrecovered state).
    fn maybe_rebalance(&mut self) {
        if !self.rebalance.enabled || self.workers.len() < 2 || self.any_degraded() {
            return;
        }
        let ideal = self.num_queries as f64 / self.workers.len() as f64;
        let trigger = self.rebalance.max_over_ideal * ideal;
        for _ in 0..self.rebalance.max_migrations_per_check {
            let Some((heavy, _)) = self
                .placement
                .iter()
                .enumerate()
                .max_by_key(|(_, resident)| resident.len())
            else {
                break;
            };
            let Some((light, _)) = self
                .placement
                .iter()
                .enumerate()
                .min_by_key(|(_, resident)| resident.len())
            else {
                break;
            };
            let (high, low) = (self.placement[heavy].len(), self.placement[light].len());
            if (high as f64) <= trigger || high - low < 2 {
                break;
            }
            let slot = self.placement[heavy].len() - 1;
            if self.migrate(heavy, slot, light).is_err() {
                // The faulting shard is marked degraded; the next
                // operation's policy deals with it.
                break;
            }
        }
    }

    /// Moves the complete ITA state of the query at `placement[from][slot]`
    /// to shard `to` (extract, reroute, install). Outcome-neutral by
    /// construction: the migrated thresholds and result set are installed
    /// verbatim and the receiving shadow index backfills any term that just
    /// became live, so every subsequent event is processed exactly as it
    /// would have been on the old shard. The routing tables move **between**
    /// extract and install, so a fault on either side leaves durable state
    /// pointing at the shard that should (re)build the query.
    fn migrate(&mut self, from: usize, slot: usize, to: usize) -> Result<(), EngineError> {
        let qid = self.placement[from][slot];
        let migration = match self.call_shard(from, ShardRequest::Extract(qid))? {
            ShardReply::Extracted(Some(migration)) => migration,
            ShardReply::Extracted(None) => {
                // cts-lint: allow(panic-in-hot-path, a corrupt routing table is unrecoverable; check_invariants audits it)
                panic!("rebalance: shard {from} does not host {qid} (routing table corrupt)")
            }
            _ => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
        };
        self.placement[from].swap_remove(slot);
        self.placement[to].push(qid);
        self.assignment.insert(qid, to);
        self.migrations += 1;
        match self.call_shard(to, ShardRequest::Install(qid, migration))? {
            ShardReply::Installed => Ok(()),
            _ => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
        }
    }

    /// Test hook for the chaos suite: makes `shard`'s worker thread exit
    /// without replying, exactly as a killed thread would look from the
    /// coordinator's side. The next operation that touches the shard
    /// observes the disconnect and applies the fault policy. Returns whether
    /// the crash request reached the worker.
    pub fn inject_disconnect(&mut self, shard: usize) -> bool {
        let shard = shard % self.workers.len();
        self.workers[shard].sender.send(ShardRequest::Crash).is_ok()
    }
}

impl Engine for ShardedItaEngine {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        self.register_batch(vec![query])
            .pop()
            // cts-lint: allow(panic-in-hot-path, register_batch returns exactly one id per query)
            .expect("one id per registered query") // cts-lint: allow(unwrap-in-service, register_batch returns exactly one id per query)
    }

    fn register_batch(&mut self, queries: Vec<ContinuousQuery>) -> Vec<QueryId> {
        self.try_register_batch(queries)
            // cts-lint: allow(panic-in-hot-path, the infallible Engine surface; typed errors live on the try_* twin)
            .unwrap_or_else(|err| panic!("sharded engine could not register: {err}"))
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        match self.try_deregister(query) {
            Ok(removed) => removed,
            Err(EngineError::UnknownQuery(_)) => false,
            // cts-lint: allow(panic-in-hot-path, the infallible Engine surface; typed errors live on the try_* twin)
            Err(err) => panic!("sharded engine could not deregister: {err}"),
        }
    }

    fn process_document(&mut self, doc: Document) -> EventOutcome {
        self.try_process(doc)
            // cts-lint: allow(panic-in-hot-path, the infallible Engine surface; typed errors live on the try_* twin)
            .unwrap_or_else(|err| panic!("sharded engine could not serve the event: {err}"))
    }

    fn process_batch(&mut self, docs: Vec<Document>) -> Vec<EventOutcome> {
        self.try_process_batch(docs)
            // cts-lint: allow(panic-in-hot-path, the infallible Engine surface; typed errors live on the try_* twin)
            .unwrap_or_else(|err| panic!("sharded engine could not serve the batch: {err}"))
    }

    fn current_results(&self, query: QueryId) -> Vec<RankedDocument> {
        let Some(shard) = self.assigned_shard(query) else {
            return Vec::new();
        };
        if self.is_degraded(shard) {
            // Stale under ServeDegraded: the caller can distinguish "no
            // matches" from "shard down" via `query_is_stale`.
            return Vec::new();
        }
        match self.call_shard(shard, ShardRequest::Results(query)) {
            Ok(ShardReply::Results(results)) => results,
            Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
            Err(_) => Vec::new(),
        }
    }

    fn num_queries(&self) -> usize {
        self.num_queries
    }

    fn num_valid_documents(&self) -> usize {
        for shard in 0..self.workers.len() {
            if self.is_degraded(shard) {
                continue;
            }
            match self.call_shard(shard, ShardRequest::NumValidDocuments) {
                Ok(ShardReply::NumValidDocuments(count)) => return count,
                Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
                Err(_) => continue,
            }
        }
        // Every worker is down; the mirror is the authoritative window.
        self.mirror.len()
    }

    fn clock(&self) -> Timestamp {
        self.clock
    }

    fn name(&self) -> &'static str {
        "sharded-ita"
    }

    fn batched_max_event_time(&self) -> Option<Duration> {
        Some(self.batched_max_event)
    }

    fn inject_fault(&mut self, shard: usize) -> bool {
        let shard = shard % self.workers.len();
        if self.is_degraded(shard) {
            return false;
        }
        match self.call_shard(shard, ShardRequest::ArmFault) {
            Ok(ShardReply::Armed) => true,
            Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
            Err(_) => false,
        }
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        let state = self.fault_state.borrow();
        let mut stats = state.stats;
        stats.degraded_shards = state.degraded.iter().filter(|down| **down).count();
        Some(stats)
    }

    /// Audits the coordinator's durable state (registry, routing table and
    /// placement must agree exactly — they are what cold resurrection
    /// rebuilds shards from) and then has every healthy worker audit its own
    /// engine via [`ShardRequest::CheckInvariants`]; a worker-side violation
    /// comes back as a fault carrying the assertion message and is re-raised
    /// here. Degraded shards are skipped — their state is gone by
    /// definition and the rebuild starts from the durable state just
    /// audited.
    fn check_invariants(&self) {
        assert_eq!(
            self.assignment.len(),
            self.num_queries,
            "routing table size disagrees with the query count"
        );
        assert_eq!(
            self.registry.len(),
            self.num_queries,
            "query registry size disagrees with the query count"
        );
        let placed: usize = self.placement.iter().map(Vec::len).sum();
        assert_eq!(
            placed, self.num_queries,
            "placement tables hold {placed} residents over {} queries",
            self.num_queries
        );
        for (shard, resident) in self.placement.iter().enumerate() {
            for qid in resident {
                assert_eq!(
                    self.assignment.get(qid).copied(),
                    Some(shard),
                    "{qid} is resident on shard {shard} but routed elsewhere"
                );
                assert!(
                    self.registry.contains_key(qid),
                    "{qid} is placed but missing from the durable registry"
                );
            }
        }
        for shard in 0..self.workers.len() {
            if self.is_degraded(shard) {
                continue;
            }
            match self.call_shard(shard, ShardRequest::CheckInvariants) {
                Ok(ShardReply::InvariantsChecked) => {}
                Ok(_) => unreachable!("shard replied out of order"), // cts-lint: allow(panic-in-hot-path, the SPSC protocol pairs every reply with its request)
                Err(err) => {
                    // cts-lint: allow(panic-in-hot-path, audit-only path re-raising a worker-side assertion)
                    panic!("shard {shard} failed its invariant audit: {err}")
                }
            }
        }
    }
}

impl Drop for ShardedItaEngine {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::assert_lockstep_event;
    use cts_index::DocId;
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, terms: &[(u32, f64)]) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w))),
        )
    }

    fn query(terms: &[(u32, f64)], k: usize) -> ContinuousQuery {
        ContinuousQuery::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w)), k)
    }

    #[test]
    fn single_shard_locksteps_with_the_plain_engine() {
        let window = SlidingWindow::count_based(8);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), 1);
        let qa = reference.register(query(&[(1, 0.6), (2, 0.8)], 2));
        let qb = sharded.register(query(&[(1, 0.6), (2, 0.8)], 2));
        assert_eq!(qa, qb);
        for i in 0..40u64 {
            let d = doc(i, &[((i % 4) as u32, 0.1 + (i % 6) as f64 * 0.1)]);
            assert_lockstep_event(&mut reference, &mut sharded, &d, &[qa]);
        }
        assert_eq!(sharded.name(), "sharded-ita");
        assert_eq!(sharded.num_shards(), 1);
        assert_eq!(sharded.clock(), reference.clock());
        assert_eq!(sharded.num_valid_documents(), 8);
    }

    #[test]
    fn queries_are_spread_across_shards_and_results_survive_routing() {
        let window = SlidingWindow::count_based(16);
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), 4);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut qids = Vec::new();
        for t in 0..8u32 {
            let q = query(&[(t % 5, 0.5), (5 + t % 3, 0.5)], 3);
            let qs = sharded.register(q.clone());
            let qr = reference.register(q);
            assert_eq!(qs, qr);
            qids.push(qs);
        }
        // The hash really does use more than one shard for 8 sequential ids.
        let used: std::collections::HashSet<usize> =
            qids.iter().map(|&q| sharded.shard_of(q)).collect();
        assert!(used.len() > 1, "all queries landed on one shard");
        for i in 0..60u64 {
            let d = doc(
                i,
                &[
                    ((i % 7) as u32, 0.1 + (i % 9) as f64 * 0.08),
                    ((3 + i % 4) as u32, 0.3),
                ],
            );
            assert_lockstep_event(&mut reference, &mut sharded, &d, &qids);
        }
        assert_eq!(sharded.num_queries(), 8);
        assert!(sharded.deregister(qids[3]));
        assert!(!sharded.deregister(qids[3]));
        assert_eq!(sharded.num_queries(), 7);
        assert!(reference.deregister(qids[3]));
        for i in 60..90u64 {
            let d = doc(i, &[((i % 7) as u32, 0.2), (8, 0.4)]);
            let live: Vec<QueryId> = qids.iter().copied().filter(|&q| q != qids[3]).collect();
            assert_lockstep_event(&mut reference, &mut sharded, &d, &live);
        }
        assert!(sharded.current_results(qids[3]).is_empty());
    }

    #[test]
    fn shard_statistics_aggregate_exactly() {
        let mut sharded =
            ShardedItaEngine::new(SlidingWindow::count_based(6), ItaConfig::default(), 3);
        for t in 0..6u32 {
            sharded.register(query(&[(t, 1.0)], 2));
        }
        let mut events = 0u64;
        for i in 0..25u64 {
            sharded.process_document(doc(i, &[((i % 6) as u32, 0.1 + (i % 5) as f64 * 0.1)]));
            events += 1;
        }
        let per_shard = sharded.shard_stats();
        assert_eq!(per_shard.len(), 3);
        // Every shard sees every event.
        for stats in &per_shard {
            assert_eq!(stats.events, events);
        }
        let merged = sharded.aggregate_shard_stats();
        assert_eq!(merged.events, events * 3);
        assert_eq!(
            merged.total_time,
            per_shard.iter().map(|s| s.total_time).sum()
        );
        // Shadow indexes: same window everywhere, query terms partitioned.
        let index = sharded.shard_index_stats();
        assert!(index.iter().all(|s| s.documents == 6));
        assert!(index.iter().map(|s| s.postings).sum::<usize>() > 0);
        // The queries' stats are served by the owning shard.
        let q0 = QueryId(0);
        assert!(sharded.query_stats(q0).is_some());
        assert!(sharded.query_stats(QueryId(99)).is_none());
        // Resetting zeroes every worker's accumulator; later events are
        // counted from the reset point only.
        sharded.reset_shard_stats();
        assert_eq!(sharded.aggregate_shard_stats(), ProcessingStats::default());
        sharded.process_document(doc(25, &[(0, 0.5)]));
        let after = sharded.shard_stats();
        assert!(after.iter().all(|s| s.events == 1));
    }

    #[test]
    fn hash_partition_spreads_stride_patterned_id_sets() {
        // The failure mode of a low-bits partition: a churned workload whose
        // surviving ids share low bits (all even, or one residue mod 8)
        // collapses onto a fraction of the shards. The multiply-shift over
        // the Fibonacci hash keys on the high bits instead, so such sets
        // still spread.
        let sharded = ShardedItaEngine::new(SlidingWindow::count_based(4), ItaConfig::default(), 8);
        for stride in [2u32, 4, 8] {
            let used: std::collections::HashSet<usize> = (0..64u32)
                .map(|i| sharded.shard_of(QueryId(i * stride)))
                .collect();
            assert!(
                used.len() >= 6,
                "stride-{stride} ids reached only {} of 8 shards",
                used.len()
            );
        }
    }

    #[test]
    fn process_batch_matches_the_per_event_loop() {
        let window = SlidingWindow::count_based(10);
        let mut singles = ShardedItaEngine::new(window, ItaConfig::default(), 3);
        let mut batched = ShardedItaEngine::new(window, ItaConfig::default(), 3);
        let mut qids = Vec::new();
        for t in 0..6u32 {
            let q = query(&[(t, 0.5), (6 + t % 2, 0.5)], 2);
            let qa = singles.register(q.clone());
            let qb = batched.register(q);
            assert_eq!(qa, qb);
            qids.push(qa);
        }
        let make = |lo: u64, hi: u64| -> Vec<Document> {
            (lo..hi)
                .map(|i| doc(i, &[((i % 8) as u32, 0.1 + (i % 5) as f64 * 0.15)]))
                .collect()
        };
        for chunk in [(0u64, 7u64), (7, 8), (8, 20), (20, 33)] {
            let batch = make(chunk.0, chunk.1);
            let expected: Vec<EventOutcome> = batch
                .clone()
                .into_iter()
                .map(|d| singles.process_document(d))
                .collect();
            let actual = batched.process_batch(batch);
            assert_eq!(expected, actual, "chunk {chunk:?} diverged");
            for &q in &qids {
                assert_eq!(singles.current_results(q), batched.current_results(q));
            }
        }
        assert_eq!(batched.clock(), singles.clock());
        assert!(batched.process_batch(Vec::new()).is_empty());
    }

    #[test]
    fn rebalancer_levels_an_engineered_skew() {
        let window = SlidingWindow::count_based(12);
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), 4);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut qids = Vec::new();
        for t in 0..24u32 {
            let q = query(&[(t % 7, 0.6), (7 + t % 5, 0.4)], 2);
            qids.push(sharded.register(q.clone()));
            reference.register(q);
        }
        for i in 0..30u64 {
            let d = doc(i, &[((i % 12) as u32, 0.1 + (i % 6) as f64 * 0.12)]);
            assert_lockstep_event(&mut reference, &mut sharded, &d, &qids);
        }
        // Concentrate the surviving population on the initial-hash shard 0,
        // then make sure the rebalancer spread it back out.
        let survivors: Vec<QueryId> = qids
            .iter()
            .copied()
            .filter(|&q| sharded.shard_of(q) == 0)
            .collect();
        assert!(survivors.len() >= 2, "need at least two survivors");
        for &q in &qids {
            if !survivors.contains(&q) {
                assert!(sharded.deregister(q));
                assert!(reference.deregister(q));
            }
        }
        assert!(sharded.migrations() > 0, "no migration happened");
        let loads = sharded.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), survivors.len());
        let uniform = survivors.len() as f64 / 4.0;
        assert!(
            *loads.iter().max().unwrap() as f64 <= (2.0 * uniform).max(1.0),
            "loads {loads:?} not within 2x of uniform {uniform}"
        );
        // Routing follows the migrations: some survivor no longer lives on
        // its hash shard, yet every survivor is still routable.
        assert!(survivors
            .iter()
            .any(|&q| sharded.assigned_shard(q) != Some(0)));
        assert!(survivors
            .iter()
            .all(|&q| sharded.assigned_shard(q).is_some()));
        for i in 30..60u64 {
            let d = doc(i, &[((i % 12) as u32, 0.2 + (i % 4) as f64 * 0.2)]);
            assert_lockstep_event(&mut reference, &mut sharded, &d, &survivors);
        }
    }

    #[test]
    fn disabled_rebalancer_keeps_the_static_hash_placement() {
        let window = SlidingWindow::count_based(8);
        let mut sharded = ShardedItaEngine::with_rebalance(
            window,
            ItaConfig::default(),
            4,
            RebalanceConfig::disabled(),
        );
        assert!(!sharded.rebalance_config().enabled);
        let qids: Vec<QueryId> = (0..16u32)
            .map(|t| sharded.register(query(&[(t % 5, 1.0)], 1)))
            .collect();
        let survivors: Vec<QueryId> = qids
            .iter()
            .copied()
            .filter(|&q| sharded.shard_of(q) == 0)
            .collect();
        for &q in &qids {
            if !survivors.contains(&q) {
                assert!(sharded.deregister(q));
            }
        }
        assert_eq!(sharded.migrations(), 0);
        for &q in &survivors {
            assert_eq!(sharded.assigned_shard(q), Some(0));
        }
        assert_eq!(sharded.shard_loads()[0], survivors.len());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedItaEngine::new(SlidingWindow::count_based(4), ItaConfig::default(), 0);
    }

    #[test]
    #[should_panic(expected = "would thrash")]
    fn sub_uniform_rebalance_trigger_is_rejected() {
        let _ = ShardedItaEngine::with_rebalance(
            SlidingWindow::count_based(4),
            ItaConfig::default(),
            2,
            RebalanceConfig {
                max_over_ideal: 0.5,
                ..RebalanceConfig::default()
            },
        );
    }

    #[test]
    fn dropping_the_engine_joins_its_workers() {
        let handle = {
            let sharded =
                ShardedItaEngine::new(SlidingWindow::count_based(4), ItaConfig::default(), 2);
            sharded.num_shards()
        };
        // Reaching here without hanging means the workers exited and the
        // supervisor joined them.
        assert_eq!(handle, 2);
    }

    #[test]
    fn spawn_with_retry_counts_retries_and_keeps_slots_contiguous() {
        // Call 1 (slot 1) fails once then succeeds; calls 3 and 4 both fail,
        // dropping one requested shard.
        let mut calls = 0u32;
        let mut spawn = |slot: usize| -> Result<usize, ()> {
            calls += 1;
            match calls {
                2 | 4 | 5 => Err(()),
                _ => Ok(slot),
            }
        };
        let (spawned, retries, fallbacks) = spawn_with_retry(4, &mut spawn);
        // The engine degrades to 3 shards; their slot indices stay 0..3
        // because a dropped slot's index is reused by the next attempt.
        assert_eq!(spawned, vec![0, 1, 2]);
        assert_eq!(retries, 2);
        assert_eq!(fallbacks, 1);
    }

    #[test]
    fn spawn_with_retry_all_failures_yields_no_workers() {
        let mut spawn = |_slot: usize| -> Result<usize, ()> { Err(()) };
        let (spawned, retries, fallbacks) = spawn_with_retry(3, &mut spawn);
        assert!(spawned.is_empty());
        assert_eq!(retries, 3);
        assert_eq!(fallbacks, 3);
    }

    #[test]
    fn injected_fault_recovers_warm_and_stays_in_lockstep() {
        let window = SlidingWindow::count_based(8);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let mut sharded = ShardedItaEngine::new(window, ItaConfig::default(), 2);
        let mut qids = Vec::new();
        for t in 0..6u32 {
            let q = query(&[(t % 4, 0.6), (4 + t % 3, 0.4)], 2);
            let qr = reference.register(q.clone());
            let qs = sharded.register(q);
            assert_eq!(qr, qs);
            qids.push(qr);
        }
        for i in 0..40u64 {
            if i % 9 == 3 {
                assert!(sharded.inject_fault((i % 2) as usize), "arming failed");
            }
            let d = doc(i, &[((i % 6) as u32, 0.1 + (i % 5) as f64 * 0.12)]);
            assert_lockstep_event(&mut reference, &mut sharded, &d, &qids);
        }
        let stats = sharded.fault_stats().expect("sharded engine tracks faults");
        assert!(stats.faults >= 4, "expected every armed fault to fire");
        assert_eq!(
            stats.recoveries, stats.faults,
            "every injected fault should recover warm"
        );
        assert_eq!(stats.degraded_shards, 0);
        assert_eq!(stats.events_during_degraded, 0);
        assert!(stats.recovery_micros > 0 || stats.recoveries == 0);
    }

    #[test]
    fn shutdown_drains_final_worker_stats() {
        let mut sharded =
            ShardedItaEngine::new(SlidingWindow::count_based(4), ItaConfig::default(), 3);
        sharded.register(query(&[(0, 1.0)], 1));
        for i in 0..10u64 {
            sharded.process_document(doc(i, &[(0, 0.5)]));
        }
        let merged = sharded.shutdown();
        // Every shard saw every event, and the handshake preserved the
        // counters a plain drop would discard.
        assert_eq!(merged.events, 30);
        assert!(merged.total_time > Duration::ZERO);
    }
}
