//! Reusable randomized differential-test machinery.
//!
//! Every differential suite in this repository follows the same shape: a
//! seeded source of adversarial randomness, an interleaved script of
//! operations (query registration/deregistration, single stream events,
//! whole bursts) applied in lockstep to several engines, equality asserted
//! after every step, and — on failure — output that lets a human reproduce
//! and understand the divergence. Before this module, that machinery was
//! re-implemented in `tests/sharded_equivalence.rs`,
//! `tests/paper_scale_soak.rs` and `cts-index`'s
//! `tests/differential_impact_list.rs`; now they all share it:
//!
//! * [`ScriptRng`] — a tiny deterministic SplitMix64 generator, so scripts
//!   are reproducible from a single `u64` seed with no external dependency
//!   (the suites in other crates reuse it too).
//! * [`Op`] / [`OpScript`] / [`generate_script`] — a concrete, printable op
//!   script: register/deregister/feed/feed-batch with tie-heavy documents
//!   and arbitrary arrival gaps (a gap of zero produces equal timestamps,
//!   the time-window edge case). Scripts either come out of the seeded
//!   generator or are assembled by hand/by a corpus stream
//!   ([`OpScript::push`]) — the paper-scale soak builds its script from the
//!   synthetic WSJ stream and runs it through the same runner.
//! * [`run_script`] — the lockstep runner over `N` boxed [`Engine`]s:
//!   engine 0 is the reference; every op must produce identical query-id
//!   assignment, identical [`crate::EventOutcome`]s (optional, for engines
//!   with identical accounting, e.g. ITA vs sharded ITA) and identical
//!   top-k on every (sampled) live query. Failures are returned as data,
//!   not panics, so the minimizer can re-run candidate scripts.
//! * [`assert_script_equivalence`] — the test-facing entry point: generate,
//!   run, and on divergence shrink the script with [`minimize_script`]
//!   (greedy delta debugging over fresh engines) and panic with the **seed**
//!   and the **minimized script** — small enough to read, sufficient to
//!   replay.

use std::fmt;

use cts_index::{DocId, Document, QueryId, Timestamp};
use cts_text::{TermId, WeightedVector};

use crate::engine::{Engine, IngestEvent};
use crate::monitor::OverloadStats;
use crate::query::ContinuousQuery;
use crate::service::{Admission, ServiceConfig, StreamService};
use crate::validate::{results_match, DEFAULT_TOLERANCE};

/// A tiny deterministic pseudo-random generator (SplitMix64) for building
/// reproducible op scripts from a single `u64` seed.
///
/// Deliberately not `rand`: the testkit ships in the library crate (so
/// other crates' test suites can reuse it) and a 10-line generator keeps it
/// dependency-free while remaining statistically fine for fuzzing-style
/// interleavings.
#[derive(Debug, Clone)]
pub struct ScriptRng {
    state: u64,
}

impl ScriptRng {
    /// Creates a generator for `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        // Multiply-shift keeps the draw uniform enough for test scripts
        // without a rejection loop.
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// A uniform draw from `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// A Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    /// A uniform pick from `values`.
    pub fn pick<'a, T>(&mut self, values: &'a [T]) -> &'a T {
        &values[self.below(values.len())]
    }
}

/// One operation of a differential script.
#[derive(Debug, Clone)]
pub enum Op {
    /// Register this query on every engine (ids must come out identical).
    Register(ContinuousQuery),
    /// Register a whole burst through [`Engine::register_batch`] (the id
    /// *vectors* must come out identical). Pairing a bulk-registering engine
    /// against a [`LoopRegister`]-wrapped twin turns this op into the
    /// bulk-vs-loop registration differential.
    RegisterBurst(Vec<ContinuousQuery>),
    /// Deregister the live query at `victim % live.len()` (skipped while no
    /// query is live). Indexing into the live list instead of naming a
    /// `QueryId` keeps scripts valid under minimization: removing an earlier
    /// `Register` re-targets, never invalidates, later deregistrations.
    Deregister {
        /// Pseudo-index into the live-query list.
        victim: usize,
    },
    /// Feed one stream event through [`Engine::process_document`].
    Feed(Document),
    /// Feed a whole burst through [`Engine::process_batch`].
    FeedBatch(Vec<Document>),
    /// Arm one injected fault on `shard % num_shards` via
    /// [`Engine::inject_fault`] on **every** engine. Engines without fault
    /// injection (the plain reference) treat it as a no-op, which is what
    /// lets a chaos script run in lockstep: the faulting engine must recover
    /// to byte-identical state while the reference never faulted at all. No
    /// cross-engine comparison is made for this op.
    InjectFault {
        /// Pseudo-index of the shard to fault (taken modulo the engine's
        /// shard count).
        shard: usize,
    },
}

fn write_composition(f: &mut fmt::Formatter<'_>, composition: &WeightedVector) -> fmt::Result {
    write!(f, "{{")?;
    for (i, entry) in composition.as_slice().iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}:{}", entry.term, entry.weight)?;
    }
    write!(f, "}}")
}

fn write_doc(f: &mut fmt::Formatter<'_>, doc: &Document) -> fmt::Result {
    write!(f, "{} @{}us ", doc.id, doc.arrival.as_micros())?;
    write_composition(f, &doc.composition)?;
    if crate::fault::is_poison_document(doc) {
        write!(f, " poison")?;
    }
    Ok(())
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Register(query) => {
                write!(f, "register k={} ", query.k())?;
                write_composition(f, query.weights())
            }
            Op::RegisterBurst(queries) => {
                write!(f, "register_burst x{}:", queries.len())?;
                for query in queries {
                    write!(f, "\n    k={} ", query.k())?;
                    write_composition(f, query.weights())?;
                }
                Ok(())
            }
            Op::Deregister { victim } => write!(f, "deregister victim%{victim}"),
            Op::Feed(doc) => {
                write!(f, "feed ")?;
                write_doc(f, doc)
            }
            Op::FeedBatch(docs) => {
                write!(f, "feed_batch x{}:", docs.len())?;
                for doc in docs {
                    write!(f, "\n    ")?;
                    write_doc(f, doc)?;
                }
                Ok(())
            }
            Op::InjectFault { shard } => write!(f, "inject_fault shard%{shard}"),
        }
    }
}

/// A reproducible differential script: the seed it came from (0 for
/// hand-built scripts) and the concrete operations. Ops carry fully
/// materialised documents and queries, so replaying a (possibly minimized)
/// script never depends on regenerating the same randomness.
#[derive(Debug, Clone, Default)]
pub struct OpScript {
    /// The generator seed, echoed in failure output.
    pub seed: u64,
    /// The operations, applied in order.
    pub ops: Vec<Op>,
}

impl OpScript {
    /// An empty script tagged with `seed` (use 0 for hand-built scripts).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ops: Vec::new(),
        }
    }

    /// Appends an operation (builder for corpus-driven or hand-built
    /// scripts).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of stream events the script feeds (counting batch members).
    pub fn num_events(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Feed(_) => 1,
                Op::FeedBatch(docs) => docs.len(),
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for OpScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# seed {:#x}, {} ops", self.seed, self.ops.len())?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  [{i}] {op}")?;
        }
        Ok(())
    }
}

/// Shape of the scripts [`generate_script`] produces. The defaults mirror
/// the adversarial stream the sharded-equivalence suite has used since PR 4:
/// a small vocabulary and a discrete weight palette force long tie runs and
/// dense term sharing, so backfill, list retirement, refill and roll-up all
/// fire constantly.
#[derive(Debug, Clone)]
pub struct ScriptConfig {
    /// Vocabulary size for documents and queries.
    pub vocabulary: u32,
    /// The discrete weight palette documents draw from (ties on purpose).
    pub palette: Vec<f64>,
    /// Queries registered before the first stream event.
    pub initial_queries: usize,
    /// Stream events to generate (single feeds plus batch members).
    pub events: usize,
    /// Per-op probability of registering another query mid-stream.
    pub register_probability: f64,
    /// Per-op probability of registering a whole burst of queries through
    /// [`Engine::register_batch`] mid-stream.
    pub burst_register_probability: f64,
    /// Largest registration burst generated (at least 2 when bursts are
    /// enabled).
    pub max_burst_registers: usize,
    /// Per-op probability of deregistering a live query mid-stream.
    pub deregister_probability: f64,
    /// Probability that a chunk of events ships as one [`Op::FeedBatch`].
    pub batch_probability: f64,
    /// Largest batch generated (at least 2 when batching is enabled).
    pub max_batch: usize,
    /// Maximum arrival gap between consecutive documents, in milliseconds;
    /// gaps draw uniformly from `[0, max]`, so **equal timestamps occur**
    /// whenever this is positive and routinely when it is small.
    pub max_gap_millis: usize,
    /// Terms per query draw from `[1, max_query_terms]`.
    pub max_query_terms: usize,
    /// `k` draws from `[1, max_k]`.
    pub max_k: usize,
    /// Terms per document draw from `[1, max_doc_terms]`.
    pub max_doc_terms: usize,
    /// Per-op probability of arming an injected fault on a random shard
    /// ([`Op::InjectFault`]): the next event that shard processes is applied
    /// and then the worker panics mid-request, forcing a recovery.
    pub inject_fault_probability: f64,
    /// Per-document probability of shipping a *poison document*
    /// ([`crate::poison_document`]): every fault-injecting shard panics the
    /// first time it sees one, while plain engines score it normally.
    pub poison_probability: f64,
}

impl Default for ScriptConfig {
    fn default() -> Self {
        Self {
            vocabulary: 24,
            palette: vec![0.1, 0.2, 0.2, 0.4, 0.7],
            initial_queries: 3,
            events: 320,
            register_probability: 0.10,
            burst_register_probability: 0.0,
            max_burst_registers: 8,
            deregister_probability: 0.05,
            batch_probability: 0.0,
            max_batch: 16,
            max_gap_millis: 4,
            max_query_terms: 3,
            max_k: 3,
            max_doc_terms: 5,
            inject_fault_probability: 0.0,
            poison_probability: 0.0,
        }
    }
}

impl ScriptConfig {
    /// The default shape with batches mixed in: roughly
    /// `batch_probability` of the stream ships as bursts of up to
    /// `max_batch` events.
    pub fn batched() -> Self {
        Self {
            batch_probability: 0.5,
            ..Self::default()
        }
    }

    /// The registration-heavy shape: frequent single registrations, frequent
    /// [`Op::RegisterBurst`]s, aggressive deregistration and a batched
    /// stream. This is the axis that exercises bulk registration, the
    /// cold→warm shadow-list lifecycle (every burst mints cold terms a later
    /// event must warm) and list retirement under churn, all at once.
    pub fn churn_storm() -> Self {
        Self {
            initial_queries: 6,
            register_probability: 0.15,
            burst_register_probability: 0.12,
            max_burst_registers: 12,
            deregister_probability: 0.12,
            batch_probability: 0.35,
            ..Self::default()
        }
    }

    /// The chaos shape: the churn storm with faults mixed in — frequent
    /// injected worker faults and occasional poison documents on top of the
    /// registration churn and batching. This is the fault-injection
    /// differential axis: a fault-tolerant engine must stay in lockstep with
    /// a fault-free reference *through* its own crashes and recoveries.
    pub fn chaos_storm() -> Self {
        Self {
            inject_fault_probability: 0.10,
            poison_probability: 0.02,
            ..Self::churn_storm()
        }
    }
}

fn random_query(rng: &mut ScriptRng, config: &ScriptConfig) -> ContinuousQuery {
    let terms = rng.range(1, config.max_query_terms + 1);
    let weights: Vec<(TermId, f64)> = (0..terms)
        .map(|_| {
            (
                TermId(rng.below(config.vocabulary as usize) as u32),
                0.1 + rng.below(8) as f64 * 0.1,
            )
        })
        .collect();
    ContinuousQuery::from_weights(weights, rng.range(1, config.max_k + 1))
}

fn random_document(
    rng: &mut ScriptRng,
    config: &ScriptConfig,
    id: u64,
    arrival: Timestamp,
) -> Document {
    let terms = rng.range(1, config.max_doc_terms + 1);
    let weights = (0..terms).map(|_| {
        (
            TermId(rng.below(config.vocabulary as usize) as u32),
            *rng.pick(&config.palette),
        )
    });
    Document::new(DocId(id), arrival, WeightedVector::from_weights(weights))
}

/// Generates a reproducible script for `config` from `seed`.
pub fn generate_script(config: &ScriptConfig, seed: u64) -> OpScript {
    let mut rng = ScriptRng::new(seed);
    let mut script = OpScript::new(seed);
    for _ in 0..config.initial_queries {
        script.push(Op::Register(random_query(&mut rng, config)));
    }
    let mut clock = Timestamp::ZERO;
    let mut next_doc = 0u64;
    let mut emitted = 0usize;
    let mut next_document = |rng: &mut ScriptRng| {
        clock = clock.advance(std::time::Duration::from_millis(
            rng.below(config.max_gap_millis + 1) as u64,
        ));
        let mut doc = random_document(rng, config, next_doc, clock);
        if rng.chance(config.poison_probability) {
            doc = crate::fault::poison_document(doc);
        }
        next_doc += 1;
        doc
    };
    while emitted < config.events {
        if rng.chance(config.register_probability) {
            script.push(Op::Register(random_query(&mut rng, config)));
        }
        if rng.chance(config.inject_fault_probability) {
            script.push(Op::InjectFault {
                shard: rng.below(8),
            });
        }
        if rng.chance(config.burst_register_probability) {
            let size = rng.range(2, config.max_burst_registers.max(2) + 1);
            let queries: Vec<ContinuousQuery> =
                (0..size).map(|_| random_query(&mut rng, config)).collect();
            script.push(Op::RegisterBurst(queries));
        }
        if rng.chance(config.deregister_probability) {
            script.push(Op::Deregister {
                victim: rng.below(64),
            });
        }
        if rng.chance(config.batch_probability) {
            let size = rng
                .range(2, config.max_batch.max(2) + 1)
                .min(config.events - emitted)
                .max(1);
            let docs: Vec<Document> = (0..size).map(|_| next_document(&mut rng)).collect();
            emitted += docs.len();
            script.push(Op::FeedBatch(docs));
        } else {
            script.push(Op::Feed(next_document(&mut rng)));
            emitted += 1;
        }
    }
    script
}

/// An [`Engine`] adapter that forwards everything except
/// [`Engine::register_batch`], which it pins to the one-query-at-a-time
/// loop (the trait's default). Pairing an engine with a
/// `LoopRegister`-wrapped twin turns any script containing
/// [`Op::RegisterBurst`] into a bulk-vs-loop registration differential:
/// whatever shortcut the engine's bulk path takes (the ITA engine's single
/// window merge, the sharded engine's one-round-trip fan-out) must remain
/// byte-identical to the loop it replaces.
#[derive(Debug, Clone)]
pub struct LoopRegister<E>(pub E);

impl<E: Engine> Engine for LoopRegister<E> {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        self.0.register(query)
    }

    fn register_batch(&mut self, queries: Vec<ContinuousQuery>) -> Vec<QueryId> {
        queries.into_iter().map(|q| self.0.register(q)).collect()
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        self.0.deregister(query)
    }

    fn process_document(&mut self, doc: Document) -> crate::EventOutcome {
        self.0.process_document(doc)
    }

    fn process_batch(&mut self, docs: Vec<Document>) -> Vec<crate::EventOutcome> {
        self.0.process_batch(docs)
    }

    fn current_results(&self, query: QueryId) -> Vec<crate::RankedDocument> {
        self.0.current_results(query)
    }

    fn num_queries(&self) -> usize {
        self.0.num_queries()
    }

    fn num_valid_documents(&self) -> usize {
        self.0.num_valid_documents()
    }

    fn clock(&self) -> Timestamp {
        self.0.clock()
    }

    fn name(&self) -> &'static str {
        "loop-register"
    }

    fn batched_max_event_time(&self) -> Option<std::time::Duration> {
        self.0.batched_max_event_time()
    }

    fn inject_fault(&mut self, shard: usize) -> bool {
        self.0.inject_fault(shard)
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.0.fault_stats()
    }

    fn check_invariants(&self) {
        self.0.check_invariants()
    }
}

/// Knobs of [`run_script`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Compare per-event [`crate::EventOutcome`]s across engines. Enable
    /// for engines with identical work accounting (ITA vs sharded ITA;
    /// batch vs singles); disable when comparing engines that count work
    /// differently (ITA vs the naïve baseline).
    pub compare_outcomes: bool,
    /// Compare live-query results every `check_every`-th feed op (outcome
    /// checks, when enabled, still run on every op). 1 = every feed.
    pub check_every: usize,
    /// Compare every `sample_stride`-th live query at a checkpoint (always
    /// including the first). 1 = all live queries — paper-scale scripts use
    /// a larger stride to keep checkpoints affordable.
    pub sample_stride: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            compare_outcomes: true,
            check_every: 1,
            sample_stride: 1,
        }
    }
}

/// A divergence found by [`run_script`]: which op tripped it and what
/// disagreed. Carried as data (not a panic) so minimization can re-run
/// candidate scripts cheaply.
#[derive(Debug, Clone)]
pub struct ScriptFailure {
    /// Index into [`OpScript::ops`] of the offending operation.
    pub op_index: usize,
    /// Human-readable description of the disagreement.
    pub message: String,
}

impl fmt::Display for ScriptFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op [{}]: {}", self.op_index, self.message)
    }
}

fn check_results<'e>(
    engines: &[Box<dyn Engine + 'e>],
    live: &[QueryId],
    stride: usize,
    op_index: usize,
) -> Result<(), ScriptFailure> {
    for &query in live.iter().step_by(stride.max(1)) {
        let expected = engines[0].current_results(query);
        for candidate in &engines[1..] {
            let actual = candidate.current_results(query);
            if !results_match(&expected, &actual, DEFAULT_TOLERANCE) {
                return Err(ScriptFailure {
                    op_index,
                    message: format!(
                        "{} on {}: {} reports {:?}, {} reports {:?}",
                        "results diverged",
                        query,
                        engines[0].name(),
                        expected,
                        candidate.name(),
                        actual
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Applies `script` to every engine in lockstep (engine 0 is the
/// reference), returning the first divergence: query-id assignment,
/// deregistration success, per-event/batch outcomes (when
/// `options.compare_outcomes`) and (sampled) live-query results must all
/// agree. The engines must share a window policy; the runner does not
/// construct engines — pair it with a factory closure for minimization (see
/// [`assert_script_equivalence`]). To keep ownership of concrete engines
/// for post-run assertions (index stats, migration counters), box mutable
/// references instead — `&mut E` is itself an [`Engine`]:
/// `vec![Box::new(&mut reference) as Box<dyn Engine + '_>, ...]`.
pub fn run_script<'e>(
    engines: &mut [Box<dyn Engine + 'e>],
    script: &OpScript,
    options: &RunOptions,
) -> Result<(), ScriptFailure> {
    assert!(
        engines.len() >= 2,
        "a differential run needs a reference and at least one candidate"
    );
    let mut live: Vec<QueryId> = Vec::new();
    let mut feeds = 0usize;
    for (op_index, op) in script.ops.iter().enumerate() {
        let fail = |message: String| ScriptFailure { op_index, message };
        match op {
            Op::Register(query) => {
                let expected = engines[0].register(query.clone());
                for candidate in &mut engines[1..] {
                    let actual = candidate.register(query.clone());
                    if actual != expected {
                        return Err(fail(format!(
                            "query ids diverged: reference assigned {expected}, {} assigned {actual}",
                            candidate.name()
                        )));
                    }
                }
                live.push(expected);
            }
            Op::RegisterBurst(queries) => {
                let expected = engines[0].register_batch(queries.clone());
                for candidate in &mut engines[1..] {
                    let actual = candidate.register_batch(queries.clone());
                    if actual != expected {
                        return Err(fail(format!(
                            "burst query ids diverged: reference assigned {expected:?}, {} assigned {actual:?}",
                            candidate.name()
                        )));
                    }
                }
                live.extend(&expected);
                // Initial results are part of the byte-identical registration
                // contract — check them right away rather than waiting for
                // the next feed checkpoint, so a registration-path divergence
                // is pinned to the burst that caused it.
                check_results(engines, &expected, 1, op_index)?;
            }
            Op::Deregister { victim } => {
                if live.is_empty() {
                    continue;
                }
                let target = live.swap_remove(victim % live.len());
                for engine in engines.iter_mut() {
                    if !engine.deregister(target) {
                        return Err(fail(format!("{} lost {target}", engine.name())));
                    }
                }
            }
            Op::Feed(doc) => {
                feeds += 1;
                let expected = engines[0].process_document(doc.clone());
                for candidate in &mut engines[1..] {
                    let actual = candidate.process_document(doc.clone());
                    if options.compare_outcomes && actual != expected {
                        return Err(fail(format!(
                            "outcomes diverged on {}: reference {expected:?}, {} {actual:?}",
                            doc.id,
                            candidate.name()
                        )));
                    }
                }
            }
            Op::FeedBatch(docs) => {
                feeds += 1;
                let expected = engines[0].process_batch(docs.clone());
                for candidate in &mut engines[1..] {
                    let actual = candidate.process_batch(docs.clone());
                    if options.compare_outcomes && actual != expected {
                        let at = expected
                            .iter()
                            .zip(&actual)
                            .position(|(a, b)| a != b)
                            .map_or("length".to_string(), |i| format!("member {i}"));
                        return Err(fail(format!(
                            "batch outcomes diverged at {at}: reference {expected:?}, {} {actual:?}",
                            candidate.name()
                        )));
                    }
                }
            }
            Op::InjectFault { shard } => {
                // Armed on every engine; engines without fault injection
                // no-op. Deliberately no comparison — whether a fault was
                // armed is engine-specific, but every *subsequent* op's
                // checks still must agree, which is the whole point.
                for engine in engines.iter_mut() {
                    engine.inject_fault(*shard);
                }
            }
        }
        // Deep structural audit of every engine after every op, active in
        // unit-test builds and under the `invariant-checks` feature (the CI
        // arm integration suites use — integration tests link the lib
        // *without* cfg(test)). An `Engine::check_invariants` panic here
        // pins a corrupted structure to the op that corrupted it, instead of
        // the first divergent result many ops later.
        #[cfg(any(test, feature = "invariant-checks"))]
        for engine in engines.iter() {
            engine.check_invariants();
        }
        let feed_op = matches!(op, Op::Feed(_) | Op::FeedBatch(_));
        if feed_op && feeds.is_multiple_of(options.check_every.max(1)) {
            check_results(engines, &live, options.sample_stride, op_index)?;
            let expected = engines[0].num_valid_documents();
            for candidate in &engines[1..] {
                let actual = candidate.num_valid_documents();
                if actual != expected {
                    return Err(fail(format!(
                        "window sizes diverged: reference {expected}, {} {actual}",
                        candidate.name()
                    )));
                }
            }
        }
    }
    // Final structural audit regardless of feature gating: even a plain
    // integration-test build gets one end-of-script audit per engine.
    for engine in engines.iter() {
        engine.check_invariants();
    }
    // Final checkpoint regardless of stride/cadence.
    check_results(engines, &live, 1, script.ops.len().saturating_sub(1))
}

/// Shrinks a failing script by greedy delta debugging: repeatedly re-runs
/// candidate scripts (on fresh engines from `make_engines`) with chunks of
/// ops removed, keeping any removal that still fails, halving the chunk
/// size until single ops cannot be removed — or `budget` re-runs have been
/// spent. The result still fails; it is what
/// [`assert_script_equivalence`] prints.
pub fn minimize_script(
    make_engines: &dyn Fn() -> Vec<Box<dyn Engine>>,
    script: &OpScript,
    options: &RunOptions,
    budget: usize,
) -> OpScript {
    let still_fails = |ops: &[Op], spent: &mut usize| -> bool {
        *spent += 1;
        let candidate = OpScript {
            seed: script.seed,
            ops: ops.to_vec(),
        };
        run_script(&mut make_engines(), &candidate, options).is_err()
    };
    let mut ops = script.ops.clone();
    let mut spent = 0usize;
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut at = 0;
        while at < ops.len() && spent < budget {
            let end = (at + chunk).min(ops.len());
            let candidate: Vec<Op> = ops[..at].iter().chain(&ops[end..]).cloned().collect();
            if !candidate.is_empty() && still_fails(&candidate, &mut spent) {
                ops = candidate;
                removed_any = true;
                // Re-scan from the same offset: the tail shifted left.
            } else {
                at = end;
            }
        }
        if spent >= budget || (!removed_any && chunk == 1) {
            break;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
    OpScript {
        seed: script.seed,
        ops,
    }
}

/// Generates a script for `(config, seed)`, runs it over the engines from
/// `make_engines`, and on divergence panics with the **seed** and a
/// **minimized** reproduction script. This is the entry point the
/// differential suites call in a loop over seeds/shard counts.
pub fn assert_script_equivalence(
    make_engines: &dyn Fn() -> Vec<Box<dyn Engine>>,
    config: &ScriptConfig,
    seed: u64,
) {
    let script = generate_script(config, seed);
    assert_script_runs(make_engines, &script, &RunOptions::default());
}

/// Runs an existing script (generated or hand-/corpus-built) over fresh
/// engines, panicking with seed + minimized script on divergence.
pub fn assert_script_runs(
    make_engines: &dyn Fn() -> Vec<Box<dyn Engine>>,
    script: &OpScript,
    options: &RunOptions,
) {
    if let Err(failure) = run_script(&mut make_engines(), script, options) {
        let minimized = minimize_script(make_engines, script, options, 256);
        panic!(
            "testkit: engines diverged (seed {:#x})\n  {failure}\n\
             minimized reproduction ({} of {} ops):\n{minimized}",
            script.seed,
            minimized.ops.len(),
            script.ops.len(),
        );
    }
}

/// Shape of one overload session for [`run_overload_session`]: seeded bursty
/// arrivals against a bounded [`StreamService`], with slow-drain phases,
/// registration storms and optional fault injection.
///
/// This is the overload differential axis: the service may shed or displace
/// whatever its bounds dictate, but the events it *reports as processed*
/// must produce byte-identical results to feeding exactly that sequence to
/// an unbounded reference engine — shedding changes *which* events run,
/// never *what they compute*.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Document/query shape (vocabulary, palette, gaps) reused from the
    /// script generator so overload sessions hit the same tie-heavy corpus.
    pub script: ScriptConfig,
    /// Bounds of the service under test.
    pub service: ServiceConfig,
    /// Offer/pump rounds in the session.
    pub bursts: usize,
    /// Largest burst of offers per round (size draws from `[1, max]`).
    pub max_burst: usize,
    /// Probability that a round drains with [`StreamService::pump_budget`]
    /// (a slow consumer) instead of a full pump.
    pub slow_drain_probability: f64,
    /// Events a slow-drain round is allowed to process.
    pub drain_budget: usize,
    /// Per-round probability of a registration storm.
    pub register_storm_probability: f64,
    /// Largest registration storm (size draws from `[1, max]`).
    pub max_storm: usize,
    /// Per-round probability of deregistering a live query.
    pub deregister_probability: f64,
    /// Ingest deadline slack applied to every offered event, in stream-time
    /// milliseconds; `0` offers events without deadlines.
    pub deadline_slack_millis: u64,
    /// Per-round probability of arming an injected fault on the candidate
    /// (worker panic + in-place warm recovery; lockstep must hold through
    /// it).
    pub inject_fault_probability: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            script: ScriptConfig::default(),
            service: ServiceConfig::bounded(64),
            bursts: 60,
            max_burst: 24,
            slow_drain_probability: 0.4,
            drain_budget: 6,
            register_storm_probability: 0.2,
            max_storm: 6,
            deregister_probability: 0.1,
            deadline_slack_millis: 12,
            inject_fault_probability: 0.0,
        }
    }
}

impl OverloadConfig {
    /// The acceptance shape: every round is a slow drain with a budget a
    /// tenth of the maximum burst — arrival rate ≥ 10× drain rate — so the
    /// bounded queue must shed hard while staying live and exact.
    pub fn ten_x() -> Self {
        Self {
            service: ServiceConfig::bounded(256),
            bursts: 120,
            max_burst: 100,
            slow_drain_probability: 1.0,
            drain_budget: 10,
            register_storm_probability: 0.05,
            max_storm: 8,
            deregister_probability: 0.02,
            deadline_slack_millis: 40,
            inject_fault_probability: 0.05,
            ..Self::default()
        }
    }
}

/// Drives `candidate` (behind a bounded [`StreamService`]) and an unbounded
/// `reference` engine through one seeded overload session, asserting the
/// overload correctness contract at every round:
///
/// * every admission is an explicit [`Admission`] (no silently dropped
///   acks), and shed accounting stays exact
///   (`offered == accepted + coalesced + shed + depth`);
/// * immediate registrations/deregistrations mirror to the reference at
///   offer time, coalesced registrations at their pump's
///   [`Engine::register_batch`] flush, with identical id assignment;
/// * every event the service reports processed is replayed into the
///   reference, with identical [`crate::EventOutcome`]s and periodically
///   identical top-k results on all live queries;
/// * at final quiescence the identity collapses to
///   `offered == accepted + coalesced + shed` and all live results match
///   exactly.
///
/// Returns the session's [`OverloadStats`] so callers can assert shape
/// (e.g. that a 10× profile actually shed).
pub fn run_overload_session<C: Engine, R: Engine>(
    candidate: C,
    reference: &mut R,
    config: &OverloadConfig,
    seed: u64,
) -> OverloadStats {
    use std::collections::BTreeMap;

    let mut rng = ScriptRng::new(seed);
    let mut service = StreamService::new(candidate, config.service.clone());
    // Documents the queue owns, by id: processed ids replay into the
    // reference, shed ids are dropped. BTreeMap, not HashMap — the testkit
    // is replay-deterministic code.
    let mut queued: BTreeMap<u64, Document> = BTreeMap::new();
    let mut live: Vec<QueryId> = Vec::new();
    // Coalesced registrations awaiting the service's next register_batch
    // flush; mirrored into the reference at exactly that point.
    let mut pending_ref: Vec<ContinuousQuery> = Vec::new();
    let mut clock = Timestamp::ZERO;
    let mut next_doc = 0u64;

    let mirror_report = |report: &crate::service::DrainReport,
                         reference: &mut R,
                         queued: &mut BTreeMap<u64, Document>,
                         live: &mut Vec<QueryId>,
                         pending_ref: &mut Vec<ContinuousQuery>,
                         round: usize| {
        if !report.registered.is_empty() {
            let flushed: Vec<ContinuousQuery> = std::mem::take(pending_ref);
            assert_eq!(
                flushed.len(),
                report.registered.len(),
                "seed {seed:#x} round {round}: coalesced-register flush size diverged"
            );
            let ids = reference.register_batch(flushed);
            assert_eq!(
                ids, report.registered,
                "seed {seed:#x} round {round}: coalesced registration ids diverged"
            );
            live.extend(ids);
        }
        for (doc_id, _reason) in &report.shed {
            queued.remove(&doc_id.0);
        }
        for (index, doc_id) in report.processed.iter().enumerate() {
            let doc = queued.remove(&doc_id.0).unwrap_or_else(|| {
                panic!(
                    "seed {seed:#x} round {round}: service processed {doc_id:?} \
                     it never accepted"
                )
            });
            let expected = reference.process_document(doc);
            assert_eq!(
                expected, report.outcomes[index],
                "seed {seed:#x} round {round}: outcome diverged on {doc_id:?}"
            );
        }
    };

    for round in 0..config.bursts {
        if rng.chance(config.register_storm_probability) {
            let storm = rng.range(1, config.max_storm.max(1) + 1);
            for _ in 0..storm {
                let query = random_query(&mut rng, &config.script);
                let (admission, id) = service.offer_register(query.clone());
                match admission {
                    Admission::Accepted => {
                        let expected = reference.register(query);
                        let id = id.unwrap_or_else(|| {
                            panic!(
                                "seed {seed:#x} round {round}: immediate \
                                 registration returned no id"
                            )
                        });
                        assert_eq!(
                            id, expected,
                            "seed {seed:#x} round {round}: immediate registration \
                             ids diverged"
                        );
                        live.push(id);
                    }
                    Admission::Coalesced => pending_ref.push(query),
                    Admission::Retry { .. } => {}
                    Admission::Shed(reason) => panic!(
                        "seed {seed:#x} round {round}: registration shed ({reason:?}) \
                         — registrations must coalesce or retry, never shed"
                    ),
                }
            }
        }
        if rng.chance(config.deregister_probability) && !live.is_empty() {
            let victim = live.swap_remove(rng.below(live.len()));
            let removed = service.deregister(victim);
            assert_eq!(
                removed,
                reference.deregister(victim),
                "seed {seed:#x} round {round}: deregister({victim:?}) diverged"
            );
        }
        if rng.chance(config.inject_fault_probability) {
            service.engine_mut().inject_fault(rng.below(8));
        }
        let burst = rng.range(1, config.max_burst.max(1) + 1);
        for _ in 0..burst {
            clock = clock.advance(std::time::Duration::from_millis(
                rng.below(config.script.max_gap_millis + 1) as u64,
            ));
            let doc = random_document(&mut rng, &config.script, next_doc, clock);
            next_doc += 1;
            let event = if config.deadline_slack_millis > 0 {
                IngestEvent::deadline_in(
                    doc.clone(),
                    std::time::Duration::from_millis(config.deadline_slack_millis),
                )
            } else {
                IngestEvent::new(doc.clone())
            };
            match service.offer(event) {
                Admission::Accepted => {
                    queued.insert(doc.id.0, doc);
                }
                Admission::Shed(_) | Admission::Retry { .. } => {}
                Admission::Coalesced => panic!(
                    "seed {seed:#x} round {round}: event admission returned \
                     Coalesced — events coalesce at drain, not at offer"
                ),
            }
        }
        let report = if rng.chance(config.slow_drain_probability) {
            service.pump_budget(clock, config.drain_budget.max(1))
        } else {
            service.pump(clock)
        };
        mirror_report(
            &report,
            reference,
            &mut queued,
            &mut live,
            &mut pending_ref,
            round,
        );
        service.check_accounting();
        if round % 8 == 0 {
            for &query in &live {
                assert_eq!(
                    service.results(query),
                    reference.current_results(query),
                    "seed {seed:#x} round {round}: results diverged on {query:?}"
                );
            }
        }
    }
    // Quiesce: drain everything still queued and settle the ledger.
    let report = service.pump(clock);
    mirror_report(
        &report,
        reference,
        &mut queued,
        &mut live,
        &mut pending_ref,
        config.bursts,
    );
    assert_eq!(
        service.depth(),
        0,
        "seed {seed:#x}: final pump left a backlog"
    );
    assert!(
        queued.is_empty(),
        "seed {seed:#x}: {} accepted events were neither processed nor shed",
        queued.len()
    );
    let overload = service.overload_stats();
    assert_eq!(
        overload.offered,
        overload.accepted + overload.coalesced + overload.shed(),
        "seed {seed:#x}: quiescent shed accounting violated"
    );
    for &query in &live {
        assert_eq!(
            service.results(query),
            reference.current_results(query),
            "seed {seed:#x}: final results diverged on {query:?}"
        );
    }
    overload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ita::{ItaConfig, ItaEngine};
    use crate::sharded::ShardedItaEngine;
    use cts_index::SlidingWindow;

    #[test]
    fn script_rng_is_deterministic_and_in_range() {
        let mut a = ScriptRng::new(42);
        let mut b = ScriptRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = ScriptRng::new(7);
        for _ in 0..200 {
            let v = rng.range(3, 9);
            assert!((3..9).contains(&v));
            assert!(rng.below(1) == 0);
        }
        // Different seeds diverge immediately.
        assert_ne!(ScriptRng::new(1).next_u64(), ScriptRng::new(2).next_u64());
        let heads = (0..1000).filter(|_| rng.chance(0.5)).count();
        assert!((300..700).contains(&heads), "biased coin: {heads}/1000");
    }

    #[test]
    fn generated_scripts_are_reproducible_and_respect_the_config() {
        let config = ScriptConfig {
            events: 50,
            batch_probability: 0.4,
            ..ScriptConfig::default()
        };
        let a = generate_script(&config, 0xABCD);
        let b = generate_script(&config, 0xABCD);
        assert_eq!(a.ops.len(), b.ops.len());
        assert_eq!(a.num_events(), 50);
        assert!(a.ops.iter().any(|op| matches!(op, Op::FeedBatch(_))));
        assert!(a
            .ops
            .iter()
            .take(config.initial_queries)
            .all(|op| matches!(op, Op::Register(_))));
        // Rendering mentions the seed and every op index.
        let rendered = a.to_string();
        assert!(rendered.contains("seed 0xabcd"), "{rendered}");
        assert!(rendered.contains(&format!("[{}]", a.ops.len() - 1)));
    }

    fn engines(shards: usize) -> Vec<Box<dyn Engine>> {
        let window = SlidingWindow::count_based(20);
        vec![
            Box::new(ItaEngine::new(window, ItaConfig::default())),
            Box::new(ShardedItaEngine::new(window, ItaConfig::default(), shards)),
        ]
    }

    #[test]
    fn equivalent_engines_pass_a_batched_script() {
        let config = ScriptConfig {
            events: 120,
            ..ScriptConfig::batched()
        };
        assert_script_equivalence(&|| engines(3), &config, 0x7E57_0001);
    }

    #[test]
    fn churn_storm_scripts_contain_registration_bursts() {
        let config = ScriptConfig {
            events: 120,
            ..ScriptConfig::churn_storm()
        };
        let script = generate_script(&config, 0x7E57_0004);
        let bursts: usize = script
            .ops
            .iter()
            .filter(|op| matches!(op, Op::RegisterBurst(_)))
            .count();
        assert!(bursts > 0, "churn storm generated no registration bursts");
        assert!(script.to_string().contains("register_burst"));
    }

    #[test]
    fn churn_storm_holds_across_bulk_loop_and_sharded_registration() {
        let make: &dyn Fn() -> Vec<Box<dyn Engine>> = &|| {
            let window = SlidingWindow::count_based(20);
            vec![
                Box::new(ItaEngine::new(window, ItaConfig::default())) as Box<dyn Engine>,
                Box::new(LoopRegister(ItaEngine::new(window, ItaConfig::default()))),
                Box::new(ShardedItaEngine::new(window, ItaConfig::default(), 3)),
            ]
        };
        let config = ScriptConfig {
            events: 120,
            ..ScriptConfig::churn_storm()
        };
        assert_script_equivalence(make, &config, 0x7E57_0005);
    }

    #[test]
    fn chaos_storm_scripts_carry_faults_and_poison() {
        let config = ScriptConfig {
            events: 200,
            ..ScriptConfig::chaos_storm()
        };
        let script = generate_script(&config, 0x7E57_0006);
        let injections = script
            .ops
            .iter()
            .filter(|op| matches!(op, Op::InjectFault { .. }))
            .count();
        assert!(injections > 0, "chaos storm armed no faults");
        let poisoned = script
            .ops
            .iter()
            .flat_map(|op| match op {
                Op::Feed(doc) => std::slice::from_ref(doc).iter(),
                Op::FeedBatch(docs) => docs.iter(),
                _ => [].iter(),
            })
            .filter(|doc| crate::fault::is_poison_document(doc))
            .count();
        assert!(poisoned > 0, "chaos storm shipped no poison documents");
        let rendered = script.to_string();
        assert!(rendered.contains("inject_fault shard%"));
        assert!(rendered.contains(" poison"));
    }

    #[test]
    fn divergence_is_caught_and_minimized() {
        // A candidate with a *different window* diverges as soon as an
        // expiration differs; the harness must catch it, and minimization
        // must shrink the script while keeping it failing.
        let make: &dyn Fn() -> Vec<Box<dyn Engine>> = &|| {
            vec![
                Box::new(ItaEngine::new(
                    SlidingWindow::count_based(4),
                    ItaConfig::default(),
                )) as Box<dyn Engine>,
                Box::new(ItaEngine::new(
                    SlidingWindow::count_based(5),
                    ItaConfig::default(),
                )) as Box<dyn Engine>,
            ]
        };
        let config = ScriptConfig {
            events: 40,
            ..ScriptConfig::default()
        };
        let script = generate_script(&config, 0x7E57_0002);
        let failure =
            run_script(&mut make(), &script, &RunOptions::default()).expect_err("must diverge");
        assert!(failure.op_index < script.ops.len());
        let minimized = minimize_script(make, &script, &RunOptions::default(), 256);
        assert!(minimized.ops.len() < script.ops.len());
        assert!(run_script(&mut make(), &minimized, &RunOptions::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "testkit: engines diverged")]
    fn assert_script_equivalence_panics_with_the_seed() {
        let make: &dyn Fn() -> Vec<Box<dyn Engine>> = &|| {
            vec![
                Box::new(ItaEngine::new(
                    SlidingWindow::count_based(4),
                    ItaConfig::default(),
                )) as Box<dyn Engine>,
                Box::new(ItaEngine::new(
                    SlidingWindow::count_based(6),
                    ItaConfig::default(),
                )) as Box<dyn Engine>,
            ]
        };
        assert_script_equivalence(&make, &ScriptConfig::default(), 0x7E57_0003);
    }

    #[test]
    fn overload_session_holds_lockstep_while_shedding() {
        let window = SlidingWindow::count_based(20);
        let config = OverloadConfig {
            bursts: 30,
            ..OverloadConfig::default()
        };
        let candidate = ShardedItaEngine::new(window, ItaConfig::default(), 2);
        let mut reference = ItaEngine::new(window, ItaConfig::default());
        let overload = run_overload_session(candidate, &mut reference, &config, 0x7E57_0B01);
        assert!(overload.offered > 0, "session offered nothing");
        assert!(
            overload.shed() > 0,
            "a bursty session against a 64-slot queue must shed: {overload:?}"
        );
        assert!(overload.register_offered > 0, "no registration storms ran");
    }

    #[test]
    fn hand_built_scripts_run_through_the_same_runner() {
        let mut script = OpScript::new(0);
        script.push(Op::Register(ContinuousQuery::from_weights(
            [(TermId(1), 1.0)],
            2,
        )));
        for i in 0..6u64 {
            let doc = Document::new(
                DocId(i),
                Timestamp::from_millis(i),
                WeightedVector::from_weights([(TermId(1), 0.1 * (i % 3 + 1) as f64)]),
            );
            script.push(if i % 2 == 0 {
                Op::Feed(doc)
            } else {
                Op::FeedBatch(vec![doc])
            });
        }
        script.push(Op::Deregister { victim: 0 });
        assert_eq!(script.num_events(), 6);
        assert_script_runs(&|| engines(2), &script, &RunOptions::default());
    }
}
