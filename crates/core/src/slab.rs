//! Slab-backed per-query state tables.
//!
//! Engines hand out [`QueryId`]s from a monotone counter, so query state does
//! not need an ordered map: [`QuerySlab`] is the query-id-keyed face of
//! `cts_index`'s [`DenseArena`] — `O(1)` lookup with no tree descent, and
//! iteration (the naïve engine walks *every* query on *every* stream event)
//! is a contiguous sweep instead of a pointer chase. Deregistration vacates
//! the slot (ids are never reused, so a long-lived engine with heavy query
//! churn should be compacted by re-registration; the paper's workloads
//! register once and stream forever).

use cts_index::{DenseArena, QueryId};

/// A dense map from [`QueryId`] to per-query state `T`.
#[derive(Debug, Clone, Default)]
pub struct QuerySlab<T> {
    inner: DenseArena<T>,
}

impl<T> QuerySlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            inner: DenseArena::new(),
        }
    }

    /// Stores `state` for `query`, growing the slab as needed. Returns the
    /// previous state if the slot was occupied.
    pub fn insert(&mut self, query: QueryId, state: T) -> Option<T> {
        self.inner.insert(query.index(), state)
    }

    /// Removes and returns `query`'s state, vacating the slot.
    pub fn remove(&mut self, query: QueryId) -> Option<T> {
        self.inner.remove(query.index())
    }

    /// The state for `query`, if registered.
    #[inline]
    pub fn get(&self, query: QueryId) -> Option<&T> {
        self.inner.get(query.index())
    }

    /// Mutable state for `query`, if registered.
    #[inline]
    pub fn get_mut(&mut self, query: QueryId) -> Option<&mut T> {
        self.inner.get_mut(query.index())
    }

    /// Number of registered queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no query is registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates over `(query, state)` pairs in increasing query-id order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &T)> {
        self.inner.iter().map(|(i, s)| (QueryId(i as u32), s))
    }

    /// Iterates over the registered states in increasing query-id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.inner.values()
    }

    /// Mutably iterates over the registered states in increasing query-id
    /// order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.inner.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: QuerySlab<&'static str> = QuerySlab::new();
        assert!(slab.is_empty());
        assert_eq!(slab.insert(q(2), "two"), None);
        assert_eq!(slab.insert(q(0), "zero"), None);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(q(2)), Some(&"two"));
        assert!(slab.get(q(1)).is_none());
        assert_eq!(slab.remove(q(2)), Some("two"));
        assert_eq!(slab.remove(q(2)), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn replacing_a_slot_returns_the_old_state() {
        let mut slab = QuerySlab::new();
        slab.insert(q(1), 10u32);
        assert_eq!(slab.insert(q(1), 20), Some(10));
        assert_eq!(slab.len(), 1);
        *slab.get_mut(q(1)).unwrap() += 1;
        assert_eq!(slab.get(q(1)), Some(&21));
    }

    #[test]
    fn iteration_is_in_query_id_order_and_skips_vacant_slots() {
        let mut slab = QuerySlab::new();
        for i in [4u32, 1, 3] {
            slab.insert(q(i), i * 10);
        }
        slab.remove(q(3));
        let pairs: Vec<(u32, u32)> = slab.iter().map(|(id, v)| (id.0, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (4, 40)]);
        let values: Vec<u32> = slab.values().copied().collect();
        assert_eq!(values, vec![10, 40]);
        for v in slab.values_mut() {
            *v += 1;
        }
        assert_eq!(slab.get(q(1)), Some(&11));
    }
}
