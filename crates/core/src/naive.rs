//! The enhanced naïve baseline (paper §II / §IV).
//!
//! The plain naïve approach scores every arriving document against every
//! registered query and, whenever a top-k document expires, rescans the
//! whole valid set. [`NaiveEngine`] implements the stronger competitor the
//! paper actually measures against: each query maintains a **materialised
//! top-`k_max` view** (Yi et al.), a buffer of the best `k_max ≥ k` documents.
//! Arrivals update the buffer in `O(log k_max)`; expirations only force a
//! full rescan when the buffer shrinks below `k` documents, which amortises
//! the expensive recomputations.
//!
//! The engine still touches *every* query on *every* event (that is the
//! baseline's defining cost, visible in
//! [`EventOutcome::queries_touched_by_arrival`]); the view merely caps how
//! much work each touch performs.

use serde::{Deserialize, Serialize};

use cts_index::{DocumentStore, QueryId, SlidingWindow, Timestamp};

use crate::engine::{Engine, EventOutcome};
use crate::query::ContinuousQuery;
use crate::result::{RankedDocument, ResultSet};
use crate::slab::QuerySlab;

/// Tuning knobs of the [`NaiveEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaiveConfig {
    /// The materialised view holds up to `k_max = kmax_factor · k` documents
    /// per query. Larger factors make expirations cheaper (fewer rescans) at
    /// the price of more arrival work and memory — the trade-off measured by
    /// the `ablation_kmax` benchmark. Must be at least 1; the paper's
    /// competitor uses a small constant factor.
    pub kmax_factor: usize,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        Self { kmax_factor: 2 }
    }
}

impl NaiveConfig {
    /// The view capacity for a query with parameter `k`.
    pub fn k_max(&self, k: usize) -> usize {
        k.saturating_mul(self.kmax_factor.max(1))
    }
}

#[derive(Debug, Clone)]
struct ViewState {
    query: ContinuousQuery,
    /// The materialised view: the top-`|view|` matching valid documents.
    view: ResultSet,
    /// Whether the view is known to contain *every* matching valid document
    /// (it has not overflowed `k_max` since the last recomputation). While
    /// complete, low-scoring arrivals may be admitted and a shrunken view
    /// never needs a rescan; once a matching document has been turned away,
    /// only arrivals beating the view's worst score keep the top-`|view|`
    /// invariant.
    complete: bool,
}

/// The top-`k_max` materialised-view baseline engine.
#[derive(Debug, Clone)]
pub struct NaiveEngine {
    window: SlidingWindow,
    config: NaiveConfig,
    store: DocumentStore,
    /// Per-query views in a dense slab: the baseline sweeps every view on
    /// every event, so iteration cost is the engine's defining term.
    queries: QuerySlab<ViewState>,
    next_query: u32,
    clock: Timestamp,
    /// Full view recomputations performed (exposed for benchmarks).
    recomputations: u64,
}

impl NaiveEngine {
    /// Creates an engine with the given sliding-window policy.
    pub fn new(window: SlidingWindow, config: NaiveConfig) -> Self {
        Self {
            window,
            config,
            store: DocumentStore::new(),
            queries: QuerySlab::new(),
            next_query: 0,
            clock: Timestamp::ZERO,
            recomputations: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> NaiveConfig {
        self.config
    }

    /// Number of full top-`k_max` view recomputations performed so far.
    pub fn recomputations(&self) -> u64 {
        self.recomputations
    }

    /// Current size of `query`'s materialised view (top-k plus buffer).
    pub fn view_size(&self, query: QueryId) -> Option<usize> {
        self.queries.get(query).map(|s| s.view.len())
    }

    /// Rebuilds `state`'s view from scratch by scanning the valid documents.
    fn recompute(store: &DocumentStore, config: NaiveConfig, state: &mut ViewState) {
        state.view = ResultSet::new();
        state.complete = true;
        let k_max = config.k_max(state.query.k());
        for doc in store.iter() {
            let score = state.query.score(&doc.composition);
            if score > 0.0 {
                state.view.insert(doc.id, score);
                if state.view.len() > k_max {
                    state.view.pop_worst();
                    state.complete = false;
                }
            }
        }
    }
}

impl Engine for NaiveEngine {
    fn register(&mut self, query: ContinuousQuery) -> QueryId {
        let qid = QueryId(self.next_query);
        self.next_query += 1;
        let mut state = ViewState {
            query,
            view: ResultSet::new(),
            complete: true,
        };
        Self::recompute(&self.store, self.config, &mut state);
        self.queries.insert(qid, state);
        qid
    }

    fn deregister(&mut self, query: QueryId) -> bool {
        self.queries.remove(query).is_some()
    }

    fn process_document(&mut self, doc: cts_index::Document) -> EventOutcome {
        self.clock = doc.arrival;
        let mut outcome = EventOutcome {
            arrived: doc.id,
            ..EventOutcome::default()
        };

        // Arrival: every query scores the new document.
        for state in self.queries.values_mut() {
            outcome.queries_touched_by_arrival += 1;
            let score = state.query.score(&doc.composition);
            if score <= 0.0 {
                continue;
            }
            let k = state.query.k();
            let k_max = self.config.k_max(k);
            // A complete view may absorb any matching arrival; an incomplete
            // one only stays the true top-`|view|` when the newcomer
            // out-ranks its worst member. Rank order is (score desc, doc id
            // asc) — exact score ties are common with integer term
            // frequencies, so the id tie-break is load-bearing.
            let admit = (state.complete && state.view.len() < k_max)
                || state.view.worst().is_some_and(|worst| {
                    score > worst.score || (score == worst.score && doc.id < worst.doc)
                });
            if admit {
                state.view.insert(doc.id, score);
                if state.view.len() > k_max {
                    state.view.pop_worst();
                    state.complete = false;
                }
                if state.view.is_in_top_k(doc.id, k) {
                    outcome.results_changed += 1;
                }
            } else {
                // A matching document was turned away.
                state.complete = false;
            }
        }
        self.store.push(doc);

        // Expirations: every query checks its view for the leaving document.
        let expired = self.window.expired(&self.store, self.clock);
        outcome.expired = expired.len();
        for id in expired {
            self.store
                .remove(id)
                .expect("window reported a valid document");
            for state in self.queries.values_mut() {
                outcome.queries_touched_by_expiration += 1;
                if !state.view.contains(id) {
                    continue;
                }
                let k = state.query.k();
                let was_top_k = state.view.is_in_top_k(id, k);
                state.view.remove(id);
                if was_top_k {
                    outcome.results_changed += 1;
                }
                if state.view.len() < k && !state.complete {
                    // The buffer ran dry: pay for a full rescan, refilling
                    // back up to k_max (Yi et al.). A complete view is exempt
                    // — it already holds every matching document.
                    Self::recompute(&self.store, self.config, state);
                    self.recomputations += 1;
                }
            }
        }
        outcome
    }

    fn current_results(&self, query: QueryId) -> Vec<RankedDocument> {
        self.queries
            .get(query)
            .map(|state| state.view.top(state.query.k()))
            .unwrap_or_default()
    }

    fn num_queries(&self) -> usize {
        self.queries.len()
    }

    fn num_valid_documents(&self) -> usize {
        self.store.len()
    }

    fn clock(&self) -> Timestamp {
        self.clock
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_index::{DocId, Document};
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, terms: &[(u32, f64)]) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w))),
        )
    }

    fn engine(window: usize) -> NaiveEngine {
        NaiveEngine::new(SlidingWindow::count_based(window), NaiveConfig::default())
    }

    fn top_ids(e: &NaiveEngine, q: QueryId) -> Vec<u64> {
        e.current_results(q).iter().map(|r| r.doc.0).collect()
    }

    #[test]
    fn arrivals_maintain_the_top_k() {
        let mut e = engine(10);
        let q = e.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 2));
        e.process_document(doc(0, &[(1, 0.3)]));
        e.process_document(doc(1, &[(1, 0.9)]));
        e.process_document(doc(2, &[(1, 0.5)]));
        assert_eq!(top_ids(&e, q), vec![1, 2]);
    }

    #[test]
    fn every_query_is_touched_by_every_event() {
        let mut e = engine(2);
        for i in 0..5 {
            e.register(ContinuousQuery::from_weights([(TermId(i), 1.0)], 1));
        }
        let out = e.process_document(doc(0, &[(0, 0.5)]));
        assert_eq!(out.queries_touched_by_arrival, 5);
        e.process_document(doc(1, &[(0, 0.5)]));
        let out = e.process_document(doc(2, &[(0, 0.5)]));
        // One expiration → all five queries are checked again.
        assert_eq!(out.expired, 1);
        assert_eq!(out.queries_touched_by_expiration, 5);
    }

    #[test]
    fn buffer_absorbs_expirations_without_rescan() {
        let mut e = engine(4);
        let q = e.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        // k = 1, k_max = 2: the view holds the two best documents.
        e.process_document(doc(0, &[(1, 0.9)]));
        e.process_document(doc(1, &[(1, 0.8)]));
        e.process_document(doc(2, &[(1, 0.1)]));
        e.process_document(doc(3, &[(1, 0.2)]));
        assert_eq!(e.recomputations(), 0);
        // d0 (top of the view) expires; d1 takes over from the buffer.
        e.process_document(doc(4, &[(1, 0.05)]));
        assert_eq!(top_ids(&e, q), vec![1]);
        assert_eq!(e.recomputations(), 0);
    }

    #[test]
    fn dry_buffer_forces_a_recomputation() {
        let mut e = engine(3);
        let q = e.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        e.process_document(doc(0, &[(1, 0.9)]));
        e.process_document(doc(1, &[(1, 0.1)]));
        e.process_document(doc(2, &[(1, 0.2)]));
        // View = {d0, d2}; d1 was never admitted... until d0 expires and the
        // view still holds d2 — then d2 expires too and the view runs dry.
        e.process_document(doc(3, &[(1, 0.01)]));
        e.process_document(doc(4, &[(1, 0.02)]));
        e.process_document(doc(5, &[(1, 0.03)]));
        assert!(e.recomputations() >= 1);
        assert_eq!(top_ids(&e, q), vec![5]);
    }

    #[test]
    fn registration_computes_over_existing_documents() {
        let mut e = engine(10);
        e.process_document(doc(0, &[(1, 0.4)]));
        e.process_document(doc(1, &[(1, 0.6)]));
        let q = e.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        assert_eq!(top_ids(&e, q), vec![1]);
    }

    #[test]
    fn nonmatching_documents_never_enter_the_view() {
        let mut e = engine(10);
        let q = e.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 5));
        e.process_document(doc(0, &[(2, 0.9)]));
        assert!(e.current_results(q).is_empty());
        assert_eq!(e.view_size(q), Some(0));
    }

    #[test]
    fn deregister_and_accessors() {
        let mut e = engine(10);
        let q = e.register(ContinuousQuery::from_weights([(TermId(1), 1.0)], 1));
        assert_eq!(e.num_queries(), 1);
        assert_eq!(e.name(), "naive");
        assert_eq!(e.config().kmax_factor, 2);
        assert!(e.deregister(q));
        assert!(!e.deregister(q));
        assert_eq!(e.num_queries(), 0);
    }

    #[test]
    fn k_max_is_at_least_k() {
        let cfg = NaiveConfig { kmax_factor: 0 };
        assert_eq!(cfg.k_max(7), 7);
        assert_eq!(NaiveConfig::default().k_max(10), 20);
    }
}
