//! Tokenisation of raw text into lower-cased word tokens.
//!
//! The tokenizer splits on any character that is not alphanumeric, folds
//! ASCII upper-case to lower-case, and optionally drops purely-numeric and
//! very short/long tokens. It is deliberately simple and allocation-light:
//! iteration borrows from the input string and only the final token text is
//! materialised (lower-cased) when the caller asks for it.

use std::borrow::Cow;

/// A single token produced by the [`Tokenizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text, lower-cased. Borrowed when the source was already
    /// lower-case ASCII, owned otherwise.
    pub text: Cow<'a, str>,
    /// Byte offset of the token start in the original input.
    pub offset: usize,
    /// Ordinal position of the token in the token stream (0-based).
    pub position: usize,
}

impl<'a> Token<'a> {
    /// Returns the token text as a string slice.
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

/// Configuration and entry point for tokenisation.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Minimum token length (in characters) to emit. Shorter tokens are dropped.
    pub min_len: usize,
    /// Maximum token length (in characters) to emit. Longer tokens are dropped.
    pub max_len: usize,
    /// Whether tokens consisting only of ASCII digits are dropped.
    pub drop_numeric: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            min_len: 2,
            max_len: 40,
            drop_numeric: true,
        }
    }
}

impl Tokenizer {
    /// Creates a tokenizer with the default settings (length 2..=40, numeric
    /// tokens dropped), matching common IR preprocessing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a permissive tokenizer that keeps every alphanumeric run,
    /// including single characters and numbers.
    pub fn permissive() -> Self {
        Self {
            min_len: 1,
            max_len: usize::MAX,
            drop_numeric: false,
        }
    }

    /// Tokenises `input`, returning the accepted tokens in order.
    pub fn tokenize<'a>(&self, input: &'a str) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        self.tokenize_into(input, &mut out);
        out
    }

    /// Tokenises `input`, appending accepted tokens to `out` (which is cleared
    /// first). Reusing the output vector avoids per-call allocation in hot
    /// loops.
    pub fn tokenize_into<'a>(&self, input: &'a str, out: &mut Vec<Token<'a>>) {
        out.clear();
        let bytes = input.as_bytes();
        let mut position = 0usize;
        let mut start: Option<usize> = None;
        // Walk char boundaries; alphanumeric runs form candidate tokens.
        let mut iter = input.char_indices().peekable();
        while let Some((idx, ch)) = iter.next() {
            let is_word = ch.is_alphanumeric();
            if is_word && start.is_none() {
                start = Some(idx);
            }
            let at_end = iter.peek().is_none();
            if (!is_word || at_end) && start.is_some() {
                let begin = start.take().expect("start set");
                let end = if is_word && at_end { input.len() } else { idx };
                if let Some(tok) = self.make_token(input, bytes, begin, end, position) {
                    out.push(tok);
                    position += 1;
                }
                // If the run was terminated by a non-word char we simply move on.
            }
        }
    }

    fn make_token<'a>(
        &self,
        input: &'a str,
        bytes: &[u8],
        begin: usize,
        end: usize,
        position: usize,
    ) -> Option<Token<'a>> {
        let raw = &input[begin..end];
        let char_len = raw.chars().count();
        if char_len < self.min_len || char_len > self.max_len {
            return None;
        }
        if self.drop_numeric && raw.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        // Fast path: already lower-case ASCII → borrow.
        let needs_fold = bytes[begin..end]
            .iter()
            .any(|b| b.is_ascii_uppercase() || !b.is_ascii());
        let text = if needs_fold {
            Cow::Owned(raw.to_lowercase())
        } else {
            Cow::Borrowed(raw)
        };
        Some(Token {
            text,
            offset: begin,
            position,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts<'a>(tokens: &'a [Token<'a>]) -> Vec<&'a str> {
        tokens.iter().map(|t| t.as_str()).collect()
    }

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        let t = Tokenizer::new();
        let toks = t.tokenize("Weapons of mass-destruction, reported!");
        assert_eq!(
            texts(&toks),
            vec!["weapons", "of", "mass", "destruction", "reported"]
        );
    }

    #[test]
    fn lowercases_tokens() {
        let t = Tokenizer::new();
        let toks = t.tokenize("Wall Street JOURNAL");
        assert_eq!(texts(&toks), vec!["wall", "street", "journal"]);
    }

    #[test]
    fn borrowed_when_already_lowercase_ascii() {
        let t = Tokenizer::new();
        let toks = t.tokenize("simple lowercase words");
        assert!(toks.iter().all(|tok| matches!(tok.text, Cow::Borrowed(_))));
    }

    #[test]
    fn owned_when_case_folding_needed() {
        let t = Tokenizer::new();
        let toks = t.tokenize("Mixed");
        assert!(matches!(toks[0].text, Cow::Owned(_)));
    }

    #[test]
    fn drops_single_characters_by_default() {
        let t = Tokenizer::new();
        let toks = t.tokenize("a b c word");
        assert_eq!(texts(&toks), vec!["word"]);
    }

    #[test]
    fn drops_numeric_tokens_by_default() {
        let t = Tokenizer::new();
        let toks = t.tokenize("profits rose 1992 by 12 percent");
        assert_eq!(texts(&toks), vec!["profits", "rose", "by", "percent"]);
    }

    #[test]
    fn keeps_alphanumeric_mixtures() {
        let t = Tokenizer::new();
        let toks = t.tokenize("boeing 747s and b2b deals");
        assert_eq!(texts(&toks), vec!["boeing", "747s", "and", "b2b", "deals"]);
    }

    #[test]
    fn permissive_keeps_everything() {
        let t = Tokenizer::permissive();
        let toks = t.tokenize("a 1 22 xyz");
        assert_eq!(texts(&toks), vec!["a", "1", "22", "xyz"]);
    }

    #[test]
    fn handles_unicode_words() {
        let t = Tokenizer::new();
        let toks = t.tokenize("Zürich café économie");
        assert_eq!(texts(&toks), vec!["zürich", "café", "économie"]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   \t\n ").is_empty());
        assert!(t.tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn offsets_and_positions_are_recorded() {
        let t = Tokenizer::new();
        let toks = t.tokenize("alpha beta");
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].offset, 6);
        assert_eq!(toks[1].position, 1);
    }

    #[test]
    fn token_at_end_of_input_is_emitted() {
        let t = Tokenizer::new();
        let toks = t.tokenize("trailing token");
        assert_eq!(texts(&toks), vec!["trailing", "token"]);
    }

    #[test]
    fn overlong_tokens_are_dropped() {
        let mut t = Tokenizer::new();
        t.max_len = 5;
        let toks = t.tokenize("short elongatedword tiny");
        assert_eq!(texts(&toks), vec!["short", "tiny"]);
    }

    #[test]
    fn tokenize_into_reuses_buffer() {
        let t = Tokenizer::new();
        let mut buf = Vec::new();
        t.tokenize_into("first call here", &mut buf);
        assert_eq!(buf.len(), 3);
        t.tokenize_into("second", &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].as_str(), "second");
    }
}
