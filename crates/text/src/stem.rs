//! The Porter (1980) suffix-stripping stemmer.
//!
//! Conflating morphological variants ("monitor", "monitors", "monitoring" →
//! "monitor") keeps the dictionary compact and makes a query term match every
//! inflection of the word in the document stream, which is the standard IR
//! preprocessing assumed by the paper's experimental setup.
//!
//! The implementation follows M. F. Porter, "An algorithm for suffix
//! stripping", *Program* 14(3), 1980, steps 1a–5b. It operates on lower-case
//! ASCII words; words containing non-ASCII characters are returned unchanged.

/// The Porter stemmer. Stateless; construct once and reuse.
#[derive(Debug, Clone, Copy, Default)]
pub struct PorterStemmer;

impl PorterStemmer {
    /// Creates a new stemmer.
    pub fn new() -> Self {
        Self
    }

    /// Stems `word`, returning the stemmed form. The input is expected to be
    /// lower-case; words shorter than 3 characters or containing non-ASCII
    /// bytes are returned unchanged.
    pub fn stem(&self, word: &str) -> String {
        if word.len() <= 2 || !word.is_ascii() {
            return word.to_string();
        }
        let mut w: Vec<u8> = word.as_bytes().to_vec();
        step_1a(&mut w);
        step_1b(&mut w);
        step_1c(&mut w);
        step_2(&mut w);
        step_3(&mut w);
        step_4(&mut w);
        step_5a(&mut w);
        step_5b(&mut w);
        // The buffer only ever shrinks or has ASCII letters appended, so it is
        // guaranteed to remain valid UTF-8.
        String::from_utf8(w).expect("stemmer output is ASCII")
    }
}

/// Returns `true` if `w[i]` acts as a consonant in Porter's definition.
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                // 'y' is a consonant iff the preceding letter is a vowel.
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Computes `m`, the number of vowel–consonant sequences (the "measure") of
/// the stem `w[..len]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — one full VC block seen.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// Whether the stem `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Whether the stem `w[..len]` ends with a double consonant.
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Whether the stem `w[..len]` ends consonant-vowel-consonant, where the final
/// consonant is not `w`, `x` or `y` (Porter's *o condition).
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let c = w[len - 1];
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && c != b'w'
        && c != b'x'
        && c != b'y'
}

/// Whether `w` ends with `suffix`.
fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// Length of the stem obtained by removing `suffix` from `w` (caller must have
/// checked `ends_with`).
fn stem_len(w: &[u8], suffix: &str) -> usize {
    w.len() - suffix.len()
}

/// Replaces the trailing `suffix` with `replacement`.
fn replace_suffix(w: &mut Vec<u8>, suffix: &str, replacement: &str) {
    let new_len = w.len() - suffix.len();
    w.truncate(new_len);
    w.extend_from_slice(replacement.as_bytes());
}

/// Step 1a: plural removal (sses→ss, ies→i, ss→ss, s→"").
fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        replace_suffix(w, "sses", "ss");
    } else if ends_with(w, "ies") {
        replace_suffix(w, "ies", "i");
    } else if ends_with(w, "ss") {
        // keep
    } else if ends_with(w, "s") && w.len() > 1 {
        replace_suffix(w, "s", "");
    }
}

/// Step 1b: -eed/-ed/-ing removal with cleanup of the exposed stem.
fn step_1b(w: &mut Vec<u8>) {
    let mut cleanup = false;
    if ends_with(w, "eed") {
        if measure(w, stem_len(w, "eed")) > 0 {
            replace_suffix(w, "eed", "ee");
        }
    } else if ends_with(w, "ed") && has_vowel(w, stem_len(w, "ed")) {
        replace_suffix(w, "ed", "");
        cleanup = true;
    } else if ends_with(w, "ing") && has_vowel(w, stem_len(w, "ing")) {
        replace_suffix(w, "ing", "");
        cleanup = true;
    }
    if cleanup {
        if ends_with(w, "at") {
            replace_suffix(w, "at", "ate");
        } else if ends_with(w, "bl") {
            replace_suffix(w, "bl", "ble");
        } else if ends_with(w, "iz") {
            replace_suffix(w, "iz", "ize");
        } else if ends_double_consonant(w, w.len()) {
            let last = w[w.len() - 1];
            if last != b'l' && last != b's' && last != b'z' {
                w.truncate(w.len() - 1);
            }
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

/// Step 1c: terminal y → i when the stem contains a vowel.
fn step_1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

/// Applies the first matching (suffix, replacement) rule whose stem measure
/// exceeds `min_measure`.
fn apply_rules(w: &mut Vec<u8>, rules: &[(&str, &str)], min_measure: usize) {
    for (suffix, replacement) in rules {
        if ends_with(w, suffix) {
            if measure(w, stem_len(w, suffix)) > min_measure {
                replace_suffix(w, suffix, replacement);
            }
            return;
        }
    }
}

/// Step 2: double-suffix reduction (ational→ate, iveness→ive, ...), m > 0.
fn step_2(w: &mut Vec<u8>) {
    apply_rules(
        w,
        &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ],
        0,
    );
}

/// Step 3: -icate/-ative/-alize/... reduction, m > 0.
fn step_3(w: &mut Vec<u8>) {
    apply_rules(
        w,
        &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ],
        0,
    );
}

/// Step 4: suffix deletion for m > 1.
fn step_4(w: &mut Vec<u8>) {
    // "ion" requires the stem to end in 's' or 't'.
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
        "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suffix in RULES {
        if ends_with(w, suffix) {
            let sl = stem_len(w, suffix);
            if *suffix == "ion" {
                if sl > 0 && (w[sl - 1] == b's' || w[sl - 1] == b't') && measure(w, sl) > 1 {
                    w.truncate(sl);
                }
            } else if measure(w, sl) > 1 {
                w.truncate(sl);
            }
            return;
        }
    }
}

/// Step 5a: remove a final 'e' if m > 1, or if m == 1 and the stem does not
/// end cvc.
fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let sl = w.len() - 1;
        let m = measure(w, sl);
        if m > 1 || (m == 1 && !ends_cvc(w, sl)) {
            w.truncate(sl);
        }
    }
}

/// Step 5b: reduce a final double 'l' if m > 1.
fn step_5b(w: &mut Vec<u8>) {
    if w.len() >= 2
        && w[w.len() - 1] == b'l'
        && ends_double_consonant(w, w.len())
        && measure(w, w.len() - 1) > 1
    {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(word: &str) -> String {
        PorterStemmer::new().stem(word)
    }

    #[test]
    fn classic_porter_examples() {
        assert_eq!(s("caresses"), "caress");
        assert_eq!(s("ponies"), "poni");
        assert_eq!(s("caress"), "caress");
        assert_eq!(s("cats"), "cat");
        assert_eq!(s("feed"), "feed");
        assert_eq!(s("agreed"), "agre");
        assert_eq!(s("plastered"), "plaster");
        assert_eq!(s("bled"), "bled");
        assert_eq!(s("motoring"), "motor");
        assert_eq!(s("sing"), "sing");
    }

    #[test]
    fn step1b_cleanup_examples() {
        assert_eq!(s("conflated"), "conflat");
        assert_eq!(s("troubled"), "troubl");
        assert_eq!(s("sized"), "size");
        assert_eq!(s("hopping"), "hop");
        assert_eq!(s("tanned"), "tan");
        assert_eq!(s("falling"), "fall");
        assert_eq!(s("hissing"), "hiss");
        assert_eq!(s("fizzed"), "fizz");
        assert_eq!(s("failing"), "fail");
        assert_eq!(s("filing"), "file");
    }

    #[test]
    fn y_to_i() {
        assert_eq!(s("happy"), "happi");
        assert_eq!(s("sky"), "sky");
    }

    #[test]
    fn step2_examples() {
        assert_eq!(s("relational"), "relat");
        assert_eq!(s("conditional"), "condit");
        assert_eq!(s("rational"), "ration");
        assert_eq!(s("valenci"), "valenc");
        assert_eq!(s("digitizer"), "digit");
        assert_eq!(s("operator"), "oper");
        assert_eq!(s("feudalism"), "feudal");
        assert_eq!(s("decisiveness"), "decis");
        assert_eq!(s("hopefulness"), "hope");
        assert_eq!(s("callousness"), "callous");
        assert_eq!(s("formaliti"), "formal");
        assert_eq!(s("sensitiviti"), "sensit");
        assert_eq!(s("sensibiliti"), "sensibl");
    }

    #[test]
    fn step3_examples() {
        assert_eq!(s("triplicate"), "triplic");
        assert_eq!(s("formative"), "form");
        assert_eq!(s("formalize"), "formal");
        assert_eq!(s("electriciti"), "electr");
        assert_eq!(s("electrical"), "electr");
        assert_eq!(s("hopeful"), "hope");
        assert_eq!(s("goodness"), "good");
    }

    #[test]
    fn step4_examples() {
        assert_eq!(s("revival"), "reviv");
        assert_eq!(s("allowance"), "allow");
        assert_eq!(s("inference"), "infer");
        assert_eq!(s("airliner"), "airlin");
        assert_eq!(s("gyroscopic"), "gyroscop");
        assert_eq!(s("adjustable"), "adjust");
        assert_eq!(s("defensible"), "defens");
        assert_eq!(s("irritant"), "irrit");
        assert_eq!(s("replacement"), "replac");
        assert_eq!(s("adjustment"), "adjust");
        assert_eq!(s("dependent"), "depend");
        assert_eq!(s("adoption"), "adopt");
        assert_eq!(s("communism"), "commun");
        assert_eq!(s("activate"), "activ");
        assert_eq!(s("angulariti"), "angular");
        assert_eq!(s("homologous"), "homolog");
        assert_eq!(s("effective"), "effect");
        assert_eq!(s("bowdlerize"), "bowdler");
    }

    #[test]
    fn step5_examples() {
        assert_eq!(s("probate"), "probat");
        assert_eq!(s("rate"), "rate");
        assert_eq!(s("cease"), "ceas");
        assert_eq!(s("controll"), "control");
        assert_eq!(s("roll"), "roll");
    }

    #[test]
    fn domain_words_conflate() {
        // Query terms and their inflections map to the same stem, which is
        // what makes continuous queries robust to morphology.
        assert_eq!(s("weapons"), s("weapon"));
        assert_eq!(s("monitoring"), s("monitored"));
        assert_eq!(s("explosives"), s("explosive"));
        assert_eq!(s("investments"), s("investment"));
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        assert_eq!(s("be"), "be");
        assert_eq!(s("a"), "a");
        assert_eq!(s("zürich"), "zürich");
    }

    #[test]
    fn stemming_is_idempotent_on_common_vocabulary() {
        let stemmer = PorterStemmer::new();
        for w in [
            "market",
            "markets",
            "marketing",
            "industry",
            "industries",
            "company",
            "companies",
            "reporting",
            "reported",
            "analyst",
            "analysts",
            "security",
            "securities",
        ] {
            let once = stemmer.stem(w);
            let twice = stemmer.stem(&once);
            // Porter is not idempotent for every English word, but it is for
            // this kind of newswire vocabulary; treat a violation as a bug.
            assert_eq!(once, twice, "not idempotent for {w}");
        }
    }
}
