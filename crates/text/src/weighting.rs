//! Impact weighting models.
//!
//! The paper scores a document `d` against a query `Q` as
//! `S(d|Q) = Σ_{t∈Q} w_{Q,t} · w_{d,t}` (Equation 1), where for the cosine
//! model both sides are L2-normalised term frequencies. The engine never
//! looks at raw frequencies: documents enter the system already carrying a
//! *composition list* of `⟨t, w_{d,t}⟩` pairs, and queries are translated to
//! `⟨t, w_{Q,t}⟩` pairs. A [`WeightingModel`] performs exactly this
//! translation, so the rest of the system is agnostic to the similarity
//! measure in use (the paper notes the approach also works for Okapi-style
//! measures, which we provide as [`Bm25Model`]).

use serde::{Deserialize, Serialize};

use crate::dictionary::Dictionary;
use crate::vector::{TermVector, WeightedVector};

/// Converts raw term-frequency vectors into impact-weighted vectors.
pub trait WeightingModel {
    /// Computes the document-side weights `w_{d,t}` (the composition list).
    fn document_weights(&self, doc: &TermVector, dict: &Dictionary) -> WeightedVector;

    /// Computes the query-side weights `w_{Q,t}`.
    fn query_weights(&self, query: &TermVector, dict: &Dictionary) -> WeightedVector;

    /// A short, stable name for reporting.
    fn name(&self) -> &'static str;
}

/// The paper's cosine similarity weighting (Equation 1).
///
/// * `w_{Q,t} = f_{Q,t} / sqrt(Σ_{t'∈Q} f_{Q,t'}²)` — normalised over the
///   *query* terms only.
/// * `w_{d,t} = f_{d,t} / sqrt(Σ_{t'∈T} f_{d,t'}²)` — normalised over **all**
///   terms of the document.
///
/// With both sides normalised this way, `S(d|Q) ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CosineModel;

impl CosineModel {
    /// Creates the cosine model.
    pub fn new() -> Self {
        Self
    }
}

impl WeightingModel for CosineModel {
    fn document_weights(&self, doc: &TermVector, _dict: &Dictionary) -> WeightedVector {
        l2_normalised(doc)
    }

    fn query_weights(&self, query: &TermVector, _dict: &Dictionary) -> WeightedVector {
        l2_normalised(query)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

fn l2_normalised(v: &TermVector) -> WeightedVector {
    let norm = v.l2_norm_squared().sqrt();
    if norm <= 0.0 {
        return WeightedVector::new();
    }
    WeightedVector::from_weights(v.iter().map(|(t, f)| (t, f64::from(f) / norm)))
}

/// Okapi BM25 weighting.
///
/// The document-side impact is the classic BM25 term contribution
/// `((k1 + 1)·f) / (k1·(1 − b + b·len/avg_len) + f)` scaled by the term's
/// inverse document frequency; the query side uses the (rarely material)
/// query-frequency saturation `((k3 + 1)·f) / (k3 + f)`. The IDF component is
/// folded into the document side so that, as in the cosine model, the final
/// score is a plain dot product of the two weighted vectors — which is what
/// lets the inverted-list/threshold machinery work unchanged.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bm25Model {
    /// Term-frequency saturation parameter (typically 1.2–2.0).
    pub k1: f64,
    /// Length-normalisation strength (0 = none, 1 = full).
    pub b: f64,
    /// Query-frequency saturation parameter.
    pub k3: f64,
    /// Average document length (in term occurrences) used for normalisation.
    pub average_doc_len: f64,
    /// Total number of documents assumed for the IDF component. Together with
    /// the dictionary's per-term document frequencies this yields a standard
    /// BM25 IDF; when a term has no statistics yet a neutral IDF of 1 is used.
    pub collection_size: u64,
}

impl Default for Bm25Model {
    fn default() -> Self {
        Self {
            k1: 1.2,
            b: 0.75,
            k3: 8.0,
            average_doc_len: 400.0,
            collection_size: 100_000,
        }
    }
}

impl Bm25Model {
    /// Creates a BM25 model with the given average document length, keeping
    /// the standard parameter defaults.
    pub fn with_average_doc_len(average_doc_len: f64) -> Self {
        Self {
            average_doc_len,
            ..Self::default()
        }
    }

    fn idf(&self, dict: &Dictionary, term: crate::TermId) -> f64 {
        let df = dict.stats(term).map(|s| s.document_frequency).unwrap_or(0);
        if df == 0 {
            return 1.0;
        }
        let n = self.collection_size.max(df) as f64;
        let df = df as f64;
        // The "plus one" form keeps the weight strictly positive.
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }
}

impl WeightingModel for Bm25Model {
    fn document_weights(&self, doc: &TermVector, dict: &Dictionary) -> WeightedVector {
        let len = doc.total_occurrences() as f64;
        let avg = if self.average_doc_len > 0.0 {
            self.average_doc_len
        } else {
            1.0
        };
        let norm = self.k1 * (1.0 - self.b + self.b * len / avg);
        WeightedVector::from_weights(doc.iter().map(|(t, f)| {
            let f = f64::from(f);
            let tf = ((self.k1 + 1.0) * f) / (norm + f);
            (t, tf * self.idf(dict, t))
        }))
    }

    fn query_weights(&self, query: &TermVector, _dict: &Dictionary) -> WeightedVector {
        WeightedVector::from_weights(query.iter().map(|(t, f)| {
            let f = f64::from(f);
            (t, ((self.k3 + 1.0) * f) / (self.k3 + f))
        }))
    }

    fn name(&self) -> &'static str {
        "bm25"
    }
}

/// The similarity measures available to the engines, as a plain enum so that
/// configurations remain serialisable.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub enum Scoring {
    /// Cosine similarity (the paper's Equation 1). The default.
    #[default]
    Cosine,
    /// Okapi BM25 with the given parameters.
    Bm25(Bm25Model),
}

impl Scoring {
    /// Computes document-side weights under this measure.
    pub fn document_weights(&self, doc: &TermVector, dict: &Dictionary) -> WeightedVector {
        match self {
            Scoring::Cosine => CosineModel.document_weights(doc, dict),
            Scoring::Bm25(m) => m.document_weights(doc, dict),
        }
    }

    /// Computes query-side weights under this measure.
    pub fn query_weights(&self, query: &TermVector, dict: &Dictionary) -> WeightedVector {
        match self {
            Scoring::Cosine => CosineModel.query_weights(query, dict),
            Scoring::Bm25(m) => m.query_weights(query, dict),
        }
    }

    /// A short, stable name for reporting.
    pub fn name(&self) -> &'static str {
        match self {
            Scoring::Cosine => "cosine",
            Scoring::Bm25(_) => "bm25",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Dictionary;
    use crate::score::dot_product;
    use crate::TermId;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn cosine_document_weights_are_unit_norm() {
        let dict = Dictionary::new();
        let doc = TermVector::from_counts([(t(0), 2), (t(1), 1), (t(2), 2)]);
        let w = CosineModel.document_weights(&doc, &dict);
        assert!((w.l2_norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_query_weights_match_paper_formula() {
        // Query {white white tower}: f_white = 2, f_tower = 1.
        let dict = Dictionary::new();
        let q = TermVector::from_counts([(t(20), 2), (t(11), 1)]);
        let w = CosineModel.query_weights(&q, &dict);
        let denom = (2.0f64 * 2.0 + 1.0).sqrt();
        assert!((w.weight(t(20)) - 2.0 / denom).abs() < 1e-12);
        assert!((w.weight(t(11)) - 1.0 / denom).abs() < 1e-12);
    }

    #[test]
    fn cosine_score_of_identical_vectors_is_one() {
        let dict = Dictionary::new();
        let v = TermVector::from_counts([(t(0), 3), (t(1), 4)]);
        let d = CosineModel.document_weights(&v, &dict);
        let q = CosineModel.query_weights(&v, &dict);
        assert!((dot_product(&q, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_empty_vector_gives_empty_weights() {
        let dict = Dictionary::new();
        let w = CosineModel.document_weights(&TermVector::new(), &dict);
        assert!(w.is_empty());
    }

    #[test]
    fn bm25_weights_are_positive_and_saturate() {
        let mut dict = Dictionary::new();
        let a = dict.intern("market");
        dict.record_occurrences(a, 5);
        let model = Bm25Model::with_average_doc_len(10.0);
        let low = model.document_weights(&TermVector::from_counts([(a, 1)]), &dict);
        let high = model.document_weights(&TermVector::from_counts([(a, 50)]), &dict);
        assert!(low.weight(a) > 0.0);
        assert!(high.weight(a) > low.weight(a));
        // Saturation: 50 occurrences are worth far less than 50x one occurrence.
        assert!(high.weight(a) < 50.0 * low.weight(a));
    }

    #[test]
    fn bm25_rare_terms_outweigh_common_terms() {
        let mut dict = Dictionary::new();
        let rare = dict.intern("anthrax");
        let common = dict.intern("market");
        dict.record_occurrences(rare, 1);
        for _ in 0..1000 {
            dict.record_occurrences(common, 1);
        }
        let model = Bm25Model {
            collection_size: 10_000,
            ..Bm25Model::with_average_doc_len(10.0)
        };
        let doc = TermVector::from_counts([(rare, 1), (common, 1)]);
        let w = model.document_weights(&doc, &dict);
        assert!(w.weight(rare) > w.weight(common));
    }

    #[test]
    fn bm25_query_weights_saturate_with_frequency() {
        let dict = Dictionary::new();
        let model = Bm25Model::default();
        let q1 = model.query_weights(&TermVector::from_counts([(t(0), 1)]), &dict);
        let q9 = model.query_weights(&TermVector::from_counts([(t(0), 9)]), &dict);
        assert!(q9.weight(t(0)) > q1.weight(t(0)));
        assert!(q9.weight(t(0)) < 9.0 * q1.weight(t(0)));
    }

    #[test]
    fn scoring_enum_dispatches() {
        let dict = Dictionary::new();
        let doc = TermVector::from_counts([(t(0), 1)]);
        let c = Scoring::Cosine.document_weights(&doc, &dict);
        let b = Scoring::Bm25(Bm25Model::default()).document_weights(&doc, &dict);
        assert_eq!(Scoring::Cosine.name(), "cosine");
        assert_eq!(Scoring::Bm25(Bm25Model::default()).name(), "bm25");
        assert!(c.weight(t(0)) > 0.0);
        assert!(b.weight(t(0)) > 0.0);
    }
}
