//! Term dictionary: interning of terms into dense [`TermId`]s.
//!
//! Every distinct (post-analysis) term in the system is assigned a dense
//! integer id. The engine, index and corpus crates operate exclusively on
//! `TermId`s; the dictionary is the single place where term strings live.
//! A realistic dictionary for a newswire stream holds on the order of
//! 100,000–200,000 terms (the paper's WSJ dictionary has 181,978), so lookups
//! must be cheap and the per-term overhead small.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Dense identifier of an interned term.
///
/// Internally a `u32`, which comfortably covers realistic dictionary sizes
/// (the paper's WSJ dictionary has 181,978 terms) while keeping postings and
/// composition lists compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Per-term statistics tracked by the dictionary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermStats {
    /// Number of documents this term has been observed in (monotonic; not
    /// decremented on expiration — it reflects the whole history seen so far
    /// and is only used for reporting and for IDF-style weighting models).
    pub document_frequency: u64,
    /// Total number of occurrences observed across all documents.
    pub collection_frequency: u64,
}

/// A bidirectional term ↔ id mapping with per-term statistics.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_term: HashMap<Box<str>, TermId>,
    terms: Vec<Box<str>>,
    stats: Vec<TermStats>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `n` terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            by_term: HashMap::with_capacity(n),
            terms: Vec::with_capacity(n),
            stats: Vec::with_capacity(n),
        }
    }

    /// Interns `term`, returning its id. Existing terms return their existing
    /// id; new terms are appended.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary exceeds u32 terms"));
        let boxed: Box<str> = term.into();
        self.by_term.insert(boxed.clone(), id);
        self.terms.push(boxed);
        self.stats.push(TermStats::default());
        id
    }

    /// Looks up the id of `term` without interning it.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Returns the term string for `id`, if it exists.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(|t| t.as_ref())
    }

    /// Returns the statistics recorded for `id`.
    pub fn stats(&self, id: TermId) -> Option<TermStats> {
        self.stats.get(id.index()).copied()
    }

    /// Records that `id` occurred `count` times in one (new) document.
    pub fn record_occurrences(&mut self, id: TermId, count: u64) {
        if let Some(s) = self.stats.get_mut(id.index()) {
            s.document_frequency += 1;
            s.collection_frequency += count;
        }
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(TermId, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_ref()))
    }

    /// Total number of term occurrences recorded across all documents.
    pub fn total_collection_frequency(&self) -> u64 {
        self.stats.iter().map(|s| s.collection_frequency).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("tower");
        let b = d.intern("white");
        let a2 = d.intern("tower");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_insertion() {
        let mut d = Dictionary::new();
        for (i, t) in ["alpha", "beta", "gamma"].iter().enumerate() {
            let id = d.intern(t);
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dictionary::new();
        assert!(d.lookup("missing").is_none());
        assert_eq!(d.len(), 0);
        d.intern("present");
        assert!(d.lookup("present").is_some());
    }

    #[test]
    fn term_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("explosives");
        assert_eq!(d.term(id), Some("explosives"));
        assert_eq!(d.term(TermId(999)), None);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Dictionary::new();
        let id = d.intern("market");
        d.record_occurrences(id, 3);
        d.record_occurrences(id, 2);
        let s = d.stats(id).unwrap();
        assert_eq!(s.document_frequency, 2);
        assert_eq!(s.collection_frequency, 5);
        assert_eq!(d.total_collection_frequency(), 5);
    }

    #[test]
    fn iter_yields_all_terms() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        let collected: Vec<_> = d.iter().map(|(id, t)| (id.0, t.to_string())).collect();
        assert_eq!(collected, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn display_format() {
        assert_eq!(TermId(11).to_string(), "t11");
    }

    #[test]
    fn with_capacity_starts_empty() {
        let d = Dictionary::with_capacity(1000);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
