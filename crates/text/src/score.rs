//! Similarity evaluation and the total-order weight wrapper.
//!
//! The similarity of a document to a query is the sparse dot product of their
//! weighted vectors (`S(d|Q) = Σ_{t∈Q} w_{Q,t} · w_{d,t}`). This module also
//! provides [`Weight`], a `f64` wrapper with a total order that rejects NaN
//! at construction — impact weights, local thresholds and scores are all kept
//! in ordered collections (inverted lists, threshold trees, result sets), so
//! a well-defined `Ord` is essential.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::vector::WeightedVector;

/// Computes the sparse dot product of two weighted vectors.
///
/// Both vectors are sorted by term id, so this is a linear merge. The query
/// side is conventionally the first argument but the operation is symmetric.
pub fn dot_product(a: &WeightedVector, b: &WeightedVector) -> f64 {
    let xs = a.as_slice();
    let ys = b.as_slice();
    let mut i = 0;
    let mut j = 0;
    let mut acc = 0.0;
    while i < xs.len() && j < ys.len() {
        match xs[i].term.cmp(&ys[j].term) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                acc += xs[i].weight.get() * ys[j].weight.get();
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// When a query has `asymmetry × |Q|` fewer terms than the document, probing
/// the document by binary search beats the linear merge. 16 keeps the probe
/// path (`|Q|·log |d|` comparisons) comfortably ahead of the merge's
/// `|Q| + |d|` at newswire document lengths.
const LOOKUP_ASYMMETRY: usize = 16;

/// Computes the sparse dot product by probing `b` (binary search) for each
/// term of `a`. Equivalent to [`dot_product`] — both accumulate matched terms
/// in ascending term-id order, so the results are bit-identical — but `O(|a|
/// log |b|)` instead of `O(|a| + |b|)`, a large win when a short query meets
/// a long document composition list.
pub fn dot_product_lookup(a: &WeightedVector, b: &WeightedVector) -> f64 {
    a.as_slice()
        .iter()
        .map(|e| e.weight.get() * b.weight(e.term))
        .sum()
}

/// Scores a (short) query vector against a (long) document composition list,
/// choosing between the linear merge and per-term lookup by size asymmetry.
/// Both paths produce bit-identical sums.
pub fn query_document_score(query: &WeightedVector, doc: &WeightedVector) -> f64 {
    if query.len().saturating_mul(LOOKUP_ASYMMETRY) < doc.len() {
        dot_product_lookup(query, doc)
    } else {
        dot_product(query, doc)
    }
}

/// A finite, non-NaN `f64` with a total order.
///
/// Construction via [`Weight::new`] panics on NaN (a NaN weight is always a
/// programming error upstream — weights come from normalised term
/// frequencies); [`Weight::try_new`] is available for fallible conversion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Weight(f64);

impl Weight {
    /// The zero weight.
    pub const ZERO: Weight = Weight(0.0);

    /// Wraps `value`, panicking if it is NaN.
    pub fn new(value: f64) -> Self {
        Self::try_new(value).expect("weight must not be NaN")
    }

    /// Wraps `value`, returning `None` if it is NaN.
    pub fn try_new(value: f64) -> Option<Self> {
        if value.is_nan() {
            None
        } else {
            Some(Weight(value))
        }
    }

    /// Returns the inner `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the larger of two weights.
    pub fn max(self, other: Weight) -> Weight {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two weights.
    pub fn min(self, other: Weight) -> Weight {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> Ordering {
        // Neither side can be NaN by construction.
        self.0.partial_cmp(&other.0).expect("weights are not NaN")
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl From<Weight> for f64 {
    fn from(w: Weight) -> f64 {
        w.0
    }
}

impl Add for Weight {
    type Output = Weight;
    fn add(self, rhs: Weight) -> Weight {
        Weight::new(self.0 + rhs.0)
    }
}

impl Sub for Weight {
    type Output = Weight;
    fn sub(self, rhs: Weight) -> Weight {
        Weight::new(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::WeightedVector;
    use crate::TermId;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn dot_product_of_disjoint_vectors_is_zero() {
        let a = WeightedVector::from_weights([(t(0), 0.5), (t(1), 0.5)]);
        let b = WeightedVector::from_weights([(t(2), 0.9)]);
        assert_eq!(dot_product(&a, &b), 0.0);
    }

    #[test]
    fn dot_product_matches_manual_computation() {
        let q = WeightedVector::from_weights([(t(11), 0.447), (t(20), 0.894)]);
        let d = WeightedVector::from_weights([(t(11), 0.16), (t(20), 0.10), (t(30), 0.5)]);
        let expected = 0.447 * 0.16 + 0.894 * 0.10;
        assert!((dot_product(&q, &d) - expected).abs() < 1e-12);
    }

    #[test]
    fn dot_product_is_symmetric() {
        let a = WeightedVector::from_weights([(t(1), 0.3), (t(4), 0.7)]);
        let b = WeightedVector::from_weights([(t(1), 0.2), (t(3), 0.8), (t(4), 0.1)]);
        assert!((dot_product(&a, &b) - dot_product(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn dot_product_with_empty_is_zero() {
        let a = WeightedVector::from_weights([(t(1), 0.3)]);
        assert_eq!(dot_product(&a, &WeightedVector::new()), 0.0);
        assert_eq!(dot_product(&WeightedVector::new(), &a), 0.0);
    }

    #[test]
    fn lookup_and_merge_dot_products_are_bit_identical() {
        let q = WeightedVector::from_weights([(t(3), 0.447), (t(40), 0.894), (t(99), 0.1)]);
        let d = WeightedVector::from_weights((0..100u32).map(|i| (t(i), 0.001 + i as f64 * 0.003)));
        assert_eq!(dot_product(&q, &d), dot_product_lookup(&q, &d));
        assert_eq!(query_document_score(&q, &d), dot_product(&q, &d));
        // Symmetric sizes take the merge path; tiny-vs-large takes lookup.
        let small = WeightedVector::from_weights([(t(1), 0.5)]);
        assert_eq!(
            query_document_score(&small, &d),
            dot_product_lookup(&small, &d)
        );
    }

    #[test]
    fn weight_ordering_is_total() {
        let mut ws = vec![
            Weight::new(0.3),
            Weight::new(-1.0),
            Weight::new(2.5),
            Weight::ZERO,
        ];
        ws.sort();
        let raw: Vec<f64> = ws.into_iter().map(Weight::get).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 0.3, 2.5]);
    }

    #[test]
    fn weight_rejects_nan() {
        assert!(Weight::try_new(f64::NAN).is_none());
        assert!(Weight::try_new(1.0).is_some());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn weight_new_panics_on_nan() {
        let _ = Weight::new(f64::NAN);
    }

    #[test]
    fn weight_arithmetic_and_minmax() {
        let a = Weight::new(0.25);
        let b = Weight::new(0.5);
        assert_eq!((a + b).get(), 0.75);
        assert_eq!((b - a).get(), 0.25);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn weight_display_is_stable() {
        assert_eq!(Weight::new(0.1).to_string(), "0.100000");
    }
}
