//! The analysis pipeline: raw text → [`TermVector`].
//!
//! An [`Analyzer`] chains the [`Tokenizer`], [`StopWords`] filter and
//! [`PorterStemmer`] and interns the surviving terms in a [`Dictionary`].
//! This mirrors the "standard stopword removal" preprocessing of the paper's
//! experimental setup and is what both the corpus generator (for real text)
//! and the examples use to turn strings into the term-id world that the
//! engine operates in.

use crate::dictionary::Dictionary;
use crate::stem::PorterStemmer;
use crate::stopwords::StopWords;
use crate::token::Tokenizer;
use crate::vector::TermVector;

/// A configurable text-analysis pipeline.
#[derive(Debug, Clone)]
pub struct Analyzer {
    tokenizer: Tokenizer,
    stopwords: StopWords,
    stemmer: Option<PorterStemmer>,
}

impl Analyzer {
    /// The standard English pipeline: default tokenizer, English stop words,
    /// Porter stemming.
    pub fn english() -> Self {
        Self {
            tokenizer: Tokenizer::new(),
            stopwords: StopWords::english(),
            stemmer: Some(PorterStemmer::new()),
        }
    }

    /// A pipeline with no stop-word removal and no stemming; only
    /// tokenisation and lower-casing are applied.
    pub fn plain() -> Self {
        Self {
            tokenizer: Tokenizer::new(),
            stopwords: StopWords::none(),
            stemmer: None,
        }
    }

    /// Builds an analyzer from explicit components.
    pub fn new(tokenizer: Tokenizer, stopwords: StopWords, stemmer: Option<PorterStemmer>) -> Self {
        Self {
            tokenizer,
            stopwords,
            stemmer,
        }
    }

    /// Analyses `text`: tokenise, filter stop words, stem, intern, count.
    /// Terms are interned into `dict` (new terms extend the dictionary), and
    /// the dictionary's per-term statistics are **not** updated — call
    /// [`Analyzer::analyze_document`] for that.
    pub fn analyze(&self, text: &str, dict: &mut Dictionary) -> TermVector {
        let mut vector = TermVector::new();
        let mut tokens = Vec::new();
        self.tokenizer.tokenize_into(text, &mut tokens);
        for token in &tokens {
            let word = token.as_str();
            if self.stopwords.contains(word) {
                continue;
            }
            let id = match &self.stemmer {
                Some(stemmer) => {
                    let stemmed = stemmer.stem(word);
                    dict.intern(&stemmed)
                }
                None => dict.intern(word),
            };
            vector.add(id);
        }
        vector
    }

    /// Analyses a *document*: like [`Analyzer::analyze`], but also records the
    /// document's term occurrences in the dictionary statistics (document and
    /// collection frequency), which IDF-style weighting models consume.
    pub fn analyze_document(&self, text: &str, dict: &mut Dictionary) -> TermVector {
        let vector = self.analyze(text, dict);
        for (term, count) in vector.iter() {
            dict.record_occurrences(term, u64::from(count));
        }
        vector
    }

    /// Analyses a *query string*. Identical to [`Analyzer::analyze`]; provided
    /// for call-site clarity (queries never update dictionary statistics).
    pub fn analyze_query(&self, text: &str, dict: &mut Dictionary) -> TermVector {
        self.analyze(text, dict)
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::english()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_filters_and_stems() {
        let mut dict = Dictionary::new();
        let a = Analyzer::english();
        let v = a.analyze("The markets are monitoring the weapons reports", &mut dict);
        // "the", "are" removed; "markets"→"market", "monitoring"→"monitor",
        // "weapons"→"weapon", "reports"→"report".
        let terms: Vec<&str> = v.iter().map(|(t, _)| dict.term(t).unwrap()).collect();
        assert!(terms.contains(&"market"));
        assert!(terms.contains(&"monitor"));
        assert!(terms.contains(&"weapon"));
        assert!(terms.contains(&"report"));
        assert!(!terms.contains(&"the"));
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn repeated_terms_are_counted() {
        let mut dict = Dictionary::new();
        let a = Analyzer::english();
        let v = a.analyze("white white tower", &mut dict);
        let white = dict.lookup("white").unwrap();
        let tower = dict.lookup("tower").unwrap();
        assert_eq!(v.frequency(white), 2);
        assert_eq!(v.frequency(tower), 1);
    }

    #[test]
    fn plain_pipeline_keeps_stopwords_and_inflections() {
        let mut dict = Dictionary::new();
        let a = Analyzer::plain();
        let v = a.analyze("the markets", &mut dict);
        assert!(dict.lookup("the").is_some());
        assert!(dict.lookup("markets").is_some());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn inflections_map_to_same_term_id() {
        let mut dict = Dictionary::new();
        let a = Analyzer::english();
        let v1 = a.analyze("explosive", &mut dict);
        let v2 = a.analyze("explosives", &mut dict);
        let id1: Vec<_> = v1.iter().map(|(t, _)| t).collect();
        let id2: Vec<_> = v2.iter().map(|(t, _)| t).collect();
        assert_eq!(id1, id2);
    }

    #[test]
    fn analyze_document_updates_dictionary_stats() {
        let mut dict = Dictionary::new();
        let a = Analyzer::english();
        a.analyze_document("market market crash", &mut dict);
        a.analyze_document("market recovery", &mut dict);
        let market = dict.lookup("market").unwrap();
        let stats = dict.stats(market).unwrap();
        assert_eq!(stats.document_frequency, 2);
        assert_eq!(stats.collection_frequency, 3);
    }

    #[test]
    fn analyze_query_does_not_update_stats() {
        let mut dict = Dictionary::new();
        let a = Analyzer::english();
        a.analyze_query("market crash", &mut dict);
        let market = dict.lookup("market").unwrap();
        assert_eq!(dict.stats(market).unwrap().document_frequency, 0);
    }

    #[test]
    fn empty_and_stopword_only_text_yields_empty_vector() {
        let mut dict = Dictionary::new();
        let a = Analyzer::english();
        assert!(a.analyze("", &mut dict).is_empty());
        assert!(a.analyze("the of and to", &mut dict).is_empty());
    }
}
