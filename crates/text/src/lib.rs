//! Text processing substrate for continuous text search.
//!
//! This crate provides every text-side building block required by the
//! Incremental Threshold Algorithm (ITA) reproduction:
//!
//! * [`Tokenizer`] — Unicode-aware word splitting with ASCII case folding.
//! * [`StopWords`] — the standard English stop-word list used for the
//!   "standard stopword removal" step of the paper's experimental setup.
//! * [`PorterStemmer`] — the classic Porter (1980) suffix-stripping stemmer.
//! * [`Dictionary`] — a term interner mapping terms to dense [`TermId`]s,
//!   plus per-term corpus statistics (document frequency).
//! * [`TermVector`] — a sparse term-frequency vector for a document or query.
//! * [`Analyzer`] — the full pipeline (tokenise → stop → stem → count) that
//!   turns raw text into a [`TermVector`].
//! * [`weighting`] — cosine (L2-normalised TF) and Okapi BM25 impact models
//!   producing the `w_{d,t}` / `w_{Q,t}` weights of the paper's Equation (1).
//! * [`score`] — similarity evaluation (`S(d|Q) = Σ w_{Q,t}·w_{d,t}`) plus a
//!   total-order wrapper for `f64` weights ([`Weight`]) used throughout the
//!   index and engine crates.
//!
//! # Quick example
//!
//! ```
//! use cts_text::{Analyzer, Dictionary, weighting::{CosineModel, WeightingModel}};
//!
//! let mut dict = Dictionary::new();
//! let analyzer = Analyzer::english();
//! let doc = analyzer.analyze("The white tower stood over the white city", &mut dict);
//! let query = analyzer.analyze("white white tower", &mut dict);
//!
//! let model = CosineModel::default();
//! let doc_w = model.document_weights(&doc, &dict);
//! let query_w = model.query_weights(&query, &dict);
//! let s = cts_text::score::dot_product(&query_w, &doc_w);
//! assert!(s > 0.0 && s <= 1.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, unused_must_use)]

pub mod analyze;
pub mod dictionary;
pub mod score;
pub mod stem;
pub mod stopwords;
pub mod token;
pub mod vector;
pub mod weighting;

pub use analyze::Analyzer;
pub use dictionary::{Dictionary, TermId, TermStats};
pub use score::{dot_product, dot_product_lookup, query_document_score, Weight};
pub use stem::PorterStemmer;
pub use stopwords::StopWords;
pub use token::{Token, Tokenizer};
pub use vector::{TermVector, WeightedTerm, WeightedVector};
