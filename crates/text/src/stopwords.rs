//! English stop-word removal.
//!
//! The ICDE 2009 experimental setup applies "standard stopword removal" to
//! the WSJ corpus before building its 181,978-term dictionary. This module
//! embeds the classic English stop-word list (articles, prepositions,
//! pronouns, auxiliary verbs and other function words) and exposes a cheap
//! membership test.

use std::collections::HashSet;

/// The embedded default English stop-word list.
///
/// This is the widely used SMART-style list trimmed to the function words
/// that dominate newswire text; it intentionally contains only lower-case
/// ASCII entries because the [`crate::Tokenizer`] lower-cases its output.
pub const DEFAULT_ENGLISH: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "let",
    "ll",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "re",
    "s",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "t",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "ve",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
    "mr",
    "mrs",
    "ms",
    "said",
    "say",
    "says",
    "one",
    "two",
    "new",
    "may",
    "much",
    "many",
    "upon",
    "us",
    "yet",
    "however",
    "since",
    "per",
    "via",
    "among",
    "within",
    "without",
    "according",
    "although",
    "might",
    "must",
    "shall",
    "still",
    "already",
];

/// A set of stop words used to filter tokens before indexing.
#[derive(Debug, Clone)]
pub struct StopWords {
    words: HashSet<Box<str>>,
}

impl StopWords {
    /// Creates the standard English stop-word set.
    pub fn english() -> Self {
        Self::from_words(DEFAULT_ENGLISH.iter().copied())
    }

    /// Creates an empty stop-word set (nothing is filtered).
    pub fn none() -> Self {
        Self {
            words: HashSet::new(),
        }
    }

    /// Builds a stop-word set from an iterator of words. Words are stored
    /// lower-cased so membership tests match tokenizer output.
    pub fn from_words<'a, I>(words: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let words = words
            .into_iter()
            .map(|w| w.to_lowercase().into_boxed_str())
            .collect();
        Self { words }
    }

    /// Returns `true` if `word` (assumed lower-case) is a stop word.
    pub fn contains(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Adds a word to the stop list.
    pub fn insert(&mut self, word: &str) {
        self.words.insert(word.to_lowercase().into_boxed_str());
    }

    /// Number of stop words in the set.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl Default for StopWords {
    fn default() -> Self {
        Self::english()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_contains_common_function_words() {
        let sw = StopWords::english();
        for w in ["the", "of", "and", "to", "in", "is", "was", "that"] {
            assert!(sw.contains(w), "expected stop word: {w}");
        }
    }

    #[test]
    fn english_does_not_contain_content_words() {
        let sw = StopWords::english();
        for w in ["weapons", "tower", "white", "market", "explosives"] {
            assert!(!sw.contains(w), "unexpected stop word: {w}");
        }
    }

    #[test]
    fn none_filters_nothing() {
        let sw = StopWords::none();
        assert!(sw.is_empty());
        assert!(!sw.contains("the"));
    }

    #[test]
    fn custom_list_is_lowercased() {
        let sw = StopWords::from_words(["Foo", "BAR"]);
        assert!(sw.contains("foo"));
        assert!(sw.contains("bar"));
        assert!(!sw.contains("baz"));
    }

    #[test]
    fn insert_extends_the_set() {
        let mut sw = StopWords::none();
        sw.insert("Reuters");
        assert!(sw.contains("reuters"));
        assert_eq!(sw.len(), 1);
    }

    #[test]
    fn default_list_has_no_duplicates() {
        let sw = StopWords::english();
        assert_eq!(sw.len(), DEFAULT_ENGLISH.len());
    }
}
