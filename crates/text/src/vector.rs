//! Sparse term vectors.
//!
//! A [`TermVector`] holds raw term frequencies (`f_{d,t}` / `f_{Q,t}` of the
//! paper's Equation 1); a [`WeightedVector`] holds the derived impact weights
//! (`w_{d,t}` / `w_{Q,t}`) produced by a [`crate::weighting::WeightingModel`].
//! Both are stored as term-id-sorted `Vec`s so that merging, dot products and
//! iteration are cache-friendly and allocation-free in the hot path.

use serde::{Deserialize, Serialize};

use crate::dictionary::TermId;
use crate::score::Weight;

/// A sparse vector of raw term frequencies, sorted by [`TermId`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermVector {
    entries: Vec<(TermId, u32)>,
}

impl TermVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from unsorted `(term, count)` pairs, merging duplicates.
    pub fn from_counts<I>(counts: I) -> Self
    where
        I: IntoIterator<Item = (TermId, u32)>,
    {
        let mut entries: Vec<(TermId, u32)> = counts.into_iter().collect();
        entries.sort_unstable_by_key(|(t, _)| *t);
        // Merge duplicate term ids.
        let mut merged: Vec<(TermId, u32)> = Vec::with_capacity(entries.len());
        for (t, c) in entries {
            match merged.last_mut() {
                Some((last, count)) if *last == t => *count += c,
                _ => merged.push((t, c)),
            }
        }
        Self { entries: merged }
    }

    /// Increments the count of `term` by one.
    pub fn add(&mut self, term: TermId) {
        self.add_count(term, 1);
    }

    /// Increments the count of `term` by `count`.
    pub fn add_count(&mut self, term: TermId, count: u32) {
        match self.entries.binary_search_by_key(&term, |(t, _)| *t) {
            Ok(i) => self.entries[i].1 += count,
            Err(i) => self.entries.insert(i, (term, count)),
        }
    }

    /// Returns the frequency of `term` (0 if absent).
    pub fn frequency(&self, term: TermId) -> u32 {
        self.entries
            .binary_search_by_key(&term, |(t, _)| *t)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no terms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of term occurrences (sum of frequencies).
    pub fn total_occurrences(&self) -> u64 {
        self.entries.iter().map(|(_, c)| u64::from(*c)).sum()
    }

    /// Iterates over `(term, frequency)` pairs in term-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The squared L2 norm of the raw frequency vector, `Σ f_t²`.
    pub fn l2_norm_squared(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, c)| {
                let f = f64::from(*c);
                f * f
            })
            .sum()
    }
}

impl FromIterator<(TermId, u32)> for TermVector {
    fn from_iter<I: IntoIterator<Item = (TermId, u32)>>(iter: I) -> Self {
        Self::from_counts(iter)
    }
}

/// A single `(term, weight)` pair of a [`WeightedVector`].
///
/// The weight is stored as a ready-made [`Weight`] (finite, non-NaN by
/// construction) so the index layer can file impact entries into its ordered
/// structures without re-validating the `f64` on every document arrival and
/// expiration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedTerm {
    /// The term.
    pub term: TermId,
    /// The impact weight (`w_{d,t}` or `w_{Q,t}`).
    pub weight: Weight,
}

/// A sparse vector of impact weights, sorted by [`TermId`].
///
/// This is the "composition list" attached to every streamed document in the
/// paper's model, and also the representation of a weighted query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedVector {
    entries: Vec<WeightedTerm>,
}

impl WeightedVector {
    /// Creates an empty weighted vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a weighted vector from `(term, weight)` pairs, sorting by term.
    /// Zero and negative weights are dropped; duplicate terms keep the sum of
    /// their weights.
    pub fn from_weights<I>(weights: I) -> Self
    where
        I: IntoIterator<Item = (TermId, f64)>,
    {
        let mut entries: Vec<WeightedTerm> = weights
            .into_iter()
            .filter(|(_, w)| *w > 0.0 && w.is_finite())
            .map(|(term, weight)| WeightedTerm {
                term,
                weight: Weight::new(weight),
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.term);
        let mut merged: Vec<WeightedTerm> = Vec::with_capacity(entries.len());
        for e in entries {
            match merged.last_mut() {
                Some(last) if last.term == e.term => last.weight = last.weight + e.weight,
                _ => merged.push(e),
            }
        }
        Self { entries: merged }
    }

    /// Returns the weight of `term` (0.0 if absent).
    pub fn weight(&self, term: TermId) -> f64 {
        self.impact(term).get()
    }

    /// Returns the weight of `term` as a [`Weight`] ([`Weight::ZERO`] if
    /// absent). One binary search over the sorted entries.
    pub fn impact(&self, term: TermId) -> Weight {
        self.entries
            .binary_search_by_key(&term, |e| e.term)
            .map(|i| self.entries[i].weight)
            .unwrap_or(Weight::ZERO)
    }

    /// Whether `term` is present with a positive weight.
    pub fn contains(&self, term: TermId) -> bool {
        self.entries.binary_search_by_key(&term, |e| e.term).is_ok()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in term-id order.
    pub fn iter(&self) -> impl Iterator<Item = WeightedTerm> + '_ {
        self.entries.iter().copied()
    }

    /// Returns the entries as a slice.
    pub fn as_slice(&self) -> &[WeightedTerm] {
        &self.entries
    }

    /// The L2 norm of the weights.
    pub fn l2_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.weight.get() * e.weight.get())
            .sum::<f64>()
            .sqrt()
    }

    /// The largest weight in the vector (0.0 if empty).
    pub fn max_weight(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.weight.get())
            .fold(0.0, f64::max)
    }
}

impl FromIterator<(TermId, f64)> for WeightedVector {
    fn from_iter<I: IntoIterator<Item = (TermId, f64)>>(iter: I) -> Self {
        Self::from_weights(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn term_vector_counts_and_merges() {
        let v = TermVector::from_counts([(t(5), 1), (t(2), 2), (t(5), 3)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.frequency(t(5)), 4);
        assert_eq!(v.frequency(t(2)), 2);
        assert_eq!(v.frequency(t(9)), 0);
        assert_eq!(v.total_occurrences(), 6);
    }

    #[test]
    fn term_vector_add_keeps_sorted_order() {
        let mut v = TermVector::new();
        v.add(t(7));
        v.add(t(3));
        v.add(t(7));
        let ids: Vec<u32> = v.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![3, 7]);
        assert_eq!(v.frequency(t(7)), 2);
    }

    #[test]
    fn term_vector_l2_norm() {
        let v = TermVector::from_counts([(t(0), 3), (t(1), 4)]);
        assert!((v.l2_norm_squared() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_vector_drops_nonpositive_and_nonfinite() {
        let v = WeightedVector::from_weights([
            (t(0), 0.5),
            (t(1), 0.0),
            (t(2), -1.0),
            (t(3), f64::NAN),
            (t(4), f64::INFINITY),
        ]);
        assert_eq!(v.len(), 1);
        assert!(v.contains(t(0)));
        assert!(!v.contains(t(1)));
    }

    #[test]
    fn weighted_vector_merges_duplicates() {
        let v = WeightedVector::from_weights([(t(1), 0.25), (t(1), 0.25)]);
        assert_eq!(v.len(), 1);
        assert!((v.weight(t(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_vector_norm_and_max() {
        let v = WeightedVector::from_weights([(t(0), 0.6), (t(1), 0.8)]);
        assert!((v.l2_norm() - 1.0).abs() < 1e-12);
        assert!((v.max_weight() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_vectors_behave() {
        let v = WeightedVector::new();
        assert!(v.is_empty());
        assert_eq!(v.weight(t(0)), 0.0);
        assert_eq!(v.max_weight(), 0.0);
        assert_eq!(v.l2_norm(), 0.0);
        let tv = TermVector::new();
        assert!(tv.is_empty());
        assert_eq!(tv.total_occurrences(), 0);
    }
}
