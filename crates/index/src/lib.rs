//! Streaming inverted-index substrate for continuous text search.
//!
//! This crate implements the data structures of Figure 1 of the ICDE 2009
//! paper "An Incremental Threshold Method for Continuous Text Search
//! Queries":
//!
//! * [`DocumentStore`] — the first-in-first-out list of *valid* documents
//!   (the sliding window contents), holding each document's full composition
//!   list for random-access scoring.
//! * [`InvertedList`] / [`InvertedIndex`] — one impact-ordered inverted list
//!   per dictionary term, holding `⟨d, w_{d,t}⟩` entries sorted by decreasing
//!   weight, maintained under document arrival and expiration.
//! * [`ThresholdTree`] — the per-list book-keeping structure holding one
//!   `⟨θ_{Q,t}, Q⟩` entry per query that contains the list's term, supporting
//!   the probe "all queries whose local threshold is ≤ w".
//! * [`SlidingWindow`] — count-based and time-based window policies deciding
//!   which documents expire when a new one arrives (or when time advances).
//!
//! The crate knows nothing about queries' result sets or the ITA algorithm
//! itself; that lives in `cts-core`. Everything here is deterministic, purely
//! in-memory and designed for high update rates: the hot structures are
//! sorted arrays (one binary search to locate, contiguous scans to traverse)
//! held in dense term-id-indexed arenas ([`TermArena`]) — see DESIGN.md §6
//! ("Memory layout & cost model"). The production [`InvertedList`] is the
//! **segmented** impact list ([`SegmentedImpactList`]), which bounds the
//! point-update `memmove` by the segment capacity; building with the
//! `flat-impact-lists` cargo feature swaps in the single sorted-`Vec` layout
//! ([`FlatImpactList`]) instead, so the fig3 sweeps can measure either
//! backing through identical engine code. The original `BTreeSet`-backed
//! layouts are retained in [`baseline`] purely for the layout-ablation
//! benchmarks.

#![forbid(unsafe_code)]
#![deny(missing_docs, unused_must_use)]

pub mod arena;
pub mod baseline;
pub mod document;
pub mod index;
pub mod posting;
pub mod segmented;
pub mod store;
pub mod threshold;
pub mod window;

pub use arena::{DenseArena, TermArena};
pub use document::{DocId, Document, QueryId, Timestamp};
pub use index::{IndexStats, InvertedIndex};
pub use posting::{FlatImpactList, Posting};
pub use segmented::SegmentedImpactList;
pub use store::DocumentStore;
pub use threshold::{ThresholdEntry, ThresholdTree};
pub use window::{SlidingWindow, WindowKind};

/// The impact-list layout the engines run on (flat build).
#[cfg(feature = "flat-impact-lists")]
pub use posting::FlatImpactList as InvertedList;
/// The impact-list layout the engines run on. Segmented by default; the
/// `flat-impact-lists` feature restores the PR 2 single sorted-`Vec` layout
/// (both expose the identical full API, so everything downstream is
/// layout-agnostic).
#[cfg(not(feature = "flat-impact-lists"))]
pub use segmented::SegmentedImpactList as InvertedList;
