//! Dense, small-integer-indexed arenas.
//!
//! Interned identifiers ([`TermId`] from `cts_text::Dictionary`, `QueryId`
//! from the engines' monotone counters) are dense small integers, so
//! per-id state — an inverted list, a threshold tree, a query's view — does
//! not need a hash map or an ordered tree: a `Vec<Option<T>>` indexed by the
//! id gives a one-instruction lookup with no hashing, no probing and no
//! pointer chase, at the cost of one `Option` slot per id ever seen. For
//! the paper's 182k-term dictionary that is a few megabytes of slots against
//! hundreds of megabytes of postings — a trade every in-memory filter system
//! (e.g. FAST, arXiv:1709.02529) makes.
//!
//! [`DenseArena`] is the untyped core; [`TermArena`] is its [`TermId`]-keyed
//! face used by the index layer (`cts-core` wraps the same core as its
//! query-state slab). Arenas grow lazily to the highest id seen, count live
//! slots (so `len` is `O(1)`), and free a slot when its value is removed —
//! removal of a term's last posting really does return the term to the
//! "not in the window" state observable via [`TermArena::get`].

use cts_text::TermId;

/// A dense map from `usize` ids to `T`, backed by `Vec<Option<T>>`.
#[derive(Debug, Clone)]
pub struct DenseArena<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> Default for DenseArena<T> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            live: 0,
        }
    }
}

impl<T> DenseArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty arena with slot capacity for `ids` identifiers.
    pub fn with_capacity(ids: usize) -> Self {
        Self {
            slots: Vec::with_capacity(ids),
            live: 0,
        }
    }

    /// The value stored for `id`, if any.
    #[inline]
    pub fn get(&self, id: usize) -> Option<&T> {
        self.slots.get(id).and_then(Option::as_ref)
    }

    /// Mutable access to the value stored for `id`, if any.
    #[inline]
    pub fn get_mut(&mut self, id: usize) -> Option<&mut T> {
        self.slots.get_mut(id).and_then(Option::as_mut)
    }

    /// Whether `id` has a value.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.get(id).is_some()
    }

    /// Grows the slot vector to make `id` addressable.
    fn reserve_slot(&mut self, id: usize) {
        if id >= self.slots.len() {
            self.slots.resize_with(id + 1, || None);
        }
    }

    /// Stores `value` for `id`, growing the arena as needed. Returns the
    /// previous value if the slot was occupied.
    pub fn insert(&mut self, id: usize, value: T) -> Option<T> {
        self.reserve_slot(id);
        let previous = self.slots[id].replace(value);
        if previous.is_none() {
            self.live += 1;
        }
        previous
    }

    /// Mutable access to `id`'s value, inserting `T::default()` into a
    /// vacant slot first (the `HashMap::entry(..).or_default()` equivalent).
    pub fn get_or_default(&mut self, id: usize) -> &mut T
    where
        T: Default,
    {
        self.reserve_slot(id);
        let slot = &mut self.slots[id];
        if slot.is_none() {
            *slot = Some(T::default());
            self.live += 1;
        }
        slot.as_mut().expect("slot was just filled")
    }

    /// Removes and returns `id`'s value, freeing the slot.
    pub fn remove(&mut self, id: usize) -> Option<T> {
        let value = self.slots.get_mut(id).and_then(Option::take);
        if value.is_some() {
            self.live -= 1;
        }
        value
    }

    /// Number of live (occupied) slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over `(id, value)` pairs in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (i, v)))
    }

    /// Iterates over the live values in increasing id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Mutably iterates over the live values in increasing id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

/// A dense map from [`TermId`] to `T`: the [`DenseArena`] keyed by the
/// interned term id.
#[derive(Debug, Clone, Default)]
pub struct TermArena<T> {
    inner: DenseArena<T>,
}

impl<T> TermArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            inner: DenseArena::new(),
        }
    }

    /// Creates an empty arena with slot capacity for `terms` term ids.
    pub fn with_capacity(terms: usize) -> Self {
        Self {
            inner: DenseArena::with_capacity(terms),
        }
    }

    /// The value stored for `term`, if any.
    #[inline]
    pub fn get(&self, term: TermId) -> Option<&T> {
        self.inner.get(term.0 as usize)
    }

    /// Mutable access to the value stored for `term`, if any.
    #[inline]
    pub fn get_mut(&mut self, term: TermId) -> Option<&mut T> {
        self.inner.get_mut(term.0 as usize)
    }

    /// Whether `term` has a value.
    #[inline]
    pub fn contains(&self, term: TermId) -> bool {
        self.inner.contains(term.0 as usize)
    }

    /// Mutable access to `term`'s value, inserting `T::default()` into a
    /// vacant slot first.
    pub fn get_or_default(&mut self, term: TermId) -> &mut T
    where
        T: Default,
    {
        self.inner.get_or_default(term.0 as usize)
    }

    /// Removes and returns `term`'s value, freeing the slot.
    pub fn remove(&mut self, term: TermId) -> Option<T> {
        self.inner.remove(term.0 as usize)
    }

    /// Number of live (occupied) slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates over `(term, value)` pairs in increasing term-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &T)> {
        self.inner.iter().map(|(i, v)| (TermId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn get_or_default_fills_and_reuses_slots() {
        let mut arena: TermArena<Vec<u32>> = TermArena::new();
        assert!(arena.is_empty());
        arena.get_or_default(t(5)).push(1);
        arena.get_or_default(t(5)).push(2);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(t(5)), Some(&vec![1, 2]));
        assert!(arena.get(t(4)).is_none());
        assert!(!arena.contains(t(6)));
    }

    #[test]
    fn remove_frees_the_slot_and_the_slot_is_reusable() {
        let mut arena: TermArena<u64> = TermArena::with_capacity(8);
        *arena.get_or_default(t(3)) = 7;
        assert_eq!(arena.remove(t(3)), Some(7));
        assert_eq!(arena.len(), 0);
        assert!(arena.get(t(3)).is_none());
        assert_eq!(arena.remove(t(3)), None);
        // The freed slot accepts a fresh value.
        *arena.get_or_default(t(3)) = 9;
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(t(3)), Some(&9));
    }

    #[test]
    fn remove_beyond_the_grown_range_is_none() {
        let mut arena: TermArena<u64> = TermArena::new();
        assert_eq!(arena.remove(t(1_000_000)), None);
        assert_eq!(arena.len(), 0);
    }

    #[test]
    fn iter_visits_live_slots_in_term_order() {
        let mut arena: TermArena<&'static str> = TermArena::new();
        *arena.get_or_default(t(9)) = "nine";
        *arena.get_or_default(t(2)) = "two";
        *arena.get_or_default(t(5)) = "five";
        arena.remove(t(5));
        let pairs: Vec<(u32, &str)> = arena.iter().map(|(t, v)| (t.0, *v)).collect();
        assert_eq!(pairs, vec![(2, "two"), (9, "nine")]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut arena: TermArena<u64> = TermArena::new();
        *arena.get_or_default(t(0)) = 1;
        *arena.get_mut(t(0)).unwrap() += 41;
        assert_eq!(arena.get(t(0)), Some(&42));
        assert!(arena.get_mut(t(7)).is_none());
    }

    #[test]
    fn dense_arena_insert_replaces_and_counts() {
        let mut arena: DenseArena<u32> = DenseArena::new();
        assert_eq!(arena.insert(2, 20), None);
        assert_eq!(arena.insert(2, 21), Some(20));
        assert_eq!(arena.insert(0, 1), None);
        assert_eq!(arena.len(), 2);
        let values: Vec<u32> = arena.values().copied().collect();
        assert_eq!(values, vec![1, 21]);
        for v in arena.values_mut() {
            *v += 1;
        }
        assert_eq!(arena.get(0), Some(&2));
        assert_eq!(arena.get(2), Some(&22));
    }
}
