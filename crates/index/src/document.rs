//! Core identifiers and the streamed document representation.
//!
//! Each element of the input stream comprises a document identifier, an
//! arrival timestamp and a *composition list*: one `⟨t, w_{d,t}⟩` pair per
//! term appearing in the document (paper §II). The optional raw text is kept
//! only when the caller wants it for display; the engines never read it.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use cts_text::WeightedVector;

/// Unique identifier of a streamed document.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DocId(pub u64);

impl DocId {
    /// The largest possible document id (used as an upper bound in ordered
    /// range scans).
    pub const MAX: DocId = DocId(u64::MAX);

    /// Returns the id as `u64`.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Unique identifier of a registered continuous query.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The largest possible query id (used as an upper bound in ordered
    /// range scans).
    pub const MAX: QueryId = QueryId(u32::MAX);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A point on the stream's logical clock, in microseconds.
///
/// The monitoring model only needs a monotone clock shared by document
/// arrivals and time-based windows; microsecond resolution comfortably covers
/// the paper's 200 documents/second arrival rates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (stream start).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Builds a timestamp from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000)
    }

    /// Builds a timestamp from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Microseconds since stream start.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since stream start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The timestamp `duration` after this one.
    pub fn advance(self, duration: Duration) -> Timestamp {
        Timestamp(self.0 + duration.as_micros() as u64)
    }

    /// The duration elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A document as it travels through the monitoring system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Unique identifier.
    pub id: DocId,
    /// Arrival time on the stream clock.
    pub arrival: Timestamp,
    /// The composition list: `⟨t, w_{d,t}⟩` for every term in the document.
    pub composition: WeightedVector,
    /// Optional raw text (kept for display in examples; never used by the
    /// engines).
    pub text: Option<String>,
}

impl Document {
    /// Creates a document from its id, arrival time and composition list.
    pub fn new(id: DocId, arrival: Timestamp, composition: WeightedVector) -> Self {
        Self {
            id,
            arrival,
            composition,
            text: None,
        }
    }

    /// Attaches the raw text to the document (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = Some(text.into());
        self
    }

    /// Number of distinct terms in the composition list.
    pub fn term_count(&self) -> usize {
        self.composition.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_text::TermId;

    #[test]
    fn doc_id_display_and_ordering() {
        assert_eq!(DocId(7).to_string(), "d7");
        assert!(DocId(3) < DocId(10));
        assert_eq!(DocId::MAX.get(), u64::MAX);
    }

    #[test]
    fn query_id_display_and_index() {
        assert_eq!(QueryId(1).to_string(), "Q1");
        assert_eq!(QueryId(42).index(), 42);
    }

    #[test]
    fn timestamp_conversions() {
        assert_eq!(Timestamp::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Timestamp::from_millis(5).as_micros(), 5_000);
        assert!((Timestamp::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timestamp_advance_and_since() {
        let t0 = Timestamp::from_secs(10);
        let t1 = t0.advance(Duration::from_millis(1500));
        assert_eq!(t1.as_micros(), 11_500_000);
        assert_eq!(t1.since(t0), Duration::from_millis(1500));
        assert_eq!(t0.since(t1), Duration::ZERO);
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert_eq!(Timestamp::ZERO, Timestamp::from_micros(0));
    }

    #[test]
    fn document_construction() {
        let comp = WeightedVector::from_weights([(TermId(1), 0.5), (TermId(2), 0.5)]);
        let d = Document::new(DocId(9), Timestamp::from_secs(1), comp).with_text("white tower");
        assert_eq!(d.id, DocId(9));
        assert_eq!(d.term_count(), 2);
        assert_eq!(d.text.as_deref(), Some("white tower"));
    }
}
