//! Retained B-tree baselines and the layout-ablation trait faces.
//!
//! PR 1 backed the impact lists and [`crate::ThresholdTree`] with
//! `BTreeSet`s; PR 2 rebuilt them as sorted `Vec`s so the hot probes and
//! descents are contiguous scans; PR 3 segmented the impact lists so point
//! updates stop paying a window-length `memmove`. The original node-based
//! implementations are preserved here — *only* as the comparison arm of the
//! `ablation_threshold_tree` criterion benchmark (and any future layout
//! experiment). Production code must use the array-backed structures.
//!
//! All layouts implement the two small traits below, so a benchmark (or a
//! test) can drive any of them through identical code paths. The impact-list
//! ablation now has three arms: flat ([`crate::FlatImpactList`]), B-tree
//! ([`BTreeInvertedList`]) and segmented ([`crate::SegmentedImpactList`]).

use std::collections::BTreeSet;
use std::ops::Bound;

use cts_text::Weight;

use crate::document::{DocId, QueryId};
use crate::posting::Posting;
use crate::threshold::ThresholdEntry;

/// The impact-list operations exercised by the layout ablations: point
/// updates plus the bounded descent that dominates ITA's refill step.
pub trait ImpactListLayout: Default {
    /// Inserts the posting for `doc`; `false` if it was already present.
    fn insert(&mut self, doc: DocId, weight: Weight) -> bool;
    /// Removes the posting for `doc`; `true` if it was present.
    fn remove(&mut self, doc: DocId, weight: Weight) -> bool;
    /// Number of postings.
    fn len(&self) -> usize;
    /// Whether the list has no postings.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Visits up to `limit` postings with weight ≤ `weight` in list order and
    /// returns a fold of their document ids (an optimisation barrier for
    /// benchmarks — the fold forces the traversal).
    fn descend_at_or_below(&self, weight: Weight, limit: usize) -> u64;
}

/// The threshold-tree operations exercised by the layout ablations: the
/// arrival-time probe and the threshold move.
pub trait ThresholdLayout: Default {
    /// Inserts an entry; `false` if that exact entry was present.
    fn insert(&mut self, query: QueryId, threshold: Weight) -> bool;
    /// Moves `query`'s entry from `old` to `new`.
    fn update(&mut self, query: QueryId, old: Weight, new: Weight);
    /// Number of entries.
    fn len(&self) -> usize;
    /// Whether the tree has no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Visits every entry with `θ ≤ weight` (the `affected_by` probe) and
    /// returns a fold of their query ids — the fold forces a real traversal
    /// in both layouts, mirroring the engine pushing each hit into its
    /// scratch buffer.
    fn probe(&self, weight: Weight) -> u64;
}

impl ImpactListLayout for crate::FlatImpactList {
    fn insert(&mut self, doc: DocId, weight: Weight) -> bool {
        crate::FlatImpactList::insert(self, doc, weight)
    }
    fn remove(&mut self, doc: DocId, weight: Weight) -> bool {
        crate::FlatImpactList::remove(self, doc, weight)
    }
    fn len(&self) -> usize {
        crate::FlatImpactList::len(self)
    }
    fn descend_at_or_below(&self, weight: Weight, limit: usize) -> u64 {
        self.iter_at_or_below(weight)
            .take(limit)
            .map(|p| p.doc.0)
            .sum()
    }
}

impl ImpactListLayout for crate::SegmentedImpactList {
    fn insert(&mut self, doc: DocId, weight: Weight) -> bool {
        crate::SegmentedImpactList::insert(self, doc, weight)
    }
    fn remove(&mut self, doc: DocId, weight: Weight) -> bool {
        crate::SegmentedImpactList::remove(self, doc, weight)
    }
    fn len(&self) -> usize {
        crate::SegmentedImpactList::len(self)
    }
    fn descend_at_or_below(&self, weight: Weight, limit: usize) -> u64 {
        self.iter_at_or_below(weight)
            .take(limit)
            .map(|p| p.doc.0)
            .sum()
    }
}

impl ThresholdLayout for crate::ThresholdTree {
    fn insert(&mut self, query: QueryId, threshold: Weight) -> bool {
        crate::ThresholdTree::insert(self, query, threshold)
    }
    fn update(&mut self, query: QueryId, old: Weight, new: Weight) {
        crate::ThresholdTree::update(self, query, old, new)
    }
    fn len(&self) -> usize {
        crate::ThresholdTree::len(self)
    }
    fn probe(&self, weight: Weight) -> u64 {
        self.affected_by(weight).map(|e| u64::from(e.query.0)).sum()
    }
}

/// Key wrapper giving postings the list order: decreasing weight, then
/// increasing document id (the PR 1 representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DescendingKey(Posting);

impl Ord for DescendingKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .weight
            .cmp(&self.0.weight)
            .then_with(|| self.0.doc.cmp(&other.0.doc))
    }
}

impl PartialOrd for DescendingKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The PR 1 `BTreeSet`-backed impact-ordered list, kept for ablations.
#[derive(Debug, Clone, Default)]
pub struct BTreeInvertedList {
    entries: BTreeSet<DescendingKey>,
}

impl ImpactListLayout for BTreeInvertedList {
    fn insert(&mut self, doc: DocId, weight: Weight) -> bool {
        self.entries
            .insert(DescendingKey(Posting::new(doc, weight)))
    }

    fn remove(&mut self, doc: DocId, weight: Weight) -> bool {
        self.entries
            .remove(&DescendingKey(Posting::new(doc, weight)))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn descend_at_or_below(&self, weight: Weight, limit: usize) -> u64 {
        let bound = DescendingKey(Posting::new(DocId(0), weight));
        self.entries
            .range((Bound::Included(bound), Bound::Unbounded))
            .take(limit)
            .map(|k| k.0.doc.0)
            .sum()
    }
}

/// The PR 1 `BTreeSet`-backed threshold tree, kept for ablations.
#[derive(Debug, Clone, Default)]
pub struct BTreeThresholdTree {
    entries: BTreeSet<ThresholdEntry>,
}

impl ThresholdLayout for BTreeThresholdTree {
    fn insert(&mut self, query: QueryId, threshold: Weight) -> bool {
        self.entries.insert(ThresholdEntry { threshold, query })
    }

    fn update(&mut self, query: QueryId, old: Weight, new: Weight) {
        let removed = self.entries.remove(&ThresholdEntry {
            threshold: old,
            query,
        });
        debug_assert!(removed, "threshold update for absent entry {query}");
        self.entries.insert(ThresholdEntry {
            threshold: new,
            query,
        });
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn probe(&self, weight: Weight) -> u64 {
        let bound = ThresholdEntry {
            threshold: weight,
            query: QueryId::MAX,
        };
        self.entries
            .range((Bound::Unbounded, Bound::Included(bound)))
            .map(|e| u64::from(e.query.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatImpactList, SegmentedImpactList, ThresholdTree};

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    /// Drives one flat and one B-tree instance through the same operation
    /// sequence and asserts identical observable behaviour — the property
    /// that makes the ablation benchmark a fair comparison.
    fn impact_layouts_agree<A: ImpactListLayout, B: ImpactListLayout>() {
        let (mut a, mut b) = (A::default(), B::default());
        for i in 0..200u64 {
            let weight = w(0.001 + (i % 17) as f64 * 0.013);
            assert_eq!(a.insert(DocId(i), weight), b.insert(DocId(i), weight));
        }
        for i in (0..200u64).step_by(3) {
            let weight = w(0.001 + (i % 17) as f64 * 0.013);
            assert_eq!(a.remove(DocId(i), weight), b.remove(DocId(i), weight));
        }
        assert_eq!(a.len(), b.len());
        for probe in [0.0, 0.05, 0.1, 0.2, 1.0] {
            for limit in [1, 8, usize::MAX] {
                assert_eq!(
                    a.descend_at_or_below(w(probe), limit),
                    b.descend_at_or_below(w(probe), limit),
                    "probe {probe} limit {limit}"
                );
            }
        }
    }

    fn threshold_layouts_agree<A: ThresholdLayout, B: ThresholdLayout>() {
        let (mut a, mut b) = (A::default(), B::default());
        for i in 0..300u32 {
            let theta = w((i % 89) as f64 * 0.01);
            assert_eq!(a.insert(QueryId(i), theta), b.insert(QueryId(i), theta));
        }
        for i in (0..300u32).step_by(7) {
            let old = w((i % 89) as f64 * 0.01);
            let new = w(0.93);
            a.update(QueryId(i), old, new);
            b.update(QueryId(i), old, new);
        }
        assert_eq!(a.len(), b.len());
        for probe in [0.0, 0.3, 0.5, 0.92, 0.93, 2.0] {
            assert_eq!(a.probe(w(probe)), b.probe(w(probe)), "probe {probe}");
        }
    }

    #[test]
    fn flat_and_btree_impact_lists_agree() {
        impact_layouts_agree::<FlatImpactList, BTreeInvertedList>();
    }

    #[test]
    fn segmented_and_btree_impact_lists_agree() {
        impact_layouts_agree::<SegmentedImpactList, BTreeInvertedList>();
    }

    #[test]
    fn segmented_and_flat_impact_lists_agree() {
        impact_layouts_agree::<SegmentedImpactList, FlatImpactList>();
    }

    #[test]
    fn flat_and_btree_threshold_trees_agree() {
        threshold_layouts_agree::<ThresholdTree, BTreeThresholdTree>();
    }
}
