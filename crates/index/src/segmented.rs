//! Segmented impact lists: bounded-`memmove` point updates, contiguous
//! descents.
//!
//! `BENCH_fig3a.json` showed that at 10k+ document windows, ITA's per-event
//! cost is dominated by the `Vec` `memmove` paid on every arrival/expiration
//! by the few head terms whose flat impact lists reach window length — not by
//! any of the probes or descents the algorithm actually reasons about. The
//! same observation drives FAST's split of hot frequent-term structures from
//! cold ones for continuous filter queries (Mahmood et al.).
//!
//! [`SegmentedImpactList`] keeps the postings in a small ordered directory of
//! fixed-capacity **segments**, each a sorted `Vec<Posting>` in the global
//! list order (decreasing weight, ties by increasing document id):
//!
//! * A point insert/remove binary-searches the directory (by each segment's
//!   last entry), then the segment, and shifts at most `segment capacity`
//!   postings — ~2 KiB at the default capacity of 128 — instead of the whole
//!   window-length list (~160 KiB for a 10k-entry head term).
//! * A segment that overflows its capacity splits in half; a segment that
//!   drains below a quarter of capacity is merged into a neighbour (and the
//!   merge re-split in half if it would itself overflow), so segment count
//!   stays `Θ(len / capacity)` and every segment except a lone survivor
//!   stays at least a quarter full.
//! * Every read path — initial threshold descent, refill resume
//!   (`iter_at_or_below`), roll-up range probe (`iter_weight_range`,
//!   `lowest_above`) and the sequential cursor (`next_after`) — is still a
//!   directory locate followed by **contiguous scans within segments**,
//!   which is the access pattern the paper's §III cost model charges for:
//!   "read a prefix of `L_t`" remains a linear read of adjacent memory, now
//!   with one extra pointer hop per `capacity` entries visited.
//!
//! The flat single-`Vec` layout is retained as
//! [`crate::posting::FlatImpactList`] (differential-test reference, ablation
//! arm, and optional production layout behind the `flat-impact-lists`
//! feature); the two are driven through randomized interleaved operation
//! sequences by `tests/differential_impact_list.rs` and must agree exactly,
//! including on equal-weight tie runs that straddle segment boundaries.

use cts_text::Weight;

use crate::document::DocId;
use crate::posting::Posting;

/// Default maximum number of postings per segment.
///
/// 128 postings × 16 bytes = 2 KiB per segment: a handful of cache lines per
/// shift, small enough that the worst-case point update is cheap, large
/// enough that descents stay effectively contiguous and the directory of a
/// 10k-entry head-term list holds only ~100 entries.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 128;

/// A position inside the segment directory: entry `off` of segment `seg`.
/// `seg == segments.len()` (with `off == 0`) is the end-of-list cursor.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    seg: usize,
    off: usize,
}

/// An impact-ordered inverted list for a single term, backed by an ordered
/// directory of fixed-capacity sorted segments (decreasing weight, ties by
/// increasing document id). See the module docs for the layout rationale.
#[derive(Debug, Clone)]
pub struct SegmentedImpactList {
    /// Non-empty segments in global list order: every entry of `segments[i]`
    /// ranks strictly before every entry of `segments[i + 1]`.
    segments: Vec<Vec<Posting>>,
    /// Total postings across all segments.
    len: usize,
    /// Maximum postings per segment (≥ 2).
    capacity: usize,
}

impl Default for SegmentedImpactList {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentedImpactList {
    /// Creates an empty list with the default segment capacity.
    pub fn new() -> Self {
        Self::with_segment_capacity(DEFAULT_SEGMENT_CAPACITY)
    }

    /// Creates an empty list whose segments hold at most `capacity` postings.
    /// Small capacities (≥ 2) are valid and force frequent splits/merges;
    /// the differential test uses them to stress boundary handling.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (a 1-entry segment cannot be split).
    pub fn with_segment_capacity(capacity: usize) -> Self {
        assert!(capacity >= 2, "segment capacity must be at least 2");
        Self {
            segments: Vec::new(),
            len: 0,
            capacity,
        }
    }

    /// The configured maximum postings per segment.
    pub fn segment_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of segments currently in the directory. Exposed for tests and
    /// the layout ablation; `Θ(len / capacity)` by the merge policy.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The directory locate for point updates: index of the first segment
    /// whose **last** entry ranks at or after `p` — the only segment that may
    /// contain `p` or its insertion position (may be `segments.len()` when
    /// `p` ranks after everything).
    #[inline]
    fn segment_for(&self, p: &Posting) -> usize {
        self.segments.partition_point(|seg| {
            // cts-lint: allow(panic-in-hot-path, structural invariant: the directory never holds an empty segment, enforced by check_invariants)
            seg.last().expect("segments are non-empty").rank(p) == std::cmp::Ordering::Less
        })
    }

    /// Cursor at the first entry whose weight is **strictly below** `weight`.
    #[inline]
    fn first_below(&self, weight: Weight) -> Cursor {
        let seg = self
            .segments
            // cts-lint: allow(panic-in-hot-path, structural invariant: the directory never holds an empty segment, enforced by check_invariants)
            .partition_point(|s| s.last().expect("segments are non-empty").weight >= weight);
        let off = match self.segments.get(seg) {
            // The segment's last entry is < weight, so `off` is in bounds.
            Some(entries) => entries.partition_point(|p| p.weight >= weight),
            None => 0,
        };
        Cursor { seg, off }
    }

    /// Cursor at the first entry whose weight is **at or below** `weight`.
    #[inline]
    fn first_at_or_below(&self, weight: Weight) -> Cursor {
        let seg = self
            .segments
            // cts-lint: allow(panic-in-hot-path, structural invariant: the directory never holds an empty segment, enforced by check_invariants)
            .partition_point(|s| s.last().expect("segments are non-empty").weight > weight);
        let off = match self.segments.get(seg) {
            Some(entries) => entries.partition_point(|p| p.weight > weight),
            None => 0,
        };
        Cursor { seg, off }
    }

    /// Iterates from `cursor` (inclusive) to the end of the list, crossing
    /// segment boundaries; each segment is scanned contiguously.
    fn iter_from(&self, cursor: Cursor) -> impl Iterator<Item = Posting> + '_ {
        self.segments[cursor.seg..]
            .iter()
            .enumerate()
            .flat_map(move |(i, seg)| {
                let start = if i == 0 { cursor.off } else { 0 };
                seg[start..].iter().copied()
            })
    }

    /// Splits segment `at` into two halves. Called when it exceeds capacity.
    fn split(&mut self, at: usize) {
        let mid = self.segments[at].len() / 2;
        let upper = self.segments[at].split_off(mid);
        self.segments.insert(at + 1, upper);
    }

    /// Restores the segment-size invariants after a removal from segment
    /// `at`: drops it if empty, otherwise merges it into an adjacent
    /// neighbour once it falls below a quarter of capacity (re-splitting the
    /// merge in half if the combination would overflow).
    fn rebalance(&mut self, at: usize) {
        if self.segments[at].is_empty() {
            self.segments.remove(at);
            return;
        }
        if self.segments.len() == 1 || self.segments[at].len() >= self.capacity.div_ceil(4) {
            return;
        }
        // Merge with the right neighbour when one exists, else the left.
        let left = if at + 1 < self.segments.len() {
            at
        } else {
            at - 1
        };
        let tail = self.segments.remove(left + 1);
        self.segments[left].extend(tail);
        if self.segments[left].len() > self.capacity {
            self.split(left);
        }
    }

    /// Inserts the posting for `doc` with weight `weight`.
    /// Returns `false` if an identical posting was already present.
    pub fn insert(&mut self, doc: DocId, weight: Weight) -> bool {
        let posting = Posting::new(doc, weight);
        if self.segments.is_empty() {
            self.segments.push(vec![posting]);
            self.len = 1;
            return true;
        }
        // A posting ranking after everything is appended to the last segment.
        let seg = self.segment_for(&posting).min(self.segments.len() - 1);
        match self.segments[seg].binary_search_by(|p| p.rank(&posting)) {
            Ok(_) => false,
            Err(at) => {
                self.segments[seg].insert(at, posting);
                self.len += 1;
                if self.segments[seg].len() > self.capacity {
                    self.split(seg);
                }
                true
            }
        }
    }

    /// Removes the posting for `doc` with weight `weight`.
    /// Returns `true` if the posting was present.
    pub fn remove(&mut self, doc: DocId, weight: Weight) -> bool {
        let posting = Posting::new(doc, weight);
        let seg = self.segment_for(&posting);
        if seg == self.segments.len() {
            return false;
        }
        match self.segments[seg].binary_search_by(|p| p.rank(&posting)) {
            Ok(at) => {
                self.segments[seg].remove(at);
                self.len -= 1;
                self.rebalance(seg);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The posting with the highest weight, if any.
    pub fn first(&self) -> Option<Posting> {
        self.segments.first().and_then(|s| s.first()).copied()
    }

    /// Iterates over all postings in decreasing-weight order.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + '_ {
        self.segments.iter().flat_map(|s| s.iter().copied())
    }

    /// Iterates over postings **strictly below** `weight` (i.e. `w_{d,t} <
    /// weight`), in decreasing-weight order. This is the "resume the search
    /// below the local threshold" access path of ITA's refill step.
    pub fn iter_below(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        self.iter_from(self.first_below(weight))
    }

    /// Iterates over postings with weight **at or above** `weight`
    /// (`w_{d,t} ≥ weight`), in decreasing-weight order. Used by invariant
    /// checks ("every document above a local threshold is in R").
    pub fn iter_at_or_above(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        let end = self.first_below(weight);
        self.segments[..end.seg]
            .iter()
            .flat_map(|s| s.iter().copied())
            .chain(
                self.segments
                    .get(end.seg)
                    .into_iter()
                    .flat_map(move |s| s[..end.off].iter().copied()),
            )
    }

    /// Iterates over postings with weight **at or below** `weight`
    /// (`w_{d,t} ≤ weight`), in decreasing-weight order. ITA's refill resumes
    /// its descent here: entries tied with the recorded local threshold may or
    /// may not have been visited before, so the caller skips documents that
    /// are already in its result set.
    pub fn iter_at_or_below(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        self.iter_from(self.first_at_or_below(weight))
    }

    /// Iterates over postings whose weight lies in `[lower, upper)`, in
    /// decreasing-weight order. Used by ITA's roll-up to find the documents
    /// whose only support was the just-raised threshold segment. Inverted or
    /// empty bounds yield an empty iterator.
    pub fn iter_weight_range(
        &self,
        lower_inclusive: Weight,
        upper_exclusive: Weight,
    ) -> impl Iterator<Item = Posting> + '_ {
        // Weights are non-increasing along the list, so the half-open band is
        // a take-while from the first entry strictly below `upper`.
        self.iter_from(self.first_below(upper_exclusive))
            .take_while(move |p| p.weight >= lower_inclusive)
    }

    /// The posting immediately following `previous` in descending order
    /// (strictly after it), if any. Passing `None` returns the first posting.
    /// This is the sequential-descent cursor used by the threshold algorithm;
    /// `previous` need not still be in the list, and the successor may live
    /// in a later segment than `previous` did (e.g. after a split of its tie
    /// run).
    pub fn next_after(&self, previous: Option<Posting>) -> Option<Posting> {
        let Some(p) = previous else {
            return self.first();
        };
        let seg = self.segments.partition_point(|s| {
            // cts-lint: allow(panic-in-hot-path, structural invariant: the directory never holds an empty segment, enforced by check_invariants)
            s.last().expect("segments are non-empty").rank(&p) != std::cmp::Ordering::Greater
        });
        let entries = self.segments.get(seg)?;
        // The segment's last entry ranks after `p`, so the partition point is
        // a real entry.
        let off = entries.partition_point(|e| e.rank(&p) != std::cmp::Ordering::Greater);
        entries.get(off).copied()
    }

    /// The posting immediately **above** the given weight position: the
    /// lowest-ranked posting whose weight is strictly greater than `weight`.
    /// This is the `c_t` used when rolling local thresholds *up* (the paper's
    /// "the ct values are defined by the preceding entry in Lt").
    pub fn lowest_above(&self, weight: Weight) -> Option<Posting> {
        let cursor = self.first_at_or_below(weight);
        if cursor.off > 0 {
            Some(self.segments[cursor.seg][cursor.off - 1])
        } else if cursor.seg > 0 {
            self.segments[cursor.seg - 1].last().copied()
        } else {
            None
        }
    }

    /// Returns the weight stored for `doc`, if the document appears in this
    /// list. Linear scan; used only by tests and invariant checks.
    pub fn weight_of(&self, doc: DocId) -> Option<Weight> {
        self.iter().find(|p| p.doc == doc).map(|p| p.weight)
    }

    /// Checks every structural invariant of the layout, panicking with a
    /// description on violation: a non-empty directory of segments in strict
    /// rank order (across boundaries too), every segment within capacity and
    /// — unless it is the lone survivor — at least a quarter full, and the
    /// cached length agreeing with the contents. Used by tests (notably the
    /// randomized differential test) after every mutation and by the
    /// engine-level `check_invariants` audits (`invariant-checks` feature);
    /// not called on hot paths.
    pub fn check_invariants(&self) {
        let mut total = 0;
        for (i, seg) in self.segments.iter().enumerate() {
            assert!(!seg.is_empty(), "segment {i} is empty");
            assert!(
                seg.len() <= self.capacity,
                "segment {i} holds {} > capacity {}",
                seg.len(),
                self.capacity
            );
            // The merge policy's guarantee: everything but a lone survivor
            // stays at least a quarter full, so segment count is
            // Θ(len / capacity) and never degrades toward one-entry segments.
            if self.segments.len() > 1 {
                assert!(
                    seg.len() >= self.capacity.div_ceil(4),
                    "segment {i} holds {} < quarter of capacity {}",
                    seg.len(),
                    self.capacity
                );
            }
            total += seg.len();
            for pair in seg.windows(2) {
                assert!(
                    pair[0].rank(&pair[1]) == std::cmp::Ordering::Less,
                    "segment {i} is not strictly ordered"
                );
            }
            if let Some(next) = self.segments.get(i + 1) {
                assert!(
                    // cts-lint: allow(panic-in-hot-path, audit-only path; both segments were just asserted non-empty)
                    seg.last().unwrap().rank(next.first().unwrap()) == std::cmp::Ordering::Less,
                    "segments {i} and {} are not ordered across the boundary",
                    i + 1
                );
            }
        }
        assert_eq!(total, self.len, "cached len disagrees with contents");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    /// A list with capacity-4 segments, so even small fixtures cross
    /// boundaries.
    fn list(entries: &[(u64, f64)]) -> SegmentedImpactList {
        let mut l = SegmentedImpactList::with_segment_capacity(4);
        for &(d, x) in entries {
            assert!(l.insert(DocId(d), w(x)));
            l.check_invariants();
        }
        l
    }

    fn docs_of(it: impl Iterator<Item = Posting>) -> Vec<u64> {
        it.map(|p| p.doc.0).collect()
    }

    #[test]
    fn iteration_is_descending_by_weight_across_segments() {
        let l = list(&[
            (7, 0.10),
            (1, 0.08),
            (5, 0.07),
            (8, 0.05),
            (9, 0.16),
            (2, 0.12),
            (4, 0.02),
            (6, 0.11),
            (3, 0.01),
        ]);
        assert!(l.num_segments() > 1, "fixture must straddle segments");
        assert_eq!(docs_of(l.iter()), vec![9, 2, 6, 7, 1, 5, 8, 4, 3]);
        assert_eq!(l.len(), 9);
    }

    #[test]
    fn splits_keep_segments_within_capacity() {
        let mut l = SegmentedImpactList::with_segment_capacity(4);
        for i in 0..64u64 {
            assert!(l.insert(DocId(i), w(0.001 + (i % 13) as f64 * 0.01)));
            l.check_invariants();
        }
        assert_eq!(l.len(), 64);
        // Θ(len / capacity) directory: at least len/capacity segments.
        assert!(l.num_segments() >= 16, "{} segments", l.num_segments());
    }

    #[test]
    fn removals_merge_sparse_segments() {
        let mut l = SegmentedImpactList::with_segment_capacity(4);
        for i in 0..64u64 {
            l.insert(DocId(i), w(0.001 + i as f64 * 0.002));
        }
        for i in 0..63u64 {
            assert!(l.remove(DocId(i), w(0.001 + i as f64 * 0.002)));
            l.check_invariants();
        }
        assert_eq!(l.len(), 1);
        assert_eq!(l.num_segments(), 1);
        assert!(l.remove(DocId(63), w(0.001 + 63.0 * 0.002)));
        assert!(l.is_empty());
        assert_eq!(l.num_segments(), 0);
        assert!(l.first().is_none());
    }

    #[test]
    fn duplicate_insert_and_absent_remove_are_rejected() {
        let mut l = list(&[(1, 0.5), (2, 0.4), (3, 0.3), (4, 0.2), (5, 0.1)]);
        assert!(!l.insert(DocId(3), w(0.3)));
        assert!(!l.remove(DocId(3), w(0.35)));
        assert!(!l.remove(DocId(99), w(0.3)));
        // Ranking past the end of the directory must not panic or remove.
        assert!(!l.remove(DocId(u64::MAX), w(0.0)));
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn tie_run_straddling_a_split_keeps_descent_and_probes_exact() {
        // Nine equal-weight postings over capacity-4 segments: the tie run is
        // guaranteed to straddle at least one segment boundary.
        let mut l = SegmentedImpactList::with_segment_capacity(4);
        for d in [5u64, 1, 9, 3, 7, 2, 8, 4, 6] {
            assert!(l.insert(DocId(d), w(0.5)));
        }
        assert!(l.num_segments() > 1);
        l.check_invariants();
        // The run iterates in document-id order regardless of boundaries.
        assert_eq!(docs_of(l.iter()), (1..=9).collect::<Vec<_>>());
        // All boundary semantics treat the run as one group.
        assert_eq!(l.iter_at_or_above(w(0.5)).count(), 9);
        assert_eq!(l.iter_at_or_below(w(0.5)).count(), 9);
        assert_eq!(l.iter_below(w(0.5)).count(), 0);
        assert_eq!(l.iter_weight_range(w(0.5), w(0.5)).count(), 0);
        assert_eq!(l.iter_weight_range(w(0.5), w(0.6)).count(), 9);
        assert!(l.lowest_above(w(0.5)).is_none());
        assert_eq!(l.lowest_above(w(0.4)).unwrap().doc, DocId(9));
        // The sequential cursor walks the whole run across boundaries.
        let mut cursor = None;
        let mut seen = Vec::new();
        while let Some(p) = l.next_after(cursor) {
            seen.push(p.doc.0);
            cursor = Some(p);
        }
        assert_eq!(seen, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn next_after_a_removed_posting_resumes_at_its_successor() {
        let mut l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (2, 0.06), (9, 0.04)]);
        let p1 = Posting::new(DocId(1), w(0.08));
        l.remove(DocId(1), w(0.08));
        assert_eq!(l.next_after(Some(p1)).unwrap().doc, DocId(5));
        // A cursor ranking after everything yields None.
        assert!(l
            .next_after(Some(Posting::new(DocId(u64::MAX), w(0.0))))
            .is_none());
    }

    #[test]
    fn range_and_boundary_queries_cross_segments() {
        let l = list(&[
            (9, 0.16),
            (7, 0.10),
            (1, 0.08),
            (5, 0.07),
            (8, 0.05),
            (2, 0.03),
            (4, 0.02),
        ]);
        assert!(l.num_segments() > 1);
        assert_eq!(
            docs_of(l.iter_weight_range(w(0.03), w(0.10))),
            vec![1, 5, 8, 2]
        );
        assert_eq!(l.iter_weight_range(w(0.16), w(0.08)).count(), 0);
        assert_eq!(docs_of(l.iter_below(w(0.07))), vec![8, 2, 4]);
        assert_eq!(docs_of(l.iter_at_or_above(w(0.07))), vec![9, 7, 1, 5]);
        assert_eq!(l.lowest_above(w(0.07)).unwrap().doc, DocId(1));
        assert_eq!(l.lowest_above(w(0.10)).unwrap().doc, DocId(9));
        assert!(l.lowest_above(w(0.16)).is_none());
        assert_eq!(l.weight_of(DocId(8)), Some(w(0.05)));
        assert!(l.weight_of(DocId(42)).is_none());
    }

    #[test]
    fn empty_list_behaviour() {
        let l = SegmentedImpactList::new();
        assert!(l.is_empty());
        assert_eq!(l.segment_capacity(), DEFAULT_SEGMENT_CAPACITY);
        assert!(l.first().is_none());
        assert!(l.next_after(None).is_none());
        assert_eq!(l.iter_below(w(1.0)).count(), 0);
        assert_eq!(l.iter_at_or_above(w(0.0)).count(), 0);
        assert!(l.lowest_above(w(0.0)).is_none());
        l.check_invariants();
    }

    #[test]
    #[should_panic(expected = "segment capacity must be at least 2")]
    fn degenerate_capacity_is_rejected() {
        let _ = SegmentedImpactList::with_segment_capacity(1);
    }

    #[test]
    fn heavy_churn_preserves_invariants_and_order() {
        // Interleaved inserts and removes with many ties, small capacity.
        let mut l = SegmentedImpactList::with_segment_capacity(8);
        let weight_of = |i: u64| w(0.01 + (i % 5) as f64 * 0.07);
        for i in 0..500u64 {
            assert!(l.insert(DocId(i), weight_of(i)));
            if i >= 100 {
                assert!(l.remove(DocId(i - 100), weight_of(i - 100)));
            }
            l.check_invariants();
        }
        assert_eq!(l.len(), 100);
        let all: Vec<Posting> = l.iter().collect();
        assert!(all
            .windows(2)
            .all(|p| p[0].rank(&p[1]) == std::cmp::Ordering::Less));
    }
}
