//! The valid-document store.
//!
//! Documents in the sliding window ("valid" documents, the set `D` of the
//! paper) are kept in arrival order in a FIFO list, and their full
//! composition lists are reachable by [`DocId`] for random-access scoring
//! (the threshold algorithm computes `S(d|Q)` the moment a document is first
//! encountered in *any* inverted list) and for expiration handling (the
//! expiring document's composition list drives the removal of its impact
//! entries).
//!
//! Documents are held behind [`Arc`]: the sharded engine fans every stream
//! event out to N worker shards, each owning its own store, and the shared
//! ownership keeps the window's composition lists in memory **once** no
//! matter how many shards mirror it ([`DocumentStore::push_shared`] is a
//! refcount bump, not a deep copy). Single-engine callers are unaffected:
//! [`DocumentStore::push`] still accepts an owned [`Document`] and the
//! accessors still hand out plain `&Document`.

// cts-lint: allow(nondet-iteration, the id map is point-lookup only; all traversal follows the FIFO order)
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::document::{DocId, Document, Timestamp};

/// FIFO store of the currently valid documents.
#[derive(Debug, Clone, Default)]
pub struct DocumentStore {
    fifo: VecDeque<DocId>,
    by_id: HashMap<DocId, Arc<Document>>, // cts-lint: allow(nondet-iteration, point lookups only; iteration follows the FIFO)
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with capacity hints for `n` documents.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            fifo: VecDeque::with_capacity(n),
            by_id: HashMap::with_capacity(n), // cts-lint: allow(nondet-iteration, point lookups only; iteration follows the FIFO)
        }
    }

    /// Appends a newly arrived document at the tail of the FIFO.
    ///
    /// # Panics
    ///
    /// Panics if a document with the same id is already stored — document ids
    /// are unique by construction in the streaming model.
    pub fn push(&mut self, doc: Document) {
        self.push_shared(Arc::new(doc));
    }

    /// Appends an already-shared document at the tail of the FIFO — a
    /// refcount bump, so N shards mirroring the same window hold one copy of
    /// each composition list between them.
    ///
    /// # Panics
    ///
    /// Panics if a document with the same id is already stored.
    pub fn push_shared(&mut self, doc: Arc<Document>) {
        let id = doc.id;
        let previous = self.by_id.insert(id, doc);
        assert!(previous.is_none(), "duplicate document id {id}");
        self.fifo.push_back(id);
    }

    /// Removes and returns the oldest valid document, if any.
    pub fn pop_oldest(&mut self) -> Option<Arc<Document>> {
        let id = self.fifo.pop_front()?;
        let doc = self
            .by_id
            .remove(&id)
            .expect("FIFO id must exist in the id map");
        Some(doc)
    }

    /// Removes the document with the given id, wherever it sits in the FIFO.
    ///
    /// Expirations normally remove the oldest document (`O(1)`); removal from
    /// the middle (used when a caller retracts a specific document) costs a
    /// linear scan of the FIFO order.
    pub fn remove(&mut self, id: DocId) -> Option<Arc<Document>> {
        let doc = self.by_id.remove(&id)?;
        if self.fifo.front() == Some(&id) {
            self.fifo.pop_front();
        } else if self.fifo.back() == Some(&id) {
            self.fifo.pop_back();
        } else if let Some(pos) = self.fifo.iter().position(|&d| d == id) {
            self.fifo.remove(pos);
        }
        Some(doc)
    }

    /// The oldest valid document without removing it.
    pub fn oldest(&self) -> Option<&Document> {
        self.fifo
            .front()
            .and_then(|id| self.by_id.get(id))
            .map(Arc::as_ref)
    }

    /// The most recently arrived document.
    pub fn newest(&self) -> Option<&Document> {
        self.fifo
            .back()
            .and_then(|id| self.by_id.get(id))
            .map(Arc::as_ref)
    }

    /// Looks up a valid document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.by_id.get(&id).map(Arc::as_ref)
    }

    /// Whether `id` is currently valid.
    pub fn contains(&self, id: DocId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Number of valid documents.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Iterates over the valid documents in arrival (FIFO) order.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.fifo
            .iter()
            .filter_map(move |id| self.by_id.get(id))
            .map(Arc::as_ref)
    }

    /// Arrival time of the oldest valid document, if any.
    pub fn oldest_arrival(&self) -> Option<Timestamp> {
        self.oldest().map(|d| d.arrival)
    }

    /// Total number of composition-list entries across all valid documents
    /// (an indicator of index memory footprint).
    pub fn total_postings(&self) -> usize {
        self.by_id.values().map(|d| d.composition.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, arrival_secs: u64) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_secs(arrival_secs),
            WeightedVector::from_weights([(TermId(id as u32 % 5), 1.0)]),
        )
    }

    #[test]
    fn push_and_pop_preserve_fifo_order() {
        let mut s = DocumentStore::new();
        for i in 0..5 {
            s.push(doc(i, i));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.oldest().unwrap().id, DocId(0));
        assert_eq!(s.newest().unwrap().id, DocId(4));
        let popped: Vec<u64> = std::iter::from_fn(|| s.pop_oldest())
            .map(|d| d.id.0)
            .collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn get_and_contains() {
        let mut s = DocumentStore::new();
        s.push(doc(10, 0));
        assert!(s.contains(DocId(10)));
        assert!(!s.contains(DocId(11)));
        assert_eq!(s.get(DocId(10)).unwrap().arrival, Timestamp::ZERO);
        assert!(s.get(DocId(11)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate document id")]
    fn duplicate_push_panics() {
        let mut s = DocumentStore::new();
        s.push(doc(1, 0));
        s.push(doc(1, 1));
    }

    #[test]
    fn iter_follows_arrival_order() {
        let mut s = DocumentStore::new();
        for i in [3, 1, 2] {
            s.push(doc(i, i));
        }
        let order: Vec<u64> = s.iter().map(|d| d.id.0).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn oldest_arrival_and_total_postings() {
        let mut s = DocumentStore::with_capacity(4);
        assert!(s.oldest_arrival().is_none());
        s.push(doc(1, 7));
        s.push(doc(2, 9));
        assert_eq!(s.oldest_arrival(), Some(Timestamp::from_secs(7)));
        assert_eq!(s.total_postings(), 2);
    }

    #[test]
    fn push_shared_stores_the_same_allocation() {
        let mut a = DocumentStore::new();
        let mut b = DocumentStore::new();
        let shared = Arc::new(doc(1, 0));
        a.push_shared(Arc::clone(&shared));
        b.push_shared(Arc::clone(&shared));
        // Both stores (and the caller) point at one allocation.
        assert_eq!(Arc::strong_count(&shared), 3);
        let out = a.pop_oldest().unwrap();
        assert!(Arc::ptr_eq(&out, &shared));
        assert_eq!(b.get(DocId(1)).unwrap().id, DocId(1));
    }

    #[test]
    fn pop_from_empty_is_none() {
        let mut s = DocumentStore::new();
        assert!(s.pop_oldest().is_none());
    }

    #[test]
    fn remove_by_id_from_head_middle_and_tail() {
        let mut s = DocumentStore::new();
        for i in 0..5 {
            s.push(doc(i, i));
        }
        assert_eq!(s.remove(DocId(0)).unwrap().id, DocId(0)); // head
        assert_eq!(s.remove(DocId(4)).unwrap().id, DocId(4)); // tail
        assert_eq!(s.remove(DocId(2)).unwrap().id, DocId(2)); // middle
        assert!(s.remove(DocId(2)).is_none());
        let order: Vec<u64> = s.iter().map(|d| d.id.0).collect();
        assert_eq!(order, vec![1, 3]);
        assert_eq!(s.len(), 2);
    }
}
