//! Impact-ordered inverted lists.
//!
//! An [`InvertedList`] `L_t` holds one [`Posting`] `⟨w_{d,t}, d⟩` per valid
//! document containing term `t`, ordered by **decreasing** weight (ties broken
//! by increasing document id). The Incremental Threshold Algorithm needs
//! three access patterns, all of which are `O(log n)` to locate plus linear in
//! the number of entries actually visited:
//!
//! * sequential descent from the top of the list (initial top-k search),
//! * resumed descent strictly below a remembered weight (the query's local
//!   threshold, used by the refill step), and
//! * point insertion/removal under document arrival and expiration.
//!
//! The list is backed by a `BTreeSet` with a descending-weight key; no
//! per-entry allocation occurs beyond the tree nodes themselves.

use std::collections::BTreeSet;
use std::ops::Bound;

use serde::{Deserialize, Serialize};

use cts_text::Weight;

use crate::document::DocId;

/// One `⟨w_{d,t}, d⟩` impact entry of an inverted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The impact weight `w_{d,t}`.
    pub weight: Weight,
    /// The document.
    pub doc: DocId,
}

impl Posting {
    /// Creates a posting.
    pub fn new(doc: DocId, weight: Weight) -> Self {
        Self { weight, doc }
    }
}

/// Key wrapper giving postings the list order: decreasing weight, then
/// increasing document id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DescendingKey(Posting);

impl Ord for DescendingKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .weight
            .cmp(&self.0.weight)
            .then_with(|| self.0.doc.cmp(&other.0.doc))
    }
}

impl PartialOrd for DescendingKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An impact-ordered inverted list for a single term.
#[derive(Debug, Clone, Default)]
pub struct InvertedList {
    entries: BTreeSet<DescendingKey>,
}

impl InvertedList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the posting for `doc` with weight `weight`.
    /// Returns `false` if an identical posting was already present.
    pub fn insert(&mut self, doc: DocId, weight: Weight) -> bool {
        self.entries
            .insert(DescendingKey(Posting::new(doc, weight)))
    }

    /// Removes the posting for `doc` with weight `weight`.
    /// Returns `true` if the posting was present.
    pub fn remove(&mut self, doc: DocId, weight: Weight) -> bool {
        self.entries
            .remove(&DescendingKey(Posting::new(doc, weight)))
    }

    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The posting with the highest weight, if any.
    pub fn first(&self) -> Option<Posting> {
        self.entries.iter().next().map(|k| k.0)
    }

    /// Iterates over all postings in decreasing-weight order.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + '_ {
        self.entries.iter().map(|k| k.0)
    }

    /// Iterates over postings **strictly below** `weight` (i.e. `w_{d,t} <
    /// weight`), in decreasing-weight order. This is the "resume the search
    /// below the local threshold" access path of ITA's refill step.
    pub fn iter_below(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        // In descending order, all postings with weight == `weight` sort
        // before the bound below, so excluding the bound skips them entirely.
        let bound = DescendingKey(Posting::new(DocId::MAX, weight));
        self.entries
            .range((Bound::Excluded(bound), Bound::Unbounded))
            .map(|k| k.0)
    }

    /// Iterates over postings with weight **at or above** `weight`
    /// (`w_{d,t} ≥ weight`), in decreasing-weight order. Used by invariant
    /// checks ("every document above a local threshold is in R").
    pub fn iter_at_or_above(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        let bound = DescendingKey(Posting::new(DocId::MAX, weight));
        self.entries
            .range((Bound::Unbounded, Bound::Included(bound)))
            .map(|k| k.0)
    }

    /// Iterates over postings with weight **at or below** `weight`
    /// (`w_{d,t} ≤ weight`), in decreasing-weight order. ITA's refill resumes
    /// its descent here: entries tied with the recorded local threshold may or
    /// may not have been visited before, so the caller skips documents that
    /// are already in its result set.
    pub fn iter_at_or_below(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        let bound = DescendingKey(Posting::new(DocId(0), weight));
        self.entries
            .range((Bound::Included(bound), Bound::Unbounded))
            .map(|k| k.0)
    }

    /// Iterates over postings whose weight lies in `[lower, upper)`, in
    /// decreasing-weight order. Used by ITA's roll-up to find the documents
    /// whose only support was the just-raised threshold segment.
    pub fn iter_weight_range(
        &self,
        lower_inclusive: Weight,
        upper_exclusive: Weight,
    ) -> impl Iterator<Item = Posting> + '_ {
        let upper = DescendingKey(Posting::new(DocId::MAX, upper_exclusive));
        let lower = DescendingKey(Posting::new(DocId::MAX, lower_inclusive));
        self.entries
            .range((Bound::Excluded(upper), Bound::Included(lower)))
            .map(|k| k.0)
    }

    /// The posting immediately following `previous` in descending order
    /// (strictly after it), if any. Passing `None` returns the first posting.
    /// This is the sequential-descent cursor used by the threshold algorithm.
    pub fn next_after(&self, previous: Option<Posting>) -> Option<Posting> {
        match previous {
            None => self.first(),
            Some(p) => self
                .entries
                .range((Bound::Excluded(DescendingKey(p)), Bound::Unbounded))
                .next()
                .map(|k| k.0),
        }
    }

    /// The posting immediately **above** the given weight position: the
    /// lowest-ranked posting whose weight is strictly greater than `weight`.
    /// This is the `c_t` used when rolling local thresholds *up* (the paper's
    /// "the ct values are defined by the preceding entry in Lt").
    pub fn lowest_above(&self, weight: Weight) -> Option<Posting> {
        // In descending order every posting with weight > `weight` sorts
        // strictly before (weight, DocId(0)), the smallest key of weight
        // exactly `weight`; the last such posting is the one we want.
        let bound = DescendingKey(Posting::new(DocId(0), weight));
        self.entries
            .range((Bound::Unbounded, Bound::Excluded(bound)))
            .next_back()
            .map(|k| k.0)
    }

    /// Returns the weight stored for `doc`, if the document appears in this
    /// list. Linear scan; used only by tests and invariant checks.
    pub fn weight_of(&self, doc: DocId) -> Option<Weight> {
        self.iter().find(|p| p.doc == doc).map(|p| p.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    fn list(entries: &[(u64, f64)]) -> InvertedList {
        let mut l = InvertedList::new();
        for &(d, x) in entries {
            assert!(l.insert(DocId(d), w(x)));
        }
        l
    }

    #[test]
    fn iteration_is_descending_by_weight() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05), (9, 0.16)]);
        let docs: Vec<u64> = l.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![9, 7, 1, 5, 8]);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let l = list(&[(30, 0.5), (10, 0.5), (20, 0.5)]);
        let docs: Vec<u64> = l.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![10, 20, 30]);
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut l = list(&[(1, 0.3), (2, 0.2)]);
        assert_eq!(l.len(), 2);
        assert!(l.remove(DocId(1), w(0.3)));
        assert!(!l.remove(DocId(1), w(0.3)));
        assert_eq!(l.len(), 1);
        assert!(l.weight_of(DocId(1)).is_none());
        assert_eq!(l.weight_of(DocId(2)), Some(w(0.2)));
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut l = InvertedList::new();
        assert!(l.insert(DocId(1), w(0.5)));
        assert!(!l.insert(DocId(1), w(0.5)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn first_and_next_after_walk_the_list() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07)]);
        let p0 = l.next_after(None).unwrap();
        assert_eq!(p0.doc, DocId(7));
        let p1 = l.next_after(Some(p0)).unwrap();
        assert_eq!(p1.doc, DocId(1));
        let p2 = l.next_after(Some(p1)).unwrap();
        assert_eq!(p2.doc, DocId(5));
        assert!(l.next_after(Some(p2)).is_none());
    }

    #[test]
    fn iter_below_excludes_equal_weights() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        let below: Vec<u64> = l.iter_below(w(0.08)).map(|p| p.doc.0).collect();
        assert_eq!(below, vec![5, 8]);
    }

    #[test]
    fn iter_at_or_below_includes_equal_weights() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        let below: Vec<u64> = l.iter_at_or_below(w(0.08)).map(|p| p.doc.0).collect();
        assert_eq!(below, vec![1, 5, 8]);
        assert_eq!(l.iter_at_or_below(w(0.01)).count(), 0);
        assert_eq!(l.iter_at_or_below(w(1.0)).count(), 4);
    }

    #[test]
    fn iter_weight_range_is_half_open() {
        let l = list(&[(9, 0.16), (7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        // [0.07, 0.10): postings with weight 0.08 and 0.07.
        let docs: Vec<u64> = l
            .iter_weight_range(w(0.07), w(0.10))
            .map(|p| p.doc.0)
            .collect();
        assert_eq!(docs, vec![1, 5]);
        // Empty range when the bounds coincide.
        assert_eq!(l.iter_weight_range(w(0.08), w(0.08)).count(), 0);
        // Full coverage.
        assert_eq!(l.iter_weight_range(w(0.0), w(1.0)).count(), 5);
    }

    #[test]
    fn iter_at_or_above_includes_equal_weights() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        let above: Vec<u64> = l.iter_at_or_above(w(0.08)).map(|p| p.doc.0).collect();
        assert_eq!(above, vec![7, 1]);
    }

    #[test]
    fn lowest_above_returns_preceding_entry() {
        // Paper Fig. 2: local threshold at d5 (0.07); the entry above used for
        // roll-up is d1 (0.08), then d7 (0.10).
        let l = list(&[(9, 0.16), (7, 0.10), (1, 0.08), (5, 0.07)]);
        assert_eq!(l.lowest_above(w(0.07)).unwrap().doc, DocId(1));
        assert_eq!(l.lowest_above(w(0.08)).unwrap().doc, DocId(7));
        assert_eq!(l.lowest_above(w(0.10)).unwrap().doc, DocId(9));
        assert!(l.lowest_above(w(0.16)).is_none());
        assert!(l.lowest_above(w(0.99)).is_none());
    }

    #[test]
    fn lowest_above_with_ties_returns_a_tied_entry_only_if_strictly_greater() {
        let l = list(&[(1, 0.5), (2, 0.5), (3, 0.3)]);
        // Strictly above 0.3 → one of the 0.5 postings (the last in order, doc 2).
        assert_eq!(l.lowest_above(w(0.3)).unwrap().weight, w(0.5));
        // Strictly above 0.5 → nothing.
        assert!(l.lowest_above(w(0.5)).is_none());
    }

    #[test]
    fn empty_list_behaviour() {
        let l = InvertedList::new();
        assert!(l.is_empty());
        assert!(l.first().is_none());
        assert!(l.next_after(None).is_none());
        assert_eq!(l.iter_below(w(1.0)).count(), 0);
        assert_eq!(l.iter_at_or_above(w(0.0)).count(), 0);
    }

    #[test]
    fn same_document_may_appear_with_updated_weight_after_reinsert() {
        let mut l = list(&[(1, 0.4)]);
        assert!(l.remove(DocId(1), w(0.4)));
        assert!(l.insert(DocId(1), w(0.6)));
        assert_eq!(l.weight_of(DocId(1)), Some(w(0.6)));
        assert_eq!(l.len(), 1);
    }
}
