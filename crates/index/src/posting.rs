//! Impact entries and the flat sorted-`Vec` impact list.
//!
//! An impact list `L_t` holds one [`Posting`] `⟨w_{d,t}, d⟩` per valid
//! document containing term `t`, ordered by **decreasing** weight (ties broken
//! by increasing document id). The Incremental Threshold Algorithm needs
//! three access patterns, all of which are `O(log n)` to locate plus linear in
//! the number of entries actually visited:
//!
//! * sequential descent from the top of the list (initial top-k search),
//! * resumed descent strictly below a remembered weight (the query's local
//!   threshold, used by the refill step), and
//! * point insertion/removal under document arrival and expiration.
//!
//! [`FlatImpactList`] is the single sorted `Vec<Posting>` layout of PR 2:
//! every locate is one binary search (`partition_point`) and every traversal
//! is a contiguous slice scan. Its weakness, measured in `BENCH_fig3a.json`,
//! is the point update: the few head terms whose lists reach window length
//! pay a full-tail `memmove` on every arrival and expiration, which at 10k+
//! document windows dominates ITA's event cost. The production list is
//! therefore the segmented layout ([`crate::SegmentedImpactList`]), which
//! bounds the `memmove` by the segment capacity while keeping every descent a
//! contiguous scan; the flat layout is retained with its full API as
//!
//! * the reference arm of the randomized differential test
//!   (`tests/differential_impact_list.rs`),
//! * the `impact_flat` arm of the `ablation_threshold_tree` benchmark, and
//! * an alternative production layout behind the `flat-impact-lists` cargo
//!   feature, so the fig3 sweeps can be re-run against either backing.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

use cts_text::Weight;

use crate::document::DocId;

/// One `⟨w_{d,t}, d⟩` impact entry of an inverted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The impact weight `w_{d,t}`.
    pub weight: Weight,
    /// The document.
    pub doc: DocId,
}

impl Posting {
    /// Creates a posting.
    pub fn new(doc: DocId, weight: Weight) -> Self {
        Self { weight, doc }
    }

    /// The list order: decreasing weight, then increasing document id.
    #[inline]
    pub(crate) fn rank(&self, other: &Posting) -> Ordering {
        other
            .weight
            .cmp(&self.weight)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

/// An impact-ordered inverted list for a single term, backed by a single
/// sorted `Vec` (decreasing weight, ties by increasing document id).
#[derive(Debug, Clone, Default)]
pub struct FlatImpactList {
    entries: Vec<Posting>,
}

impl FlatImpactList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the first entry whose weight is **strictly below** `weight`
    /// (all entries before it have weight ≥ `weight`).
    #[inline]
    fn first_below(&self, weight: Weight) -> usize {
        self.entries.partition_point(|p| p.weight >= weight)
    }

    /// Index of the first entry whose weight is **at or below** `weight`
    /// (all entries before it have weight > `weight`).
    #[inline]
    fn first_at_or_below(&self, weight: Weight) -> usize {
        self.entries.partition_point(|p| p.weight > weight)
    }

    /// Inserts the posting for `doc` with weight `weight`.
    /// Returns `false` if an identical posting was already present.
    pub fn insert(&mut self, doc: DocId, weight: Weight) -> bool {
        let posting = Posting::new(doc, weight);
        match self.entries.binary_search_by(|p| p.rank(&posting)) {
            Ok(_) => false,
            Err(at) => {
                self.entries.insert(at, posting);
                true
            }
        }
    }

    /// Removes the posting for `doc` with weight `weight`.
    /// Returns `true` if the posting was present.
    pub fn remove(&mut self, doc: DocId, weight: Weight) -> bool {
        let posting = Posting::new(doc, weight);
        match self.entries.binary_search_by(|p| p.rank(&posting)) {
            Ok(at) => {
                self.entries.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The posting with the highest weight, if any.
    pub fn first(&self) -> Option<Posting> {
        self.entries.first().copied()
    }

    /// The full list in decreasing-weight order, as a contiguous slice.
    pub fn as_slice(&self) -> &[Posting] {
        &self.entries
    }

    /// Iterates over all postings in decreasing-weight order.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + '_ {
        self.entries.iter().copied()
    }

    /// Iterates over postings **strictly below** `weight` (i.e. `w_{d,t} <
    /// weight`), in decreasing-weight order. This is the "resume the search
    /// below the local threshold" access path of ITA's refill step.
    pub fn iter_below(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        self.entries[self.first_below(weight)..].iter().copied()
    }

    /// Iterates over postings with weight **at or above** `weight`
    /// (`w_{d,t} ≥ weight`), in decreasing-weight order. Used by invariant
    /// checks ("every document above a local threshold is in R").
    pub fn iter_at_or_above(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        self.entries[..self.first_below(weight)].iter().copied()
    }

    /// Iterates over postings with weight **at or below** `weight`
    /// (`w_{d,t} ≤ weight`), in decreasing-weight order. ITA's refill resumes
    /// its descent here: entries tied with the recorded local threshold may or
    /// may not have been visited before, so the caller skips documents that
    /// are already in its result set.
    pub fn iter_at_or_below(&self, weight: Weight) -> impl Iterator<Item = Posting> + '_ {
        self.entries[self.first_at_or_below(weight)..]
            .iter()
            .copied()
    }

    /// Iterates over postings whose weight lies in `[lower, upper)`, in
    /// decreasing-weight order. Used by ITA's roll-up to find the documents
    /// whose only support was the just-raised threshold segment.
    pub fn iter_weight_range(
        &self,
        lower_inclusive: Weight,
        upper_exclusive: Weight,
    ) -> impl Iterator<Item = Posting> + '_ {
        let start = self.first_below(upper_exclusive);
        let end = self.first_below(lower_inclusive).max(start);
        self.entries[start..end].iter().copied()
    }

    /// The posting immediately following `previous` in descending order
    /// (strictly after it), if any. Passing `None` returns the first posting.
    /// This is the sequential-descent cursor used by the threshold algorithm.
    pub fn next_after(&self, previous: Option<Posting>) -> Option<Posting> {
        match previous {
            None => self.first(),
            Some(p) => {
                let at = match self.entries.binary_search_by(|e| e.rank(&p)) {
                    Ok(at) => at + 1,
                    Err(at) => at,
                };
                self.entries.get(at).copied()
            }
        }
    }

    /// The posting immediately **above** the given weight position: the
    /// lowest-ranked posting whose weight is strictly greater than `weight`.
    /// This is the `c_t` used when rolling local thresholds *up* (the paper's
    /// "the ct values are defined by the preceding entry in Lt").
    pub fn lowest_above(&self, weight: Weight) -> Option<Posting> {
        self.entries[..self.first_at_or_below(weight)]
            .last()
            .copied()
    }

    /// Returns the weight stored for `doc`, if the document appears in this
    /// list. Linear scan; used only by tests and invariant checks.
    pub fn weight_of(&self, doc: DocId) -> Option<Weight> {
        self.iter().find(|p| p.doc == doc).map(|p| p.weight)
    }

    /// Checks the layout's single structural invariant — strict global rank
    /// order (decreasing weight, ties by increasing document id, no
    /// duplicates) — panicking with a description on violation. The flat
    /// counterpart of `SegmentedImpactList::check_invariants`, so the
    /// engine-level audits work under either list backing.
    pub fn check_invariants(&self) {
        for pair in self.entries.windows(2) {
            assert!(
                pair[0].rank(&pair[1]) == std::cmp::Ordering::Less,
                "flat impact list is not strictly ordered"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    fn list(entries: &[(u64, f64)]) -> FlatImpactList {
        let mut l = FlatImpactList::new();
        for &(d, x) in entries {
            assert!(l.insert(DocId(d), w(x)));
        }
        l
    }

    #[test]
    fn iteration_is_descending_by_weight() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05), (9, 0.16)]);
        let docs: Vec<u64> = l.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![9, 7, 1, 5, 8]);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let l = list(&[(30, 0.5), (10, 0.5), (20, 0.5)]);
        let docs: Vec<u64> = l.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![10, 20, 30]);
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut l = list(&[(1, 0.3), (2, 0.2)]);
        assert_eq!(l.len(), 2);
        assert!(l.remove(DocId(1), w(0.3)));
        assert!(!l.remove(DocId(1), w(0.3)));
        assert_eq!(l.len(), 1);
        assert!(l.weight_of(DocId(1)).is_none());
        assert_eq!(l.weight_of(DocId(2)), Some(w(0.2)));
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut l = FlatImpactList::new();
        assert!(l.insert(DocId(1), w(0.5)));
        assert!(!l.insert(DocId(1), w(0.5)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn first_and_next_after_walk_the_list() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07)]);
        let p0 = l.next_after(None).unwrap();
        assert_eq!(p0.doc, DocId(7));
        let p1 = l.next_after(Some(p0)).unwrap();
        assert_eq!(p1.doc, DocId(1));
        let p2 = l.next_after(Some(p1)).unwrap();
        assert_eq!(p2.doc, DocId(5));
        assert!(l.next_after(Some(p2)).is_none());
    }

    #[test]
    fn next_after_a_removed_posting_resumes_at_its_successor() {
        // The cursor posting need not still be in the list (its document may
        // have expired between descent steps): `next_after` must resume at
        // the position the posting would occupy.
        let mut l = list(&[(7, 0.10), (1, 0.08), (5, 0.07)]);
        let p1 = Posting::new(DocId(1), w(0.08));
        l.remove(DocId(1), w(0.08));
        assert_eq!(l.next_after(Some(p1)).unwrap().doc, DocId(5));
    }

    #[test]
    fn iter_below_excludes_equal_weights() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        let below: Vec<u64> = l.iter_below(w(0.08)).map(|p| p.doc.0).collect();
        assert_eq!(below, vec![5, 8]);
    }

    #[test]
    fn iter_at_or_below_includes_equal_weights() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        let below: Vec<u64> = l.iter_at_or_below(w(0.08)).map(|p| p.doc.0).collect();
        assert_eq!(below, vec![1, 5, 8]);
        assert_eq!(l.iter_at_or_below(w(0.01)).count(), 0);
        assert_eq!(l.iter_at_or_below(w(1.0)).count(), 4);
    }

    #[test]
    fn iter_weight_range_is_half_open() {
        let l = list(&[(9, 0.16), (7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        // [0.07, 0.10): postings with weight 0.08 and 0.07.
        let docs: Vec<u64> = l
            .iter_weight_range(w(0.07), w(0.10))
            .map(|p| p.doc.0)
            .collect();
        assert_eq!(docs, vec![1, 5]);
        // Empty range when the bounds coincide.
        assert_eq!(l.iter_weight_range(w(0.08), w(0.08)).count(), 0);
        // Full coverage.
        assert_eq!(l.iter_weight_range(w(0.0), w(1.0)).count(), 5);
    }

    #[test]
    fn iter_weight_range_with_inverted_bounds_is_empty() {
        let l = list(&[(9, 0.16), (7, 0.10), (1, 0.08)]);
        assert_eq!(l.iter_weight_range(w(0.16), w(0.08)).count(), 0);
    }

    #[test]
    fn iter_at_or_above_includes_equal_weights() {
        let l = list(&[(7, 0.10), (1, 0.08), (5, 0.07), (8, 0.05)]);
        let above: Vec<u64> = l.iter_at_or_above(w(0.08)).map(|p| p.doc.0).collect();
        assert_eq!(above, vec![7, 1]);
    }

    #[test]
    fn lowest_above_returns_preceding_entry() {
        // Paper Fig. 2: local threshold at d5 (0.07); the entry above used for
        // roll-up is d1 (0.08), then d7 (0.10).
        let l = list(&[(9, 0.16), (7, 0.10), (1, 0.08), (5, 0.07)]);
        assert_eq!(l.lowest_above(w(0.07)).unwrap().doc, DocId(1));
        assert_eq!(l.lowest_above(w(0.08)).unwrap().doc, DocId(7));
        assert_eq!(l.lowest_above(w(0.10)).unwrap().doc, DocId(9));
        assert!(l.lowest_above(w(0.16)).is_none());
        assert!(l.lowest_above(w(0.99)).is_none());
    }

    #[test]
    fn lowest_above_with_ties_returns_a_tied_entry_only_if_strictly_greater() {
        let l = list(&[(1, 0.5), (2, 0.5), (3, 0.3)]);
        // Strictly above 0.3 → one of the 0.5 postings (the last in order, doc 2).
        assert_eq!(l.lowest_above(w(0.3)).unwrap().weight, w(0.5));
        // Strictly above 0.5 → nothing.
        assert!(l.lowest_above(w(0.5)).is_none());
    }

    #[test]
    fn empty_list_behaviour() {
        let l = FlatImpactList::new();
        assert!(l.is_empty());
        assert!(l.first().is_none());
        assert!(l.next_after(None).is_none());
        assert_eq!(l.iter_below(w(1.0)).count(), 0);
        assert_eq!(l.iter_at_or_above(w(0.0)).count(), 0);
        assert!(l.as_slice().is_empty());
    }

    #[test]
    fn same_document_may_appear_with_updated_weight_after_reinsert() {
        let mut l = list(&[(1, 0.4)]);
        assert!(l.remove(DocId(1), w(0.4)));
        assert!(l.insert(DocId(1), w(0.6)));
        assert_eq!(l.weight_of(DocId(1)), Some(w(0.6)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn duplicate_weight_run_at_the_head_of_the_list() {
        // A run of equal weights at the very top: range probes must treat the
        // whole run as one tie group on either side of the boundary.
        let l = list(&[(3, 0.9), (1, 0.9), (2, 0.9), (4, 0.5)]);
        let head: Vec<u64> = l.iter_at_or_above(w(0.9)).map(|p| p.doc.0).collect();
        assert_eq!(head, vec![1, 2, 3]);
        assert_eq!(l.iter_below(w(0.9)).count(), 1);
        assert!(l.lowest_above(w(0.9)).is_none());
        assert_eq!(l.lowest_above(w(0.5)).unwrap().doc, DocId(3));
    }

    #[test]
    fn duplicate_weight_run_at_the_tail_of_the_list() {
        let l = list(&[(1, 0.9), (7, 0.2), (5, 0.2), (6, 0.2)]);
        let tail: Vec<u64> = l.iter_at_or_below(w(0.2)).map(|p| p.doc.0).collect();
        assert_eq!(tail, vec![5, 6, 7]);
        assert_eq!(l.iter_below(w(0.2)).count(), 0);
        // Removing from the middle of the tail run keeps order intact.
        let mut l = l;
        assert!(l.remove(DocId(6), w(0.2)));
        let tail: Vec<u64> = l.iter_at_or_below(w(0.2)).map(|p| p.doc.0).collect();
        assert_eq!(tail, vec![5, 7]);
    }

    #[test]
    fn iter_below_on_an_all_equal_weight_list_is_empty() {
        let l = list(&[(1, 0.3), (2, 0.3), (3, 0.3)]);
        assert_eq!(l.iter_below(w(0.3)).count(), 0);
        assert_eq!(l.iter_at_or_below(w(0.3)).count(), 3);
        assert_eq!(l.iter_at_or_above(w(0.3)).count(), 3);
        assert_eq!(l.iter_weight_range(w(0.3), w(0.3)).count(), 0);
        assert!(l.lowest_above(w(0.3)).is_none());
        // Descent cursor walks the tie group by document id.
        let p = l.next_after(None).unwrap();
        assert_eq!(p.doc, DocId(1));
        assert_eq!(l.next_after(Some(p)).unwrap().doc, DocId(2));
    }

    #[test]
    fn as_slice_exposes_the_sorted_layout() {
        let l = list(&[(7, 0.10), (9, 0.16), (1, 0.08)]);
        let slice = l.as_slice();
        assert_eq!(slice.len(), 3);
        assert!(slice.windows(2).all(|p| p[0].weight >= p[1].weight));
    }
}
