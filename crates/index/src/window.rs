//! Sliding-window policies.
//!
//! The paper considers **count-based** windows ("the N most recent
//! documents", the default in its experiments) and **time-based** windows
//! ("documents received in the last T time units"). A [`SlidingWindow`]
//! inspects the [`DocumentStore`] after each arrival (or clock advance) and
//! reports which documents have ceased to be valid; the engines then process
//! those expirations.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::document::{DocId, Timestamp};
use crate::store::DocumentStore;

/// The window policy in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowKind {
    /// Keep the `N` most recent documents.
    CountBased {
        /// Window size in documents.
        size: usize,
    },
    /// Keep documents that arrived within the last `duration`.
    TimeBased {
        /// Window length in microseconds.
        duration_micros: u64,
    },
}

impl WindowKind {
    /// A count-based window of `size` documents.
    pub fn count(size: usize) -> Self {
        WindowKind::CountBased { size }
    }

    /// A time-based window of the given duration, saturating at `u64::MAX`
    /// microseconds (~584,000 years). A plain `as u64` cast here would *wrap*
    /// a pathological `Duration` (anything above `u64::MAX` µs) to a tiny
    /// window and silently expire the entire store.
    pub fn time(duration: Duration) -> Self {
        WindowKind::TimeBased {
            duration_micros: u64::try_from(duration.as_micros()).unwrap_or(u64::MAX),
        }
    }
}

/// A sliding window over the document stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlidingWindow {
    kind: WindowKind,
}

impl SlidingWindow {
    /// Creates a window with the given policy.
    pub fn new(kind: WindowKind) -> Self {
        Self { kind }
    }

    /// A count-based window of `size` documents (the paper's default).
    pub fn count_based(size: usize) -> Self {
        assert!(size > 0, "window size must be positive");
        Self::new(WindowKind::count(size))
    }

    /// A time-based window of the given duration.
    pub fn time_based(duration: Duration) -> Self {
        assert!(!duration.is_zero(), "window duration must be positive");
        Self::new(WindowKind::time(duration))
    }

    /// The policy in force.
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// Determines which documents expire given the store contents and the
    /// current stream time (the arrival time of the newest document, or the
    /// clock-tick time for pure time advances). Expired documents are reported
    /// oldest-first; they are **not** removed from the store — the engine does
    /// that while processing each expiration.
    pub fn expired(&self, store: &DocumentStore, now: Timestamp) -> Vec<DocId> {
        match self.kind {
            WindowKind::CountBased { size } => {
                let excess = store.len().saturating_sub(size);
                store.iter().take(excess).map(|d| d.id).collect()
            }
            WindowKind::TimeBased { duration_micros } => {
                let cutoff = now.as_micros().saturating_sub(duration_micros);
                store
                    .iter()
                    .take_while(|d| d.arrival.as_micros() < cutoff)
                    .map(|d| d.id)
                    .collect()
            }
        }
    }

    /// Whether a document that arrived at `arrival` is still valid at `now`
    /// under this policy, ignoring the count constraint (which depends on the
    /// store, not the document alone).
    pub fn is_fresh(&self, arrival: Timestamp, now: Timestamp) -> bool {
        match self.kind {
            WindowKind::CountBased { .. } => true,
            WindowKind::TimeBased { duration_micros } => {
                arrival.as_micros() >= now.as_micros().saturating_sub(duration_micros)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use cts_text::{TermId, WeightedVector};

    fn doc(id: u64, arrival_ms: u64) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(arrival_ms),
            WeightedVector::from_weights([(TermId(0), 1.0)]),
        )
    }

    #[test]
    fn count_based_window_expires_excess_oldest_first() {
        let w = SlidingWindow::count_based(3);
        let mut store = DocumentStore::new();
        for i in 0..5 {
            store.push(doc(i, i));
        }
        let expired = w.expired(&store, Timestamp::from_millis(4));
        assert_eq!(expired, vec![DocId(0), DocId(1)]);
    }

    #[test]
    fn count_based_window_with_room_expires_nothing() {
        let w = SlidingWindow::count_based(10);
        let mut store = DocumentStore::new();
        store.push(doc(0, 0));
        assert!(w.expired(&store, Timestamp::ZERO).is_empty());
    }

    #[test]
    fn time_based_window_expires_stale_documents() {
        let w = SlidingWindow::time_based(Duration::from_millis(100));
        let mut store = DocumentStore::new();
        store.push(doc(0, 0));
        store.push(doc(1, 50));
        store.push(doc(2, 120));
        store.push(doc(3, 160));
        // At t=170ms the cutoff is 70ms: documents 0 and 1 expire.
        let expired = w.expired(&store, Timestamp::from_millis(170));
        assert_eq!(expired, vec![DocId(0), DocId(1)]);
    }

    #[test]
    fn time_based_window_boundary_is_inclusive_for_documents_exactly_at_cutoff() {
        let w = SlidingWindow::time_based(Duration::from_millis(100));
        let mut store = DocumentStore::new();
        store.push(doc(0, 100));
        // cutoff = 200 - 100 = 100; arrival 100 is NOT strictly below the
        // cutoff, so the document is still valid.
        assert!(w.expired(&store, Timestamp::from_millis(200)).is_empty());
        // One microsecond later it expires.
        let expired = w.expired(&store, Timestamp::from_micros(200_001));
        assert_eq!(expired, vec![DocId(0)]);
    }

    #[test]
    fn is_fresh_matches_expiration_rule() {
        let w = SlidingWindow::time_based(Duration::from_secs(1));
        assert!(w.is_fresh(Timestamp::from_secs(9), Timestamp::from_secs(10)));
        assert!(!w.is_fresh(Timestamp::from_secs(8), Timestamp::from_secs(10)));
        let c = SlidingWindow::count_based(5);
        assert!(c.is_fresh(Timestamp::ZERO, Timestamp::from_secs(100)));
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_count_window_is_rejected() {
        let _ = SlidingWindow::count_based(0);
    }

    #[test]
    #[should_panic(expected = "window duration must be positive")]
    fn zero_duration_window_is_rejected() {
        let _ = SlidingWindow::time_based(Duration::ZERO);
    }

    #[test]
    fn oversized_duration_saturates_instead_of_wrapping() {
        // Duration::MAX is ~5.8e14 µs beyond u64: `as u64` would wrap this to
        // a near-zero window that expires everything. Saturation keeps it an
        // effectively infinite window.
        let w = SlidingWindow::time_based(Duration::MAX);
        assert_eq!(
            w.kind(),
            WindowKind::TimeBased {
                duration_micros: u64::MAX
            }
        );
        let mut store = DocumentStore::new();
        store.push(doc(0, 0));
        assert!(w
            .expired(&store, Timestamp::from_secs(1_000_000))
            .is_empty());
        // The largest representable-in-µs duration still converts exactly.
        let exact = SlidingWindow::time_based(Duration::from_micros(u64::MAX));
        assert_eq!(
            exact.kind(),
            WindowKind::TimeBased {
                duration_micros: u64::MAX
            }
        );
    }

    #[test]
    fn kind_roundtrip() {
        let w = SlidingWindow::count_based(7);
        assert_eq!(w.kind(), WindowKind::CountBased { size: 7 });
        let t = SlidingWindow::time_based(Duration::from_secs(2));
        assert_eq!(
            t.kind(),
            WindowKind::TimeBased {
                duration_micros: 2_000_000
            }
        );
    }
}
