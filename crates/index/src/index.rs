//! The streaming inverted index.
//!
//! An [`InvertedIndex`] owns the valid-document store and one impact-ordered
//! [`InvertedList`] per term seen in the window (the segmented impact list by
//! default; the flat sorted-`Vec` layout under the `flat-impact-lists`
//! feature). Document arrival inserts one impact entry per composition-list
//! term; expiration removes them again and frees empty lists, so memory
//! tracks the window contents exactly (Figure 1 of the paper).
//!
//! Lists live in a dense [`TermArena`] indexed by the interned [`TermId`] —
//! the per-term lookup performed for *every* term of *every* arriving and
//! expiring document is a single bounds-checked array index, not a hash.
//! Composition entries already carry validated [`Weight`]s
//! (`cts_text::WeightedTerm`), so filing them into the lists is free of
//! per-entry `f64` re-validation.
//!
//! The sharded engine builds **term-filtered shadow indexes**: each worker
//! shard mirrors the full window in its store (shared `Arc`s, one copy in
//! memory) but files impact entries only for the terms its own queries
//! reference ([`InvertedIndex::insert_shared_filtered`]). A query registered
//! mid-stream may introduce a term the shadow never indexed;
//! [`InvertedIndex::backfill_term`] rebuilds that one list from the store in
//! arrival order, and [`InvertedIndex::drop_list`] retires a list once the
//! last referencing query deregisters.
//!
//! Backfilling eagerly on every registration is the *registration cliff*:
//! each register pays a full window scan even when the query's lists are
//! never probed before the next churn event (DESIGN.md §9). The index
//! therefore supports **cold** terms: [`InvertedIndex::mark_cold`] records
//! that a term is live in the caller's filter without building its list,
//! [`InvertedIndex::probe_shared`] answers a one-off read from the
//! `Arc`-shared window without materialising anything, and
//! [`InvertedIndex::materialise_terms`] promotes cold terms to private
//! segmented lists on first real touch — in one store pass for the whole
//! batch. While a term is cold the store remains the single source of truth:
//! arrivals skip filing it ([`InvertedIndex::insert_shared_filtered`]) and
//! expirations have no list to clean, so a later materialisation over the
//! current store yields exactly the postings an always-warm list would hold.

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use cts_text::TermId;

use crate::arena::TermArena;
use crate::document::{DocId, Document};
use crate::posting::Posting;
use crate::store::DocumentStore;
use crate::InvertedList;

/// Above this many terms, a backfill pass walks each document's composition
/// list once and binary-searches the requested term set, instead of running
/// one composition binary search per (document, term) pair. Bulk (batch
/// registration) backfills bring hundreds of terms live at once; the per-term
/// strategy would multiply the window scan by the term count.
const BACKFILL_DIRECTORY_THRESHOLD: usize = 8;

/// The streaming inverted index over the valid documents.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    store: DocumentStore,
    lists: TermArena<InvertedList>,
    /// Terms live in the owner's filter but intentionally without a private
    /// list yet — served from the shared store until first touch. A `BTreeSet`
    /// on purpose: anything that sweeps the cold set (idle materialisation,
    /// diagnostics) observes the terms in sorted order, so no replayed or
    /// differential path can depend on hash-iteration order.
    cold: BTreeSet<TermId>,
    /// Impact entries filed by registration-path backfills (satellite
    /// regression counter: must scale with the probed lists, never with the
    /// window × registration count product of the old eager path).
    register_postings_touched: u64,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index sized for roughly `docs` valid documents of
    /// `terms_per_doc` distinct terms each.
    pub fn with_capacity(docs: usize, terms_per_doc: usize) -> Self {
        Self {
            store: DocumentStore::with_capacity(docs),
            lists: TermArena::with_capacity(docs.saturating_mul(terms_per_doc) / 4),
            cold: BTreeSet::new(),
            register_postings_touched: 0,
        }
    }

    /// Inserts an arriving document: stores it and adds one impact entry per
    /// composition-list term.
    pub fn insert_document(&mut self, doc: Document) {
        self.insert_shared(Arc::new(doc));
    }

    /// Inserts an already-shared arriving document (the sharded fan-out
    /// path): stores the `Arc` and adds one impact entry per composition-list
    /// term.
    pub fn insert_shared(&mut self, doc: Arc<Document>) {
        for entry in doc.composition.as_slice() {
            self.lists
                .get_or_default(entry.term)
                .insert(doc.id, entry.weight);
        }
        self.store.push_shared(doc);
    }

    /// Inserts an already-shared arriving document, filing impact entries
    /// only for composition terms accepted by `allow`. The document itself is
    /// always stored in full, so later [`InvertedIndex::backfill_term`] calls
    /// can recover the skipped terms — this is what makes a term-filtered
    /// shadow index exactly equivalent to the full index *for the filtered
    /// term set* under arbitrary register/feed interleavings.
    pub fn insert_shared_filtered(
        &mut self,
        doc: Arc<Document>,
        mut allow: impl FnMut(TermId) -> bool,
    ) {
        // Cold terms are allowed by the filter but must stay unmaterialised:
        // filing only post-registration arrivals would leave a partial list
        // that a later materialisation would double-count. The `is_empty`
        // check keeps the fully-warm hot path a single branch.
        let any_cold = !self.cold.is_empty();
        for entry in doc.composition.as_slice() {
            if allow(entry.term) && !(any_cold && self.cold.contains(&entry.term)) {
                self.lists
                    .get_or_default(entry.term)
                    .insert(doc.id, entry.weight);
            }
        }
        self.store.push_shared(doc);
    }

    /// Builds the inverted list for `term` from the stored documents, in
    /// arrival order — the exact insertion sequence the unfiltered index
    /// would have performed. Used when a newly registered query references a
    /// term the filtered index has not been maintaining. Returns the number
    /// of postings filed.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty list for `term` already exists: backfilling on
    /// top of live postings would duplicate them, which means the caller's
    /// term bookkeeping is corrupt.
    pub fn backfill_term(&mut self, term: TermId) -> usize {
        self.backfill_terms(&[term])
    }

    /// Backfills several terms in **one pass over the store** — the
    /// registration path of a term-filtered shadow index, where a new query
    /// typically brings several terms live at once and per-term store scans
    /// would multiply the (window-sized) traversal cost by the query length.
    /// Postings are filed in arrival order per term, exactly as
    /// [`InvertedIndex::backfill_term`] would. Returns the total number of
    /// postings filed.
    ///
    /// # Panics
    ///
    /// Panics if any of the terms already has a non-empty list (see
    /// [`InvertedIndex::backfill_term`]) or if `terms` contains duplicates.
    pub fn backfill_terms(&mut self, terms: &[TermId]) -> usize {
        for (i, term) in terms.iter().enumerate() {
            assert!(
                self.lists.get(*term).is_none_or(|list| list.is_empty()),
                "backfill of {term} would duplicate an existing list"
            );
            assert!(
                !self.cold.contains(term),
                "backfill of cold {term} without clearing its cold mark"
            );
            assert!(
                !terms[..i].contains(term),
                "backfill of {term} requested twice"
            );
        }
        // One traversal of the (window-sized) store collects every term's
        // postings; the store is iterated immutably while the lists are
        // built, so the postings are buffered first — a backfill is a rare
        // (per-registration-batch) event and the allocation is proportional
        // to the rebuilt lists.
        let mut postings: Vec<Vec<(DocId, cts_text::Weight)>> = vec![Vec::new(); terms.len()];
        if terms.len() <= BACKFILL_DIRECTORY_THRESHOLD {
            for doc in self.store.iter() {
                for (slot, term) in terms.iter().enumerate() {
                    // One binary search per (doc, term): composition weights
                    // are strictly positive by construction, so a zero impact
                    // means the term is absent.
                    let weight = doc.composition.impact(*term);
                    if weight > cts_text::Weight::ZERO {
                        postings[slot].push((doc.id, weight));
                    }
                }
            }
        } else {
            // Bulk path: walk each composition list once and binary-search a
            // sorted term → slot directory, so the pass costs
            // O(window · doc_len · log terms) instead of
            // O(window · terms · log doc_len).
            let mut directory: Vec<(TermId, usize)> = terms
                .iter()
                .enumerate()
                .map(|(slot, t)| (*t, slot))
                .collect();
            directory.sort_unstable_by_key(|(t, _)| *t);
            for doc in self.store.iter() {
                for entry in doc.composition.as_slice() {
                    if let Ok(i) = directory.binary_search_by_key(&entry.term, |(t, _)| *t) {
                        postings[directory[i].1].push((doc.id, entry.weight));
                    }
                }
            }
        }
        let mut filed = 0;
        for (term, term_postings) in terms.iter().zip(postings) {
            if term_postings.is_empty() {
                continue;
            }
            let list = self.lists.get_or_default(*term);
            for (doc, weight) in term_postings {
                list.insert(doc, weight);
                filed += 1;
            }
        }
        self.register_postings_touched += filed as u64;
        filed
    }

    /// Marks `term` **cold**: live in the caller's term filter, but with its
    /// private list deliberately not built. Arrivals skip filing the term and
    /// expirations find nothing to clean, so the shared store stays the
    /// single source of truth until [`InvertedIndex::materialise_terms`] (or
    /// a direct [`InvertedIndex::probe_shared`]) reads it. Marking an
    /// already-cold term is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty list for `term` exists — a term cannot be both
    /// warm and cold, so the caller's bookkeeping is corrupt.
    pub fn mark_cold(&mut self, term: TermId) {
        assert!(
            self.lists.get(term).is_none_or(|list| list.is_empty()),
            "cannot mark {term} cold: a live list exists"
        );
        self.cold.insert(term);
    }

    /// Whether `term` is currently marked cold.
    pub fn is_cold(&self, term: TermId) -> bool {
        self.cold.contains(&term)
    }

    /// Number of currently cold terms (0 means every live term is warm and
    /// the arrival path runs exactly as before lazy registration existed).
    pub fn num_cold(&self) -> usize {
        self.cold.len()
    }

    /// The currently cold terms, in increasing term-id order — for batch-idle
    /// materialisation sweeps. The order is deterministic (the cold set is a
    /// `BTreeSet`), so sweeps driven off this list replay identically.
    pub fn cold_terms(&self) -> Vec<TermId> {
        self.cold.iter().copied().collect()
    }

    /// Read-only probe of `term` against the `Arc`-shared window: the impact
    /// entries a private list would hold right now, in list order
    /// (decreasing weight, ties by increasing document id). This is how a
    /// cold term's *first* read can be served without mutating the index; it
    /// works identically for warm or unfiltered terms (and is differentially
    /// tested against the maintained lists).
    pub fn probe_shared(&self, term: TermId) -> Vec<Posting> {
        let mut postings: Vec<Posting> = self
            .store
            .iter()
            .filter_map(|doc| {
                let weight = doc.composition.impact(term);
                (weight > cts_text::Weight::ZERO).then(|| Posting::new(doc.id, weight))
            })
            .collect();
        postings.sort_unstable_by(|a, b| a.rank(b));
        postings
    }

    /// Promotes every currently-cold term in `terms` to a private list, in
    /// **one pass over the store** regardless of how many terms the batch
    /// brings. Terms that are not cold (already warm, or never marked) are
    /// skipped, so materialisation is idempotent. Returns the number of
    /// postings filed.
    pub fn materialise_terms(&mut self, terms: &[TermId]) -> usize {
        let mut promoted: Vec<TermId> = Vec::new();
        for term in terms {
            // `remove` both filters to cold terms and dedups repeats.
            if self.cold.remove(term) {
                promoted.push(*term);
            }
        }
        if promoted.is_empty() {
            0
        } else {
            self.backfill_terms(&promoted)
        }
    }

    /// Impact entries filed by registration-path backfills so far (monotone).
    ///
    /// The registration-cost regression tests pin this to the size of the
    /// lists actually probed: re-registering shared terms must add nothing,
    /// and growing the window with documents that do not contain a query's
    /// terms must not grow the counter.
    pub fn register_postings_touched(&self) -> u64 {
        self.register_postings_touched
    }

    /// Drops the inverted list for `term` entirely (the stored documents are
    /// untouched). Used by filtered shadow indexes when the last query
    /// referencing `term` deregisters. A cold `term` just sheds its cold
    /// mark — deregistering a never-probed term must not trigger the
    /// materialisation it existed to avoid. Returns `true` if a list or a
    /// cold mark existed.
    pub fn drop_list(&mut self, term: TermId) -> bool {
        let was_cold = self.cold.remove(&term);
        self.lists.remove(term).is_some() || was_cold
    }

    /// Removes the document with id `id` (normally the oldest, on expiration):
    /// deletes its impact entries and returns the (shared) document for
    /// further processing by the engines. Returns `None` if `id` is not
    /// valid. On a filtered index, composition terms that were never indexed
    /// simply have no list and are skipped.
    pub fn remove_document(&mut self, id: DocId) -> Option<Arc<Document>> {
        let doc = self.store.remove(id)?;
        for entry in doc.composition.as_slice() {
            let empty = match self.lists.get_mut(entry.term) {
                Some(list) => {
                    list.remove(id, entry.weight);
                    list.is_empty()
                }
                None => false,
            };
            if empty {
                self.lists.remove(entry.term);
            }
        }
        Some(doc)
    }

    /// The valid-document store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The inverted list for `term`, if any valid document contains it.
    pub fn list(&self, term: TermId) -> Option<&InvertedList> {
        self.lists.get(term)
    }

    /// Number of valid documents.
    pub fn num_documents(&self) -> usize {
        self.store.len()
    }

    /// Number of non-empty inverted lists (distinct terms in the window).
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// Iterates over `(term, list)` pairs in increasing term-id order.
    pub fn lists(&self) -> impl Iterator<Item = (TermId, &InvertedList)> {
        self.lists.iter()
    }

    /// Audits the index's structural invariants, panicking with a
    /// description on violation:
    ///
    /// * every inverted list is non-empty (an emptied list's arena slot is
    ///   vacated on removal, never left behind) and internally well-formed
    ///   ([`crate::InvertedList`]'s own `check_invariants`);
    /// * no posting refers to a document outside the store, and no list holds
    ///   more postings than there are valid documents;
    /// * the **cold-term lifecycle**: a cold term never owns a list — cold
    ///   means "the shared store is the single source of truth", so a
    ///   coexisting private list would double-count on materialisation.
    ///
    /// Driven per-op by the testkit lockstep runner under the
    /// `invariant-checks` feature (and in unit tests); not called on hot
    /// paths.
    pub fn check_invariants(&self) {
        let documents = self.store.len();
        for (term, list) in self.lists.iter() {
            assert!(!list.is_empty(), "empty list for {term} was not vacated");
            assert!(
                list.len() <= documents,
                "list for {term} holds {} postings over a {documents}-document window",
                list.len()
            );
            list.check_invariants();
            for posting in list.iter() {
                assert!(
                    self.store.get(posting.doc).is_some(),
                    "list for {term} references expired document {}",
                    posting.doc
                );
            }
            assert!(
                !self.cold.contains(&term),
                "{term} is cold but owns a materialised list"
            );
        }
    }

    /// A point-in-time summary of the index shape.
    pub fn stats(&self) -> IndexStats {
        let mut total_postings = 0;
        let mut longest_list = 0;
        for (_, list) in self.lists.iter() {
            total_postings += list.len();
            longest_list = longest_list.max(list.len());
        }
        IndexStats {
            documents: self.store.len(),
            terms: self.lists.len(),
            postings: total_postings,
            longest_list,
        }
    }
}

/// Point-in-time index statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of valid documents.
    pub documents: usize,
    /// Number of non-empty inverted lists.
    pub terms: usize,
    /// Total number of impact entries across all lists.
    pub postings: usize,
    /// Length of the longest inverted list.
    pub longest_list: usize,
}

impl IndexStats {
    /// Average inverted-list length (0 when there are no terms).
    pub fn average_list_len(&self) -> f64 {
        if self.terms == 0 {
            0.0
        } else {
            self.postings as f64 / self.terms as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Timestamp;
    use cts_text::WeightedVector;

    fn doc(id: u64, terms: &[(u32, f64)]) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w))),
        )
    }

    #[test]
    fn insert_populates_store_and_lists() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(11, 0.08), (20, 0.06)]));
        idx.insert_document(doc(2, &[(20, 0.09)]));
        assert_eq!(idx.num_documents(), 2);
        assert_eq!(idx.num_terms(), 2);
        let l20 = idx.list(TermId(20)).unwrap();
        let order: Vec<u64> = l20.iter().map(|p| p.doc.0).collect();
        assert_eq!(order, vec![2, 1]);
        assert!(idx.list(TermId(99)).is_none());
    }

    #[test]
    fn remove_cleans_up_postings_and_empty_lists() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(11, 0.08), (20, 0.06)]));
        idx.insert_document(doc(2, &[(20, 0.09)]));
        let removed = idx.remove_document(DocId(1)).unwrap();
        assert_eq!(removed.id, DocId(1));
        assert_eq!(idx.num_documents(), 1);
        // Term 11 only appeared in document 1 → its list is dropped.
        assert!(idx.list(TermId(11)).is_none());
        assert_eq!(idx.list(TermId(20)).unwrap().len(), 1);
        assert!(idx.remove_document(DocId(1)).is_none());
    }

    #[test]
    fn removing_the_last_posting_restores_the_empty_arena_slot() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(42, 0.5)]));
        assert_eq!(idx.num_terms(), 1);
        idx.remove_document(DocId(1)).unwrap();
        // The slot is vacated, not left as an empty list...
        assert!(idx.list(TermId(42)).is_none());
        assert_eq!(idx.num_terms(), 0);
        assert_eq!(idx.lists().count(), 0);
        // ...and a later arrival with the same term reclaims it.
        idx.insert_document(doc(2, &[(42, 0.7)]));
        assert_eq!(idx.num_terms(), 1);
        assert_eq!(idx.list(TermId(42)).unwrap().len(), 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let mut idx = InvertedIndex::with_capacity(10, 4);
        idx.insert_document(doc(1, &[(1, 0.5), (2, 0.5)]));
        idx.insert_document(doc(2, &[(1, 0.4)]));
        let s = idx.stats();
        assert_eq!(s.documents, 2);
        assert_eq!(s.terms, 2);
        assert_eq!(s.postings, 3);
        assert_eq!(s.longest_list, 2);
        assert!((s.average_list_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_index_stats() {
        let idx = InvertedIndex::new();
        let s = idx.stats();
        assert_eq!(s, IndexStats::default());
        assert_eq!(s.average_list_len(), 0.0);
    }

    #[test]
    fn window_churn_keeps_index_consistent() {
        let mut idx = InvertedIndex::new();
        // Simulate a count-based window of 3 over 50 arrivals.
        for i in 0..50u64 {
            idx.insert_document(doc(i, &[((i % 7) as u32, 0.1 + (i % 5) as f64 * 0.1)]));
            if idx.num_documents() > 3 {
                let oldest = idx.store().oldest().unwrap().id;
                idx.remove_document(oldest).unwrap();
            }
        }
        assert_eq!(idx.num_documents(), 3);
        let stats = idx.stats();
        assert_eq!(stats.postings, 3);
        assert!(stats.terms <= 3);
    }

    #[test]
    fn filtered_insert_skips_lists_but_stores_the_document() {
        let mut idx = InvertedIndex::new();
        idx.insert_shared_filtered(Arc::new(doc(1, &[(1, 0.5), (2, 0.4)])), |t| t == TermId(1));
        assert_eq!(idx.num_documents(), 1);
        assert_eq!(idx.list(TermId(1)).unwrap().len(), 1);
        assert!(idx.list(TermId(2)).is_none());
        // The stored composition is complete, not the filtered projection.
        assert!(idx
            .store()
            .get(DocId(1))
            .unwrap()
            .composition
            .contains(TermId(2)));
        // Removal of a document whose terms were never indexed is a no-op on
        // the missing lists.
        idx.remove_document(DocId(1)).unwrap();
        assert_eq!(idx.num_terms(), 0);
    }

    #[test]
    fn backfill_rebuilds_a_list_in_arrival_order() {
        let mut full = InvertedIndex::new();
        let mut shadow = InvertedIndex::new();
        let docs = [
            doc(1, &[(7, 0.30), (8, 0.10)]),
            doc(2, &[(7, 0.50)]),
            doc(3, &[(9, 0.20)]),
            doc(4, &[(7, 0.30)]), // tie with d1 on term 7
        ];
        for d in docs {
            full.insert_document(d.clone());
            shadow.insert_shared_filtered(Arc::new(d), |_| false);
        }
        assert!(shadow.list(TermId(7)).is_none());
        assert_eq!(shadow.backfill_term(TermId(7)), 3);
        let reference: Vec<_> = full.list(TermId(7)).unwrap().iter().collect();
        let rebuilt: Vec<_> = shadow.list(TermId(7)).unwrap().iter().collect();
        assert_eq!(reference, rebuilt);
        // Terms with no postings in the window backfill to nothing.
        assert_eq!(shadow.backfill_term(TermId(42)), 0);
        assert!(shadow.list(TermId(42)).is_none());
    }

    #[test]
    #[should_panic(expected = "would duplicate an existing list")]
    fn backfill_onto_a_live_list_panics() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(7, 0.3)]));
        idx.backfill_term(TermId(7));
    }

    #[test]
    fn drop_list_retires_a_term_without_touching_the_store() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(7, 0.3), (8, 0.2)]));
        assert!(idx.drop_list(TermId(7)));
        assert!(!idx.drop_list(TermId(7)));
        assert!(idx.list(TermId(7)).is_none());
        assert_eq!(idx.num_documents(), 1);
        // A later backfill restores exactly the dropped postings.
        assert_eq!(idx.backfill_term(TermId(7)), 1);
        assert_eq!(idx.list(TermId(7)).unwrap().len(), 1);
    }

    #[test]
    fn bulk_backfill_directory_path_matches_the_per_term_path() {
        // More terms than BACKFILL_DIRECTORY_THRESHOLD forces the
        // composition-walk strategy; both strategies must file identical
        // lists.
        let terms: Vec<TermId> = (0..12u32).map(TermId).collect();
        let mut small = InvertedIndex::new();
        let mut bulk = InvertedIndex::new();
        for i in 0..40u64 {
            let d = doc(
                i,
                &[
                    ((i % 12) as u32, 0.1 + (i % 3) as f64 * 0.2),
                    (((i + 5) % 12) as u32, 0.4),
                ],
            );
            small.insert_shared_filtered(Arc::new(d.clone()), |_| false);
            bulk.insert_shared_filtered(Arc::new(d), |_| false);
        }
        let mut filed_small = 0;
        for chunk in terms.chunks(2) {
            filed_small += small.backfill_terms(chunk);
        }
        let filed_bulk = bulk.backfill_terms(&terms);
        assert_eq!(filed_small, filed_bulk);
        for term in &terms {
            let a: Vec<_> = small
                .list(*term)
                .map(|l| l.iter().collect())
                .unwrap_or_default();
            let b: Vec<_> = bulk
                .list(*term)
                .map(|l| l.iter().collect())
                .unwrap_or_default();
            assert_eq!(a, b, "lists diverge for {term}");
        }
        assert_eq!(small.register_postings_touched(), filed_small as u64);
        assert_eq!(bulk.register_postings_touched(), filed_bulk as u64);
    }

    #[test]
    fn cold_terms_are_skipped_by_arrivals_and_materialise_exactly() {
        let mut full = InvertedIndex::new();
        let mut shadow = InvertedIndex::new();
        let t = TermId(7);
        // Half the window arrives, the term goes cold (registered), the rest
        // of the window arrives while cold, one document expires while cold.
        for i in 0..4u64 {
            let d = doc(i, &[(7, 0.1 + i as f64 * 0.1), (8, 0.2)]);
            full.insert_document(d.clone());
            shadow.insert_shared_filtered(Arc::new(d), |_| true);
        }
        shadow.drop_list(t); // simulate the term never having been live
        shadow.mark_cold(t);
        assert!(shadow.is_cold(t));
        assert_eq!(shadow.num_cold(), 1);
        assert_eq!(shadow.cold_terms(), vec![t]);
        for i in 4..8u64 {
            let d = doc(i, &[(7, 0.05 + i as f64 * 0.1)]);
            full.insert_document(d.clone());
            shadow.insert_shared_filtered(Arc::new(d), |_| true);
        }
        full.remove_document(DocId(1)).unwrap();
        shadow.remove_document(DocId(1)).unwrap();
        // While cold: no list, but the shared probe answers correctly.
        assert!(shadow.list(t).is_none());
        let reference: Vec<_> = full.list(t).unwrap().iter().collect();
        assert_eq!(shadow.probe_shared(t), reference);
        // Materialisation over the churned store equals the always-warm list.
        shadow.materialise_terms(&[t]);
        assert!(!shadow.is_cold(t));
        let rebuilt: Vec<_> = shadow.list(t).unwrap().iter().collect();
        assert_eq!(rebuilt, reference);
        // Idempotent: a second materialisation files nothing.
        let before = shadow.register_postings_touched();
        assert_eq!(shadow.materialise_terms(&[t]), 0);
        assert_eq!(shadow.register_postings_touched(), before);
    }

    #[test]
    fn dropping_a_cold_term_never_materialises_it() {
        let mut idx = InvertedIndex::new();
        for i in 0..6u64 {
            idx.insert_shared_filtered(Arc::new(doc(i, &[(3, 0.5)])), |_| false);
        }
        idx.mark_cold(TermId(3));
        assert!(idx.drop_list(TermId(3)));
        assert!(!idx.is_cold(TermId(3)));
        assert!(idx.list(TermId(3)).is_none());
        assert_eq!(idx.register_postings_touched(), 0);
        assert!(!idx.drop_list(TermId(3)));
    }

    #[test]
    #[should_panic(expected = "a live list exists")]
    fn marking_a_warm_term_cold_panics() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(7, 0.3)]));
        idx.mark_cold(TermId(7));
    }

    #[test]
    fn lists_iterator_covers_all_terms() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(1, 0.5), (2, 0.4), (3, 0.3)]));
        let terms: Vec<u32> = idx.lists().map(|(t, _)| t.0).collect();
        assert_eq!(terms, vec![1, 2, 3]);
    }
}
