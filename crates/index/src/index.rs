//! The streaming inverted index.
//!
//! An [`InvertedIndex`] owns the valid-document store and one impact-ordered
//! [`InvertedList`] per term seen in the window (the segmented impact list by
//! default; the flat sorted-`Vec` layout under the `flat-impact-lists`
//! feature). Document arrival inserts one impact entry per composition-list
//! term; expiration removes them again and frees empty lists, so memory
//! tracks the window contents exactly (Figure 1 of the paper).
//!
//! Lists live in a dense [`TermArena`] indexed by the interned [`TermId`] —
//! the per-term lookup performed for *every* term of *every* arriving and
//! expiring document is a single bounds-checked array index, not a hash.
//! Composition entries already carry validated [`Weight`]s
//! (`cts_text::WeightedTerm`), so filing them into the lists is free of
//! per-entry `f64` re-validation.
//!
//! The sharded engine builds **term-filtered shadow indexes**: each worker
//! shard mirrors the full window in its store (shared `Arc`s, one copy in
//! memory) but files impact entries only for the terms its own queries
//! reference ([`InvertedIndex::insert_shared_filtered`]). A query registered
//! mid-stream may introduce a term the shadow never indexed;
//! [`InvertedIndex::backfill_term`] rebuilds that one list from the store in
//! arrival order, and [`InvertedIndex::drop_list`] retires a list once the
//! last referencing query deregisters.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use cts_text::TermId;

use crate::arena::TermArena;
use crate::document::{DocId, Document};
use crate::store::DocumentStore;
use crate::InvertedList;

/// The streaming inverted index over the valid documents.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    store: DocumentStore,
    lists: TermArena<InvertedList>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index sized for roughly `docs` valid documents of
    /// `terms_per_doc` distinct terms each.
    pub fn with_capacity(docs: usize, terms_per_doc: usize) -> Self {
        Self {
            store: DocumentStore::with_capacity(docs),
            lists: TermArena::with_capacity(docs.saturating_mul(terms_per_doc) / 4),
        }
    }

    /// Inserts an arriving document: stores it and adds one impact entry per
    /// composition-list term.
    pub fn insert_document(&mut self, doc: Document) {
        self.insert_shared(Arc::new(doc));
    }

    /// Inserts an already-shared arriving document (the sharded fan-out
    /// path): stores the `Arc` and adds one impact entry per composition-list
    /// term.
    pub fn insert_shared(&mut self, doc: Arc<Document>) {
        for entry in doc.composition.as_slice() {
            self.lists
                .get_or_default(entry.term)
                .insert(doc.id, entry.weight);
        }
        self.store.push_shared(doc);
    }

    /// Inserts an already-shared arriving document, filing impact entries
    /// only for composition terms accepted by `allow`. The document itself is
    /// always stored in full, so later [`InvertedIndex::backfill_term`] calls
    /// can recover the skipped terms — this is what makes a term-filtered
    /// shadow index exactly equivalent to the full index *for the filtered
    /// term set* under arbitrary register/feed interleavings.
    pub fn insert_shared_filtered(
        &mut self,
        doc: Arc<Document>,
        mut allow: impl FnMut(TermId) -> bool,
    ) {
        for entry in doc.composition.as_slice() {
            if allow(entry.term) {
                self.lists
                    .get_or_default(entry.term)
                    .insert(doc.id, entry.weight);
            }
        }
        self.store.push_shared(doc);
    }

    /// Builds the inverted list for `term` from the stored documents, in
    /// arrival order — the exact insertion sequence the unfiltered index
    /// would have performed. Used when a newly registered query references a
    /// term the filtered index has not been maintaining. Returns the number
    /// of postings filed.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty list for `term` already exists: backfilling on
    /// top of live postings would duplicate them, which means the caller's
    /// term bookkeeping is corrupt.
    pub fn backfill_term(&mut self, term: TermId) -> usize {
        self.backfill_terms(&[term])
    }

    /// Backfills several terms in **one pass over the store** — the
    /// registration path of a term-filtered shadow index, where a new query
    /// typically brings several terms live at once and per-term store scans
    /// would multiply the (window-sized) traversal cost by the query length.
    /// Postings are filed in arrival order per term, exactly as
    /// [`InvertedIndex::backfill_term`] would. Returns the total number of
    /// postings filed.
    ///
    /// # Panics
    ///
    /// Panics if any of the terms already has a non-empty list (see
    /// [`InvertedIndex::backfill_term`]) or if `terms` contains duplicates.
    pub fn backfill_terms(&mut self, terms: &[TermId]) -> usize {
        for (i, term) in terms.iter().enumerate() {
            assert!(
                self.lists.get(*term).is_none_or(|list| list.is_empty()),
                "backfill of {term} would duplicate an existing list"
            );
            assert!(
                !terms[..i].contains(term),
                "backfill of {term} requested twice"
            );
        }
        // One traversal of the (window-sized) store collects every term's
        // postings; the store is iterated immutably while the lists are
        // built, so the postings are buffered first — a backfill is a rare
        // (per-register) event and the allocation is proportional to the
        // rebuilt lists.
        let mut postings: Vec<Vec<(DocId, cts_text::Weight)>> = vec![Vec::new(); terms.len()];
        for doc in self.store.iter() {
            for (slot, term) in terms.iter().enumerate() {
                // One binary search per (doc, term): composition weights are
                // strictly positive by construction, so a zero impact means
                // the term is absent.
                let weight = doc.composition.impact(*term);
                if weight > cts_text::Weight::ZERO {
                    postings[slot].push((doc.id, weight));
                }
            }
        }
        let mut filed = 0;
        for (term, term_postings) in terms.iter().zip(postings) {
            if term_postings.is_empty() {
                continue;
            }
            let list = self.lists.get_or_default(*term);
            for (doc, weight) in term_postings {
                list.insert(doc, weight);
                filed += 1;
            }
        }
        filed
    }

    /// Drops the inverted list for `term` entirely (the stored documents are
    /// untouched). Used by filtered shadow indexes when the last query
    /// referencing `term` deregisters. Returns `true` if a list existed.
    pub fn drop_list(&mut self, term: TermId) -> bool {
        self.lists.remove(term).is_some()
    }

    /// Removes the document with id `id` (normally the oldest, on expiration):
    /// deletes its impact entries and returns the (shared) document for
    /// further processing by the engines. Returns `None` if `id` is not
    /// valid. On a filtered index, composition terms that were never indexed
    /// simply have no list and are skipped.
    pub fn remove_document(&mut self, id: DocId) -> Option<Arc<Document>> {
        let doc = self.store.remove(id)?;
        for entry in doc.composition.as_slice() {
            let empty = match self.lists.get_mut(entry.term) {
                Some(list) => {
                    list.remove(id, entry.weight);
                    list.is_empty()
                }
                None => false,
            };
            if empty {
                self.lists.remove(entry.term);
            }
        }
        Some(doc)
    }

    /// The valid-document store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The inverted list for `term`, if any valid document contains it.
    pub fn list(&self, term: TermId) -> Option<&InvertedList> {
        self.lists.get(term)
    }

    /// Number of valid documents.
    pub fn num_documents(&self) -> usize {
        self.store.len()
    }

    /// Number of non-empty inverted lists (distinct terms in the window).
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// Iterates over `(term, list)` pairs in increasing term-id order.
    pub fn lists(&self) -> impl Iterator<Item = (TermId, &InvertedList)> {
        self.lists.iter()
    }

    /// A point-in-time summary of the index shape.
    pub fn stats(&self) -> IndexStats {
        let mut total_postings = 0;
        let mut longest_list = 0;
        for (_, list) in self.lists.iter() {
            total_postings += list.len();
            longest_list = longest_list.max(list.len());
        }
        IndexStats {
            documents: self.store.len(),
            terms: self.lists.len(),
            postings: total_postings,
            longest_list,
        }
    }
}

/// Point-in-time index statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of valid documents.
    pub documents: usize,
    /// Number of non-empty inverted lists.
    pub terms: usize,
    /// Total number of impact entries across all lists.
    pub postings: usize,
    /// Length of the longest inverted list.
    pub longest_list: usize,
}

impl IndexStats {
    /// Average inverted-list length (0 when there are no terms).
    pub fn average_list_len(&self) -> f64 {
        if self.terms == 0 {
            0.0
        } else {
            self.postings as f64 / self.terms as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Timestamp;
    use cts_text::WeightedVector;

    fn doc(id: u64, terms: &[(u32, f64)]) -> Document {
        Document::new(
            DocId(id),
            Timestamp::from_millis(id),
            WeightedVector::from_weights(terms.iter().map(|&(t, w)| (TermId(t), w))),
        )
    }

    #[test]
    fn insert_populates_store_and_lists() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(11, 0.08), (20, 0.06)]));
        idx.insert_document(doc(2, &[(20, 0.09)]));
        assert_eq!(idx.num_documents(), 2);
        assert_eq!(idx.num_terms(), 2);
        let l20 = idx.list(TermId(20)).unwrap();
        let order: Vec<u64> = l20.iter().map(|p| p.doc.0).collect();
        assert_eq!(order, vec![2, 1]);
        assert!(idx.list(TermId(99)).is_none());
    }

    #[test]
    fn remove_cleans_up_postings_and_empty_lists() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(11, 0.08), (20, 0.06)]));
        idx.insert_document(doc(2, &[(20, 0.09)]));
        let removed = idx.remove_document(DocId(1)).unwrap();
        assert_eq!(removed.id, DocId(1));
        assert_eq!(idx.num_documents(), 1);
        // Term 11 only appeared in document 1 → its list is dropped.
        assert!(idx.list(TermId(11)).is_none());
        assert_eq!(idx.list(TermId(20)).unwrap().len(), 1);
        assert!(idx.remove_document(DocId(1)).is_none());
    }

    #[test]
    fn removing_the_last_posting_restores_the_empty_arena_slot() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(42, 0.5)]));
        assert_eq!(idx.num_terms(), 1);
        idx.remove_document(DocId(1)).unwrap();
        // The slot is vacated, not left as an empty list...
        assert!(idx.list(TermId(42)).is_none());
        assert_eq!(idx.num_terms(), 0);
        assert_eq!(idx.lists().count(), 0);
        // ...and a later arrival with the same term reclaims it.
        idx.insert_document(doc(2, &[(42, 0.7)]));
        assert_eq!(idx.num_terms(), 1);
        assert_eq!(idx.list(TermId(42)).unwrap().len(), 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let mut idx = InvertedIndex::with_capacity(10, 4);
        idx.insert_document(doc(1, &[(1, 0.5), (2, 0.5)]));
        idx.insert_document(doc(2, &[(1, 0.4)]));
        let s = idx.stats();
        assert_eq!(s.documents, 2);
        assert_eq!(s.terms, 2);
        assert_eq!(s.postings, 3);
        assert_eq!(s.longest_list, 2);
        assert!((s.average_list_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_index_stats() {
        let idx = InvertedIndex::new();
        let s = idx.stats();
        assert_eq!(s, IndexStats::default());
        assert_eq!(s.average_list_len(), 0.0);
    }

    #[test]
    fn window_churn_keeps_index_consistent() {
        let mut idx = InvertedIndex::new();
        // Simulate a count-based window of 3 over 50 arrivals.
        for i in 0..50u64 {
            idx.insert_document(doc(i, &[((i % 7) as u32, 0.1 + (i % 5) as f64 * 0.1)]));
            if idx.num_documents() > 3 {
                let oldest = idx.store().oldest().unwrap().id;
                idx.remove_document(oldest).unwrap();
            }
        }
        assert_eq!(idx.num_documents(), 3);
        let stats = idx.stats();
        assert_eq!(stats.postings, 3);
        assert!(stats.terms <= 3);
    }

    #[test]
    fn filtered_insert_skips_lists_but_stores_the_document() {
        let mut idx = InvertedIndex::new();
        idx.insert_shared_filtered(Arc::new(doc(1, &[(1, 0.5), (2, 0.4)])), |t| t == TermId(1));
        assert_eq!(idx.num_documents(), 1);
        assert_eq!(idx.list(TermId(1)).unwrap().len(), 1);
        assert!(idx.list(TermId(2)).is_none());
        // The stored composition is complete, not the filtered projection.
        assert!(idx
            .store()
            .get(DocId(1))
            .unwrap()
            .composition
            .contains(TermId(2)));
        // Removal of a document whose terms were never indexed is a no-op on
        // the missing lists.
        idx.remove_document(DocId(1)).unwrap();
        assert_eq!(idx.num_terms(), 0);
    }

    #[test]
    fn backfill_rebuilds_a_list_in_arrival_order() {
        let mut full = InvertedIndex::new();
        let mut shadow = InvertedIndex::new();
        let docs = [
            doc(1, &[(7, 0.30), (8, 0.10)]),
            doc(2, &[(7, 0.50)]),
            doc(3, &[(9, 0.20)]),
            doc(4, &[(7, 0.30)]), // tie with d1 on term 7
        ];
        for d in docs {
            full.insert_document(d.clone());
            shadow.insert_shared_filtered(Arc::new(d), |_| false);
        }
        assert!(shadow.list(TermId(7)).is_none());
        assert_eq!(shadow.backfill_term(TermId(7)), 3);
        let reference: Vec<_> = full.list(TermId(7)).unwrap().iter().collect();
        let rebuilt: Vec<_> = shadow.list(TermId(7)).unwrap().iter().collect();
        assert_eq!(reference, rebuilt);
        // Terms with no postings in the window backfill to nothing.
        assert_eq!(shadow.backfill_term(TermId(42)), 0);
        assert!(shadow.list(TermId(42)).is_none());
    }

    #[test]
    #[should_panic(expected = "would duplicate an existing list")]
    fn backfill_onto_a_live_list_panics() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(7, 0.3)]));
        idx.backfill_term(TermId(7));
    }

    #[test]
    fn drop_list_retires_a_term_without_touching_the_store() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(7, 0.3), (8, 0.2)]));
        assert!(idx.drop_list(TermId(7)));
        assert!(!idx.drop_list(TermId(7)));
        assert!(idx.list(TermId(7)).is_none());
        assert_eq!(idx.num_documents(), 1);
        // A later backfill restores exactly the dropped postings.
        assert_eq!(idx.backfill_term(TermId(7)), 1);
        assert_eq!(idx.list(TermId(7)).unwrap().len(), 1);
    }

    #[test]
    fn lists_iterator_covers_all_terms() {
        let mut idx = InvertedIndex::new();
        idx.insert_document(doc(1, &[(1, 0.5), (2, 0.4), (3, 0.3)]));
        let terms: Vec<u32> = idx.lists().map(|(t, _)| t.0).collect();
        assert_eq!(terms, vec![1, 2, 3]);
    }
}
