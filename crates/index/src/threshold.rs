//! Threshold trees.
//!
//! For every inverted list `L_t` the system keeps a *threshold tree*: an
//! ordered collection of `⟨θ_{Q,t}, Q⟩` entries, one per registered query `Q`
//! that contains term `t`. `θ_{Q,t}` is `Q`'s **local threshold** in `L_t` —
//! the impact weight down to which `Q`'s threshold search has already examined
//! the list. The tree answers the probe used on every document arrival and
//! expiration: *which queries have `θ_{Q,t} ≤ w`*, i.e. which queries might be
//! affected by an impact entry of weight `w` (paper §III-B).
//!
//! Despite the name (kept from the paper), the structure is a sorted
//! `Vec<ThresholdEntry>` in increasing `(θ, Q)` order: the arrival-time probe
//! is one `partition_point` binary search plus a contiguous prefix scan —
//! the single hottest operation in the whole system runs at memory-stream
//! speed instead of walking B-tree nodes. Threshold moves (insert + remove)
//! pay a tail `memmove`; the `ablation_threshold_tree` benchmark quantifies
//! the trade against the retained [`crate::baseline::BTreeThresholdTree`].

use serde::{Deserialize, Serialize};

use cts_text::Weight;

use crate::document::QueryId;

/// One `⟨θ_{Q,t}, Q⟩` entry of a threshold tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThresholdEntry {
    /// The query's local threshold in this list.
    pub threshold: Weight,
    /// The query.
    pub query: QueryId,
}

/// The per-list threshold tree.
#[derive(Debug, Clone, Default)]
pub struct ThresholdTree {
    /// Sorted ascending by `(threshold, query)`.
    entries: Vec<ThresholdEntry>,
}

impl ThresholdTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an entry for `query` with local threshold `threshold`.
    /// Returns `false` if that exact entry was already present.
    pub fn insert(&mut self, query: QueryId, threshold: Weight) -> bool {
        let entry = ThresholdEntry { threshold, query };
        match self.entries.binary_search(&entry) {
            Ok(_) => false,
            Err(at) => {
                self.entries.insert(at, entry);
                true
            }
        }
    }

    /// Removes the entry for `query` with local threshold `threshold`.
    /// Returns `true` if it was present. The caller must pass the same
    /// threshold value it previously inserted (queries track their own local
    /// thresholds, so this is always known).
    pub fn remove(&mut self, query: QueryId, threshold: Weight) -> bool {
        let entry = ThresholdEntry { threshold, query };
        match self.entries.binary_search(&entry) {
            Ok(at) => {
                self.entries.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// Moves `query`'s entry from `old` to `new` in one call.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the old entry was not present — a missing
    /// entry means the caller's book-keeping has diverged from the tree.
    pub fn update(&mut self, query: QueryId, old: Weight, new: Weight) {
        let removed = self.remove(query, old);
        debug_assert!(removed, "threshold update for absent entry {query}");
        self.insert(query, new);
    }

    /// All queries whose local threshold is **at or below** `weight`
    /// (`θ_{Q,t} ≤ w`), i.e. the queries potentially affected by an impact
    /// entry of weight `w`. Yields entries in increasing threshold order.
    /// One `partition_point` plus a contiguous prefix scan.
    pub fn affected_by(&self, weight: Weight) -> impl Iterator<Item = ThresholdEntry> + '_ {
        let end = self.entries.partition_point(|e| e.threshold <= weight);
        self.entries[..end].iter().copied()
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries in increasing threshold order.
    pub fn iter(&self) -> impl Iterator<Item = ThresholdEntry> + '_ {
        self.entries.iter().copied()
    }

    /// The smallest registered local threshold, if any. An arriving impact
    /// entry below this value cannot affect any query through this list.
    pub fn min_threshold(&self) -> Option<Weight> {
        self.entries.first().map(|e| e.threshold)
    }

    /// Audits the tree's structural invariants, panicking with a description
    /// on violation: entries strictly ascending by `(θ, Q)` — which implies
    /// no duplicate entry — so `affected_by`'s `partition_point` + prefix
    /// scan is sound. Driven by the engine-level `check_invariants` audits
    /// (`invariant-checks` feature) and tests; not called on hot paths.
    pub fn check_invariants(&self) {
        for pair in self.entries.windows(2) {
            assert!(
                pair[0] < pair[1],
                "threshold tree is not strictly ordered: {:?} precedes {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    #[test]
    fn affected_by_returns_queries_at_or_below_weight() {
        let mut t = ThresholdTree::new();
        t.insert(q(1), w(0.05));
        t.insert(q(2), w(0.10));
        t.insert(q(3), w(0.20));
        let affected: Vec<u32> = t.affected_by(w(0.10)).map(|e| e.query.0).collect();
        assert_eq!(affected, vec![1, 2]);
        let none: Vec<u32> = t.affected_by(w(0.01)).map(|e| e.query.0).collect();
        assert!(none.is_empty());
        let all: Vec<u32> = t.affected_by(w(0.9)).map(|e| e.query.0).collect();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn equal_thresholds_are_both_reported() {
        let mut t = ThresholdTree::new();
        t.insert(q(7), w(0.08));
        t.insert(q(9), w(0.08));
        let affected: Vec<u32> = t.affected_by(w(0.08)).map(|e| e.query.0).collect();
        assert_eq!(affected, vec![7, 9]);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut t = ThresholdTree::new();
        assert!(t.insert(q(1), w(0.3)));
        assert!(!t.insert(q(1), w(0.3)));
        assert_eq!(t.len(), 1);
        assert!(t.remove(q(1), w(0.3)));
        assert!(!t.remove(q(1), w(0.3)));
        assert!(t.is_empty());
    }

    #[test]
    fn update_moves_the_entry() {
        let mut t = ThresholdTree::new();
        t.insert(q(4), w(0.05));
        t.update(q(4), w(0.05), w(0.10));
        assert_eq!(t.affected_by(w(0.07)).count(), 0);
        assert_eq!(t.affected_by(w(0.10)).count(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn min_threshold_tracks_smallest_entry() {
        let mut t = ThresholdTree::new();
        assert!(t.min_threshold().is_none());
        t.insert(q(1), w(0.4));
        t.insert(q(2), w(0.1));
        assert_eq!(t.min_threshold(), Some(w(0.1)));
        t.remove(q(2), w(0.1));
        assert_eq!(t.min_threshold(), Some(w(0.4)));
    }

    #[test]
    fn same_query_may_not_hold_two_entries_with_same_threshold() {
        // A query has exactly one local threshold per list; inserting the same
        // (θ, Q) twice is a no-op, and different thresholds for the same query
        // are considered distinct entries (the engine always removes the old
        // one via `update`).
        let mut t = ThresholdTree::new();
        t.insert(q(1), w(0.2));
        t.insert(q(1), w(0.3));
        assert_eq!(t.len(), 2);
        let affected: Vec<(f64, u32)> = t
            .affected_by(w(1.0))
            .map(|e| (e.threshold.get(), e.query.0))
            .collect();
        assert_eq!(affected, vec![(0.2, 1), (0.3, 1)]);
    }

    #[test]
    fn zero_weight_probe_matches_zero_thresholds() {
        let mut t = ThresholdTree::new();
        t.insert(q(1), Weight::ZERO);
        let affected: Vec<u32> = t.affected_by(Weight::ZERO).map(|e| e.query.0).collect();
        assert_eq!(affected, vec![1]);
    }

    #[test]
    fn probe_order_breaks_threshold_ties_by_query_id() {
        let mut t = ThresholdTree::new();
        t.insert(q(9), w(0.1));
        t.insert(q(3), w(0.1));
        t.insert(q(5), w(0.05));
        let order: Vec<u32> = t.affected_by(w(0.2)).map(|e| e.query.0).collect();
        assert_eq!(order, vec![5, 3, 9]);
    }
}
