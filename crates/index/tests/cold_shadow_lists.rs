//! Cold→warm shadow-list lifecycle: a term-filtered [`InvertedIndex`] with
//! *cold* terms (live in the owner's filter, but deliberately without a
//! private list) must stay exactly equivalent to an always-live full index
//! for every term, across arbitrary interleavings of arrivals, expirations,
//! cold marks, shared-window probes, materialisations and deregistrations.
//!
//! This is the index-level half of the lazy-registration contract of
//! DESIGN.md §9: the shared document store is the single source of truth
//! while a term is cold, so the first probe ([`InvertedIndex::probe_shared`])
//! and the eventual promotion ([`InvertedIndex::materialise_terms`]) must
//! both reproduce, posting for posting, the list the full index maintained
//! incrementally the whole time. Seeded randomness comes from
//! [`cts_core::testkit::ScriptRng`], so every run reproduces from the `u64`
//! seed baked into each test.

use std::collections::HashSet;
use std::sync::Arc;

use cts_core::testkit::ScriptRng;
use cts_index::{DocId, Document, InvertedIndex, Posting, Timestamp};
use cts_text::{TermId, WeightedVector};

/// Small vocabulary + discrete palette: dense term sharing and tie runs.
const VOCABULARY: u32 = 12;

fn random_doc(rng: &mut ScriptRng, id: u64) -> Arc<Document> {
    let terms = rng.range(1, 5);
    let weights = (0..terms).map(|_| {
        (
            TermId(rng.below(VOCABULARY as usize) as u32),
            0.1 + rng.below(5) as f64 * 0.15,
        )
    });
    Arc::new(Document::new(
        DocId(id),
        Timestamp::from_millis(id),
        WeightedVector::from_weights(weights),
    ))
}

fn postings(list: impl Iterator<Item = Posting>) -> Vec<(u64, u64)> {
    list.map(|p| (p.doc.0, p.weight.get().to_bits())).collect()
}

/// What the full (unfiltered) reference index holds for `term`.
fn reference_list(full: &InvertedIndex, term: TermId) -> Vec<(u64, u64)> {
    full.list(term)
        .map(|list| postings(list.iter()))
        .unwrap_or_default()
}

/// A full/shadow pair driven through the same random stream. The shadow
/// files only `live` terms and carries the cold set; the full index is the
/// behavioural reference for every term.
struct Pair {
    full: InvertedIndex,
    shadow: InvertedIndex,
    live: HashSet<TermId>,
}

impl Pair {
    fn new() -> Self {
        Self {
            full: InvertedIndex::new(),
            shadow: InvertedIndex::new(),
            live: HashSet::new(),
        }
    }

    fn arrive(&mut self, doc: Arc<Document>) {
        self.full.insert_shared(doc.clone());
        let live = self.live.clone();
        self.shadow
            .insert_shared_filtered(doc, |t| live.contains(&t));
    }

    fn expire_oldest(&mut self) {
        if let Some(oldest) = self.full.store().oldest().map(|d| d.id) {
            self.full.remove_document(oldest);
            self.shadow.remove_document(oldest);
        }
    }

    /// Brings `term` live *cold* (registration under lazy backfill).
    fn go_cold(&mut self, term: TermId) {
        if self.live.insert(term) {
            self.shadow.mark_cold(term);
        }
    }

    /// Asserts the shadow serves `term` exactly like the reference — via the
    /// shared-window probe while cold, via the private list once warm.
    fn assert_term_agrees(&self, term: TermId) {
        let expected = reference_list(&self.full, term);
        if self.shadow.is_cold(term) {
            assert_eq!(
                postings(self.shadow.probe_shared(term).into_iter()),
                expected,
                "cold probe of {term} diverged from the always-live list"
            );
        } else if self.live.contains(&term) {
            assert_eq!(
                reference_list(&self.shadow, term),
                expected,
                "warm list of {term} diverged from the always-live list"
            );
        }
    }
}

#[test]
fn first_probe_of_a_cold_term_is_served_exactly_from_the_shared_window() {
    let mut rng = ScriptRng::new(0xC01D_0001);
    let mut pair = Pair::new();
    // Terms 0 and 1 are live-and-warm from the start; term 2 goes cold
    // mid-stream, after traffic it never filed.
    pair.live.insert(TermId(0));
    pair.live.insert(TermId(1));
    for id in 0..60u64 {
        if id == 25 {
            pair.go_cold(TermId(2));
        }
        pair.arrive(random_doc(&mut rng, id));
        if id >= 30 {
            pair.expire_oldest();
        }
        // The probe must agree at *every* point of the lifecycle, not just
        // at the end — including while post-mark arrivals skip the term.
        for t in 0..VOCABULARY {
            pair.assert_term_agrees(TermId(t));
        }
    }
    // A term nobody registered has no list anywhere, and probing it is
    // empty on both sides.
    assert!(pair.shadow.probe_shared(TermId(99)).is_empty());
    assert!(pair.full.list(TermId(99)).is_none());
}

#[test]
fn materialisation_is_exact_and_idempotent_under_churn() {
    let mut rng = ScriptRng::new(0xC01D_0002);
    let mut pair = Pair::new();
    for t in [3u32, 5, 7] {
        pair.go_cold(TermId(t));
    }
    for id in 0..80u64 {
        pair.arrive(random_doc(&mut rng, id));
        if id >= 40 {
            pair.expire_oldest();
        }
    }
    let cold_terms = [TermId(3), TermId(5), TermId(7)];
    let filed = pair.shadow.materialise_terms(&cold_terms);
    let expected_total: usize = cold_terms
        .iter()
        .map(|&t| reference_list(&pair.full, t).len())
        .sum();
    assert_eq!(filed, expected_total, "materialisation filed a wrong count");
    assert_eq!(pair.shadow.num_cold(), 0);
    for &t in &cold_terms {
        pair.assert_term_agrees(t);
    }
    // Idempotent: a second materialisation (and one over never-cold terms)
    // files nothing and panics on nothing.
    assert_eq!(pair.shadow.materialise_terms(&cold_terms), 0);
    assert_eq!(pair.shadow.materialise_terms(&[TermId(0), TermId(3)]), 0);
    // Once warm, the lists stay maintained incrementally through churn.
    for id in 80..120u64 {
        pair.arrive(random_doc(&mut rng, id));
        pair.expire_oldest();
        for &t in &cold_terms {
            pair.assert_term_agrees(t);
        }
    }
}

#[test]
fn deregistering_a_never_probed_cold_term_never_materialises_it() {
    let mut rng = ScriptRng::new(0xC01D_0003);
    let mut pair = Pair::new();
    pair.go_cold(TermId(4));
    for id in 0..50u64 {
        pair.arrive(random_doc(&mut rng, id));
    }
    assert!(pair.shadow.is_cold(TermId(4)));
    assert_eq!(
        pair.shadow.register_postings_touched(),
        0,
        "a cold term's postings were filed without a probe"
    );
    // The last referencing query deregisters: the cold mark is shed, no
    // list was ever built, and no backfill ever ran.
    assert!(pair.shadow.drop_list(TermId(4)));
    pair.live.remove(&TermId(4));
    assert!(!pair.shadow.is_cold(TermId(4)));
    assert!(pair
        .shadow
        .list(TermId(4))
        .is_none_or(|list| list.is_empty()));
    assert_eq!(pair.shadow.register_postings_touched(), 0);
    // Re-registering later (cold again, then materialised) still lands on
    // the exact list — the earlier drop left no residue.
    pair.go_cold(TermId(4));
    assert_eq!(
        pair.shadow.materialise_terms(&[TermId(4)]),
        reference_list(&pair.full, TermId(4)).len()
    );
    pair.assert_term_agrees(TermId(4));
}

#[test]
fn random_lifecycle_storm_keeps_every_term_exact() {
    // The everything-at-once axis: cold marks, materialisations, drops,
    // arrivals and expirations interleaved at random; after every step each
    // term must agree with the always-live reference through whichever path
    // (cold probe / warm list) currently serves it.
    for seed in [0xC01D_1000u64, 0xC01D_2000, 0xC01D_3000] {
        let mut rng = ScriptRng::new(seed);
        let mut pair = Pair::new();
        let mut next_id = 0u64;
        for step in 0..300usize {
            match rng.below(10) {
                0 => {
                    let term = TermId(rng.below(VOCABULARY as usize) as u32);
                    pair.go_cold(term);
                }
                1 => {
                    let cold = pair.shadow.cold_terms();
                    if !cold.is_empty() {
                        let term = *rng.pick(&cold);
                        pair.shadow.materialise_terms(&[term]);
                    }
                }
                2 => {
                    let live: Vec<TermId> = pair.live.iter().copied().collect();
                    if !live.is_empty() {
                        let term = *rng.pick(&live);
                        pair.shadow.drop_list(term);
                        pair.live.remove(&term);
                    }
                }
                3..=4 => pair.expire_oldest(),
                _ => {
                    pair.arrive(random_doc(&mut rng, next_id));
                    next_id += 1;
                }
            }
            for t in 0..VOCABULARY {
                pair.assert_term_agrees(TermId(t));
            }
            assert_eq!(
                pair.full.num_documents(),
                pair.shadow.num_documents(),
                "step {step}: stores drifted (seed {seed:#x})"
            );
        }
    }
}
