//! Randomized differential test: [`SegmentedImpactList`] against the plain
//! sorted-`Vec` reference [`FlatImpactList`].
//!
//! Both layouts are driven through the same randomized interleaving of point
//! updates (insert/remove, including duplicate inserts and misses) and every
//! descent/range read the ITA engine performs (`iter`, `iter_below`,
//! `iter_at_or_below`, `iter_at_or_above`, `iter_weight_range`, `next_after`
//! walks, `lowest_above`, `first`, `weight_of`), asserting **identical
//! observable sequences** after every step. Weights are drawn from a small
//! discrete palette so long equal-weight tie runs are common and routinely
//! straddle segment boundaries — the exact case where a segmented cursor can
//! silently go wrong. The segmented list's structural invariants are checked
//! after every mutation.
//!
//! The seeded randomness comes from [`cts_core::testkit::ScriptRng`] — the
//! same deterministic generator behind the engine-level op-script suites —
//! so every run reproduces from the `u64` seed baked into each test (echoed
//! in every assertion context via the step index).

use cts_core::testkit::ScriptRng;
use cts_index::{DocId, FlatImpactList, Posting, SegmentedImpactList};
use cts_text::Weight;

/// The discrete weight palette. Few distinct values → dense tie runs.
fn palette(slot: usize) -> Weight {
    Weight::new(0.05 + (slot % 7) as f64 * 0.13)
}

fn docs(postings: impl Iterator<Item = Posting>) -> Vec<(u64, u64)> {
    postings
        .map(|p| (p.doc.0, p.weight.get().to_bits()))
        .collect()
}

/// Compares every read path of the two lists at probe weight `w`.
fn assert_reads_agree(seg: &SegmentedImpactList, flat: &FlatImpactList, w: Weight) {
    assert_eq!(seg.len(), flat.len());
    assert_eq!(seg.is_empty(), flat.is_empty());
    assert_eq!(seg.first(), flat.first());
    assert_eq!(docs(seg.iter()), docs(flat.iter()), "iter at {w}");
    assert_eq!(
        docs(seg.iter_below(w)),
        docs(flat.iter_below(w)),
        "iter_below {w}"
    );
    assert_eq!(
        docs(seg.iter_at_or_below(w)),
        docs(flat.iter_at_or_below(w)),
        "iter_at_or_below {w}"
    );
    assert_eq!(
        docs(seg.iter_at_or_above(w)),
        docs(flat.iter_at_or_above(w)),
        "iter_at_or_above {w}"
    );
    assert_eq!(
        seg.lowest_above(w),
        flat.lowest_above(w),
        "lowest_above {w}"
    );
}

/// Walks both lists to exhaustion through the sequential-descent cursor.
fn assert_cursor_walks_agree(seg: &SegmentedImpactList, flat: &FlatImpactList) {
    let mut cursor = None;
    loop {
        let a = seg.next_after(cursor);
        let b = flat.next_after(cursor);
        assert_eq!(a, b, "next_after diverged at {cursor:?}");
        match a {
            Some(p) => cursor = Some(p),
            None => break,
        }
    }
}

/// One full differential run at the given segment capacity.
fn differential_run(capacity: usize, seed: u64, steps: usize) {
    let mut rng = ScriptRng::new(seed);
    let mut seg = SegmentedImpactList::with_segment_capacity(capacity);
    let mut flat = FlatImpactList::new();
    // The live (doc, weight) population, so removals usually hit.
    let mut live: Vec<(DocId, Weight)> = Vec::new();
    let mut next_doc = 0u64;

    for step in 0..steps {
        let op = rng.below(10);
        match op {
            // 0..6: insert a fresh posting (tie-heavy palette).
            0..=5 => {
                let doc = DocId(next_doc);
                next_doc += 1;
                let w = palette(rng.below(7));
                assert_eq!(seg.insert(doc, w), flat.insert(doc, w), "insert {doc}");
                live.push((doc, w));
            }
            // 6: duplicate insert of a live posting (must be rejected by both).
            6 if !live.is_empty() => {
                let (doc, w) = live[rng.below(live.len())];
                assert_eq!(seg.insert(doc, w), flat.insert(doc, w));
                assert!(!seg.insert(doc, w), "duplicate insert must be rejected");
            }
            // 7..8: remove a live posting.
            7 | 8 if !live.is_empty() => {
                let at = rng.below(live.len());
                let (doc, w) = live.swap_remove(at);
                assert_eq!(seg.remove(doc, w), flat.remove(doc, w), "remove {doc}");
                assert!(flat.weight_of(doc).is_none());
            }
            // 9: remove miss — absent doc or wrong weight for a live doc.
            _ => {
                let (doc, w) = if live.is_empty() || rng.chance(0.5) {
                    (DocId(next_doc + 1_000_000), palette(rng.below(7)))
                } else {
                    let (doc, w) = live[rng.below(live.len())];
                    (doc, Weight::new(w.get() + 0.001))
                };
                assert_eq!(seg.remove(doc, w), flat.remove(doc, w));
            }
        }
        seg.check_invariants();

        // Probe at palette values (tie boundaries), their midpoints, and the
        // extremes; plus the half-open roll-up band between two palette
        // weights every step.
        let probes = [
            palette(step % 7),
            Weight::new(palette(step % 7).get() + 0.065),
            Weight::ZERO,
            Weight::new(1.0),
        ];
        for w in probes {
            assert_reads_agree(&seg, &flat, w);
        }
        let (lo, hi) = (palette(step % 7), palette((step + 3) % 7));
        assert_eq!(
            docs(seg.iter_weight_range(lo, hi)),
            docs(flat.iter_weight_range(lo, hi)),
            "iter_weight_range [{lo}, {hi})"
        );
        if step % 16 == 0 {
            assert_cursor_walks_agree(&seg, &flat);
            if let Some(&(doc, _)) = live.first() {
                assert_eq!(seg.weight_of(doc), flat.weight_of(doc));
            }
        }
    }

    // Drain completely: merges all the way down to the empty directory.
    while let Some((doc, w)) = live.pop() {
        assert!(seg.remove(doc, w));
        assert!(flat.remove(doc, w));
        seg.check_invariants();
    }
    assert!(seg.is_empty());
    assert_eq!(seg.num_segments(), 0);
    assert!(flat.is_empty());
}

#[test]
fn tiny_segments_split_and_merge_constantly() {
    // Capacity 2 and 3: every few inserts split, every few removes merge.
    differential_run(2, 0xD1FF_0001, 600);
    differential_run(3, 0xD1FF_0002, 600);
}

#[test]
fn small_segments_with_tie_runs_straddling_boundaries() {
    // Capacity 4..8 with a 7-value palette: tie runs are much longer than a
    // segment, so every boundary case is exercised.
    differential_run(4, 0xD1FF_0003, 800);
    differential_run(8, 0xD1FF_0004, 800);
}

#[test]
fn production_capacity_agrees_on_a_long_run() {
    differential_run(
        cts_index::segmented::DEFAULT_SEGMENT_CAPACITY,
        0xD1FF_0005,
        1_500,
    );
}
