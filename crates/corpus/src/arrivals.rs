//! Poisson arrival process.
//!
//! The paper streams documents into the monitoring system "following a
//! Poisson process with a mean arrival rate of 200 documents/second".
//! [`PoissonArrivals`] produces exactly that: a deterministic (seeded)
//! sequence of monotonically increasing [`Timestamp`]s whose inter-arrival
//! gaps are exponentially distributed with the configured mean rate.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use cts_index::Timestamp;

use crate::config::StreamConfig;
use crate::distributions::exponential;

/// A seeded Poisson arrival-time generator.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: SmallRng,
    rate: f64,
    current_micros: f64,
}

impl PoissonArrivals {
    /// Creates an arrival process with the given mean rate (documents per
    /// second) and seed.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite"
        );
        Self {
            rng: SmallRng::seed_from_u64(seed),
            rate: rate_per_sec,
            current_micros: 0.0,
        }
    }

    /// Creates an arrival process from a [`StreamConfig`].
    pub fn from_config(config: &StreamConfig) -> Self {
        Self::new(config.arrival_rate_per_sec, config.seed)
    }

    /// The configured mean arrival rate (documents per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Returns the next arrival timestamp. Timestamps are strictly
    /// increasing (enforced by a one-microsecond minimum gap so that
    /// downstream consumers can rely on a total order of events).
    pub fn next_arrival(&mut self) -> Timestamp {
        let gap_secs = exponential(&mut self.rng, self.rate);
        let gap_micros = (gap_secs * 1e6).max(1.0);
        self.current_micros += gap_micros;
        Timestamp::from_micros(self.current_micros as u64)
    }
}

impl Iterator for PoissonArrivals {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonArrivals::new(200.0, 1);
        let mut last = Timestamp::ZERO;
        for _ in 0..10_000 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        let mut p = PoissonArrivals::new(200.0, 2);
        let n = 100_000;
        let mut last = Timestamp::ZERO;
        for _ in 0..n {
            last = p.next_arrival();
        }
        let elapsed_secs = last.as_secs_f64();
        let empirical_rate = n as f64 / elapsed_secs;
        assert!(
            (empirical_rate - 200.0).abs() / 200.0 < 0.05,
            "empirical rate {empirical_rate}"
        );
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let a: Vec<_> = PoissonArrivals::new(50.0, 99).take(100).collect();
        let b: Vec<_> = PoissonArrivals::new(50.0, 99).take(100).collect();
        let c: Vec<_> = PoissonArrivals::new(50.0, 100).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn from_config_uses_defaults() {
        let p = PoissonArrivals::from_config(&StreamConfig::default());
        assert!((p.rate() - 200.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_is_rejected() {
        let _ = PoissonArrivals::new(0.0, 1);
    }
}
