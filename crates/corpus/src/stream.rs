//! The document stream.
//!
//! A [`DocumentStream`] combines a [`SyntheticCorpus`] with a
//! [`PoissonArrivals`] process and a weighting model, yielding ready-to-index
//! [`Document`]s: each carries a unique id, its Poisson arrival timestamp and
//! its composition list (`⟨t, w_{d,t}⟩` pairs). This is the exact shape of a
//! stream element in the paper's model (§II).

use cts_index::{DocId, Document, Timestamp};
use cts_text::weighting::Scoring;
use cts_text::Dictionary;

use crate::arrivals::PoissonArrivals;
use crate::config::{CorpusConfig, StreamConfig};
use crate::generator::SyntheticCorpus;

/// An infinite, deterministic stream of synthetic documents.
#[derive(Debug, Clone)]
pub struct DocumentStream {
    corpus: SyntheticCorpus,
    arrivals: PoissonArrivals,
    scoring: Scoring,
    dictionary: Dictionary,
    next_id: u64,
}

impl DocumentStream {
    /// Creates a stream from corpus and stream configurations, using cosine
    /// weighting (the paper's Equation 1).
    pub fn new(corpus_config: CorpusConfig, stream_config: StreamConfig) -> Self {
        Self::with_scoring(corpus_config, stream_config, Scoring::Cosine)
    }

    /// Creates a stream with an explicit weighting model. For IDF-dependent
    /// models (BM25) the stream maintains its own dictionary statistics,
    /// updated with every generated document.
    pub fn with_scoring(
        corpus_config: CorpusConfig,
        stream_config: StreamConfig,
        scoring: Scoring,
    ) -> Self {
        Self {
            corpus: SyntheticCorpus::new(corpus_config),
            arrivals: PoissonArrivals::from_config(&stream_config),
            scoring,
            dictionary: Dictionary::new(),
            next_id: 0,
        }
    }

    /// A small, fast stream for tests and examples.
    pub fn small() -> Self {
        Self::new(CorpusConfig::small(), StreamConfig::default())
    }

    /// The weighting model in use.
    pub fn scoring(&self) -> Scoring {
        self.scoring
    }

    /// The vocabulary size of the underlying corpus.
    pub fn vocabulary_size(&self) -> usize {
        self.corpus.config().vocabulary_size
    }

    /// Produces the next document of the stream.
    pub fn next_document(&mut self) -> Document {
        let arrival = self.arrivals.next_arrival();
        self.next_document_at(arrival)
    }

    /// Produces the next document with an explicit arrival timestamp
    /// (used by harnesses that drive their own clock).
    pub fn next_document_at(&mut self, arrival: Timestamp) -> Document {
        let raw = self.corpus.next_term_vector();
        // Keep IDF statistics up to date for weighting models that use them.
        for (term, count) in raw.iter() {
            self.dictionary.record_occurrences(term, u64::from(count));
        }
        let composition = self.scoring.document_weights(&raw, &self.dictionary);
        let id = DocId(self.next_id);
        self.next_id += 1;
        Document::new(id, arrival, composition)
    }

    /// Produces the next `n` documents.
    pub fn take_documents(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.next_document()).collect()
    }
}

impl Iterator for DocumentStream {
    type Item = Document;

    fn next(&mut self) -> Option<Document> {
        Some(self.next_document())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_text::weighting::Bm25Model;

    #[test]
    fn documents_have_unique_increasing_ids_and_times() {
        let mut s = DocumentStream::small();
        let docs = s.take_documents(100);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.id, DocId(i as u64));
        }
        for pair in docs.windows(2) {
            assert!(pair[0].arrival < pair[1].arrival);
        }
    }

    #[test]
    fn cosine_compositions_are_unit_norm() {
        let mut s = DocumentStream::small();
        for d in s.take_documents(20) {
            let norm = d.composition.l2_norm();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
            assert!(!d.composition.is_empty());
        }
    }

    #[test]
    fn bm25_stream_produces_positive_weights() {
        let mut s = DocumentStream::with_scoring(
            CorpusConfig::small(),
            StreamConfig::default(),
            Scoring::Bm25(Bm25Model::with_average_doc_len(40.0)),
        );
        for d in s.take_documents(10) {
            assert!(d.composition.iter().all(|e| e.weight.get() > 0.0));
        }
    }

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<_> = DocumentStream::small().take(25).collect();
        let b: Vec<_> = DocumentStream::small().take(25).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.composition, y.composition);
        }
    }

    #[test]
    fn explicit_arrival_times_are_respected() {
        let mut s = DocumentStream::small();
        let d = s.next_document_at(Timestamp::from_secs(42));
        assert_eq!(d.arrival, Timestamp::from_secs(42));
    }

    #[test]
    fn arrival_rate_matches_configuration() {
        let mut s = DocumentStream::new(
            CorpusConfig::small(),
            StreamConfig {
                arrival_rate_per_sec: 200.0,
                seed: 5,
            },
        );
        let docs = s.take_documents(5_000);
        let elapsed = docs.last().unwrap().arrival.as_secs_f64();
        let rate = docs.len() as f64 / elapsed;
        assert!((rate - 200.0).abs() / 200.0 < 0.1, "rate {rate}");
    }
}
