//! Configuration of the synthetic corpus, stream and query workload.

use serde::{Deserialize, Serialize};

/// Shape of the synthetic document collection.
///
/// Defaults approximate the WSJ corpus used by the paper: a dictionary of
/// ~182,000 terms whose frequencies follow a Zipf law, and documents of a few
/// hundred terms with a heavy right tail (log-normal length distribution).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of distinct terms in the vocabulary.
    pub vocabulary_size: usize,
    /// Zipf skew parameter `s` of the term-frequency distribution
    /// (`P(rank r) ∝ 1 / r^s`). Natural-language text is close to 1.0.
    pub zipf_exponent: f64,
    /// Mean of the log-normal document length (ln-scale location μ).
    pub doc_len_mu: f64,
    /// Standard deviation of the log-normal document length (ln-scale σ).
    pub doc_len_sigma: f64,
    /// Minimum number of term occurrences per document (lengths are clamped).
    pub min_doc_len: usize,
    /// Maximum number of term occurrences per document (lengths are clamped).
    pub max_doc_len: usize,
    /// Seed for the deterministic pseudo-random generator.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            // Matches the paper's 181,978-term post-stop-word dictionary.
            vocabulary_size: 181_978,
            zipf_exponent: 1.0,
            // exp(5.5) ≈ 245 median terms; mean ≈ 430 — typical of WSJ
            // articles after stop-word removal.
            doc_len_mu: 5.5,
            doc_len_sigma: 0.75,
            min_doc_len: 30,
            max_doc_len: 4_000,
            seed: 0x5EED_0001,
        }
    }
}

impl CorpusConfig {
    /// A reduced configuration for unit tests and quick examples: a small
    /// vocabulary and short documents so that everything runs in
    /// milliseconds while preserving the Zipfian shape.
    pub fn small() -> Self {
        Self {
            vocabulary_size: 2_000,
            zipf_exponent: 1.0,
            doc_len_mu: 3.6, // ≈ 36 terms median
            doc_len_sigma: 0.5,
            min_doc_len: 8,
            max_doc_len: 300,
            seed: 0x5EED_0002,
        }
    }
}

/// Configuration of the document stream feeding the monitoring server.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Mean document arrival rate, in documents per second (Poisson process).
    /// The paper uses 200 documents/second.
    pub arrival_rate_per_sec: f64,
    /// Seed for the arrival-process pseudo-random generator.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            arrival_rate_per_sec: 200.0,
            seed: 0x5EED_0003,
        }
    }
}

/// Configuration of the continuous-query workload.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of continuous queries to register. The paper uses 1,000.
    pub num_queries: usize,
    /// Number of search terms per query (`n`). The paper varies 4–40 with a
    /// default of 10.
    pub query_length: usize,
    /// Number of results each query maintains (`k`). The paper uses 10.
    pub k: usize,
    /// Whether query terms are drawn uniformly from the dictionary (the
    /// paper's setting) or proportionally to term popularity.
    pub popularity_biased: bool,
    /// Seed for the workload pseudo-random generator.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_queries: 1_000,
            query_length: 10,
            k: 10,
            popularity_biased: false,
            seed: 0x5EED_0004,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_setup() {
        let c = CorpusConfig::default();
        assert_eq!(c.vocabulary_size, 181_978);
        let s = StreamConfig::default();
        assert!((s.arrival_rate_per_sec - 200.0).abs() < f64::EPSILON);
        let w = WorkloadConfig::default();
        assert_eq!(w.num_queries, 1_000);
        assert_eq!(w.k, 10);
        assert_eq!(w.query_length, 10);
        assert!(!w.popularity_biased);
    }

    #[test]
    fn small_config_is_small_but_well_formed() {
        let c = CorpusConfig::small();
        assert!(c.vocabulary_size < 10_000);
        assert!(c.min_doc_len < c.max_doc_len);
        assert!(c.zipf_exponent > 0.0);
    }

    #[test]
    fn configs_serialize_roundtrip() {
        let c = CorpusConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CorpusConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.vocabulary_size, c.vocabulary_size);
        assert_eq!(back.seed, c.seed);
    }
}
