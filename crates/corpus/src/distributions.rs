//! Random distributions used by the corpus generator.
//!
//! Only the two distributions the generator actually needs are implemented —
//! a [`Zipf`] law over term ranks (term popularity in natural-language text)
//! and a [`LogNormal`] for document lengths — keeping the dependency set to
//! the plain `rand` crate.

use rand::Rng;

/// A Zipf distribution over ranks `1..=n`: `P(r) ∝ 1 / r^s`.
///
/// Sampling uses a precomputed cumulative table and binary search, which is
/// exact, `O(log n)` per sample and fast to build even for the ~182k-term
/// vocabularies used by the default corpus configuration.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point round-off leaving the last entry
        // fractionally below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0-based: rank 0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of 0-based rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

/// A log-normal distribution with ln-scale parameters `mu` and `sigma`.
///
/// Samples are generated with the Box–Muller transform over the crate-provided
/// uniform generator.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { mu, sigma }
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution's median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution's mean, `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// One standard-normal variate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples one exponential variate with the given rate (events per unit time).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_zero_is_most_probable() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        assert!(z.pmf(2000) == 0.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(500, 1.2);
        let total: f64 = (0..z.len()).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_follow_the_skew() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 10 which must dominate rank 90.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Top rank should hold roughly 1/H(100) ≈ 19% of the mass.
        let share = counts[0] as f64 / 20_000.0;
        assert!(share > 0.12 && share < 0.30, "share = {share}");
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let z = Zipf::new(10, 2.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn lognormal_moments_are_close_to_theory() {
        let d = LogNormal::new(5.5, 0.75);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let theory = d.mean();
        assert!(
            (mean - theory).abs() / theory < 0.05,
            "empirical mean {mean} vs theoretical {theory}"
        );
        assert!((d.median() - 5.5f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn lognormal_samples_are_positive() {
        let d = LogNormal::new(0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(11);
        let rate = 200.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() / (1.0 / rate) < 0.05,
            "mean inter-arrival {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = exponential(&mut rng, 0.0);
    }
}
