//! Synthetic vocabularies.
//!
//! The benchmark workloads operate directly on [`cts_text::TermId`]s, but the
//! examples want readable text. A [`Vocabulary`] deterministically maps every
//! term id to a pronounceable synthetic word (alternating consonant/vowel
//! syllables, suffixed with the id when needed to guarantee uniqueness) and
//! can render a composition of term ids back into a string.

use cts_text::{Dictionary, TermId};

/// A deterministic term-id → word mapping.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
}

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pl",
    "pr", "r", "s", "sh", "st", "t", "th", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "t", "l", "m", "nd", "rk", "st"];

/// Builds the deterministic synthetic word for a term index.
fn synth_word(index: usize) -> String {
    // Three positional digits in mixed radix over (onset, vowel, coda) per
    // syllable; two syllables cover ~6.8M combinations, far more than any
    // realistic vocabulary, so words are unique without a suffix.
    let mut word = String::new();
    let mut rest = index;
    for syllable in 0..2 {
        let onset = ONSETS[rest % ONSETS.len()];
        rest /= ONSETS.len();
        let vowel = VOWELS[rest % VOWELS.len()];
        rest /= VOWELS.len();
        let coda = CODAS[rest % CODAS.len()];
        rest /= CODAS.len();
        word.push_str(onset);
        word.push_str(vowel);
        if syllable == 1 || !coda.is_empty() {
            word.push_str(coda);
        }
        if rest == 0 && syllable == 0 {
            break;
        }
    }
    if rest > 0 {
        word.push_str(&rest.to_string());
    }
    word
}

impl Vocabulary {
    /// Builds a vocabulary of `size` synthetic words. Words are guaranteed
    /// unique: on the rare syllable-boundary collision the term index is
    /// appended to disambiguate.
    pub fn synthetic(size: usize) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(size);
        let mut words = Vec::with_capacity(size);
        for i in 0..size {
            let mut w = synth_word(i);
            if !seen.insert(w.clone()) {
                w.push_str(&format!("x{i}"));
                seen.insert(w.clone());
            }
            words.push(w);
        }
        Self { words }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word for term id `t` (panics if out of range).
    pub fn word(&self, t: TermId) -> &str {
        &self.words[t.index()]
    }

    /// Renders a sequence of term ids as a space-separated string.
    pub fn render<I>(&self, terms: I) -> String
    where
        I: IntoIterator<Item = TermId>,
    {
        let mut out = String::new();
        for t in terms {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.word(t));
        }
        out
    }

    /// Interns the entire vocabulary into a [`Dictionary`], so that term ids
    /// assigned by the dictionary coincide with this vocabulary's indices.
    /// Useful when examples mix synthetic documents with analysed real text.
    pub fn intern_all(&self, dict: &mut Dictionary) {
        for w in &self.words {
            dict.intern(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique_and_nonempty() {
        let v = Vocabulary::synthetic(5_000);
        let set: HashSet<&str> = v.words.iter().map(String::as_str).collect();
        assert_eq!(set.len(), 5_000);
        assert!(v.words.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn words_are_deterministic() {
        let a = Vocabulary::synthetic(100);
        let b = Vocabulary::synthetic(100);
        assert_eq!(a.words, b.words);
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let v = Vocabulary::synthetic(2_000);
        assert!(v.words.iter().all(|w| w
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())));
    }

    #[test]
    fn render_joins_words() {
        let v = Vocabulary::synthetic(10);
        let text = v.render([TermId(0), TermId(3), TermId(7)]);
        let expected = format!(
            "{} {} {}",
            v.word(TermId(0)),
            v.word(TermId(3)),
            v.word(TermId(7))
        );
        assert_eq!(text, expected);
    }

    #[test]
    fn intern_all_aligns_ids_with_indices() {
        let v = Vocabulary::synthetic(50);
        let mut dict = Dictionary::new();
        v.intern_all(&mut dict);
        assert_eq!(dict.len(), 50);
        for i in 0..50u32 {
            assert_eq!(dict.term(TermId(i)), Some(v.word(TermId(i))));
        }
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::synthetic(0);
        assert!(v.is_empty());
        assert_eq!(v.render([]), "");
    }
}
