//! Synthetic corpus, document-stream and query-workload generation.
//!
//! The paper's experiments stream the WSJ corpus (172,961 Wall Street Journal
//! articles; 181,978 dictionary terms after stop-word removal) into the
//! monitoring system following a Poisson process with a mean arrival rate of
//! 200 documents/second, and register 1,000 queries of `k = 10` whose terms
//! are selected at random from the dictionary. The WSJ corpus is proprietary
//! (TREC disks 1–2), so this crate builds the closest synthetic equivalent:
//!
//! * [`SyntheticCorpus`] — a document generator over a Zipf-distributed
//!   vocabulary with log-normally distributed document lengths, calibrated to
//!   newswire statistics (see [`CorpusConfig`]). The generator is fully
//!   deterministic given a seed.
//! * [`PoissonArrivals`] — exponential inter-arrival times with a configurable
//!   mean rate (default 200 documents/second, as in the paper).
//! * [`DocumentStream`] — an iterator of [`cts_index::Document`]s combining
//!   the two, ready to feed any engine.
//! * [`QueryWorkload`] — random continuous-query generation (uniform term
//!   selection as in the paper, or popularity-biased for ablations).
//! * [`Vocabulary`] — optional human-readable synthetic word strings so that
//!   examples can show real-looking text while the benchmarks work directly
//!   with term ids.
//!
//! DESIGN.md §3 documents why these substitutions preserve the behaviour the
//! paper measures.
//!
//! # Quick example
//!
//! ```
//! use cts_corpus::{CorpusConfig, DocumentStream, QueryWorkload, StreamConfig, WorkloadConfig};
//!
//! // A reduced corpus and a 200 docs/s Poisson stream, fully seeded.
//! let mut stream = DocumentStream::new(CorpusConfig::small(), StreamConfig::default());
//! let docs = stream.take_documents(10);
//! assert_eq!(docs.len(), 10);
//! assert!(docs.windows(2).all(|w| w[0].arrival < w[1].arrival));
//!
//! // A workload of 5 queries with 4 search terms each, over the same
//! // vocabulary.
//! let workload = QueryWorkload::new(
//!     WorkloadConfig { num_queries: 5, query_length: 4, ..WorkloadConfig::default() },
//!     stream.vocabulary_size(),
//! );
//! assert_eq!(workload.generate().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs, unused_must_use)]

pub mod arrivals;
pub mod config;
pub mod distributions;
pub mod generator;
pub mod queries;
pub mod stream;
pub mod vocabulary;

pub use arrivals::PoissonArrivals;
pub use config::{CorpusConfig, StreamConfig, WorkloadConfig};
pub use distributions::{LogNormal, Zipf};
pub use generator::SyntheticCorpus;
pub use queries::{QuerySpec, QueryWorkload, TermSelection};
pub use stream::DocumentStream;
pub use vocabulary::Vocabulary;
